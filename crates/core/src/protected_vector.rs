//! Dense floating-point vector protection (§VI-B, Fig. 3).
//!
//! Unlike the CSR index vectors, an `f64` has no unused bits, so the paper
//! stores the redundancy in the **least-significant mantissa bits** and masks
//! those bits to zero whenever a value is used in computation.  The masking
//! perturbs each value by at most 2⁻⁴⁴ relative (8 mantissa bits), which the
//! paper reports changes the converged solution by less than 2.0 × 10⁻¹¹ %
//! and the iteration count by under 1 %.
//!
//! Bit budgets per scheme (Fig. 3):
//!
//! | scheme | reserved LSBs per element | elements per codeword |
//! |---|---|---|
//! | SED | 1 | 1 |
//! | SECDED64 | 8 | 1 |
//! | SECDED128 | 5 | 2 |
//! | CRC32C | 8 | 4 |
//!
//! All bulk kernels (dot, AXPY, fills) work one codeword ("group") at a time:
//! a group is decoded and integrity-checked once, operated on, and re-encoded
//! once — the read-buffering / write-buffering scheme of §VI-C that removes
//! the per-element read-modify-write penalty.  The methods here are the
//! group-decode reference path; the masked raw-slice fast paths (check each
//! group once, then compute straight over the raw words with the AND-mask in
//! a register) live in [`crate::blas1`] and share this module's
//! `GroupCodec`, so the two paths cannot drift.
//!
//! Check accounting is uniform across every method: integrity checks are
//! tallied locally while a kernel runs and folded into the [`FaultLog`] in
//! one bulk update when it finishes — on the error path too, so an aborting
//! fault reports exactly the checks that were performed, never the checks a
//! completed pass would have performed.

use crate::error::AbftError;
use crate::report::{FaultLog, Region};
use crate::schemes::{EccScheme, ParityConfig};
use abft_ecc::secded::DecodeOutcome;
use abft_ecc::sed::parity_u64;
use abft_ecc::{Crc32c, Crc32cBackend, SECDED_118, SECDED_56};

/// Maximum number of elements in one codeword group.
pub(crate) const MAX_GROUP: usize = 4;

/// Elements per partial-sum block of the dot-product family.  All reduction
/// kernels (the group-decode [`ProtectedVector::dot`] here and the masked
/// and parallel variants in [`crate::blas1`]) accumulate per fixed-size
/// block and then fold the block partials in order, so serial, masked and
/// chunked-parallel reductions are **bitwise identical** for a given input.
/// A multiple of every group size.
pub const ACC_BLOCK: usize = 4096;

/// A dense `f64` vector whose elements carry embedded ECC in their
/// least-significant mantissa bits.
///
/// For the grouped schemes the internal storage is padded with zero elements
/// up to a whole number of codeword groups, so the redundancy of a trailing
/// partial group has somewhere to live.  The padding is at most
/// `group − 1 ≤ 3` extra elements regardless of the vector length — a
/// constant handful of bytes, not a per-element overhead.
#[derive(Debug, Clone)]
pub struct ProtectedVector {
    pub(crate) scheme: EccScheme,
    /// Raw bit patterns, redundancy embedded in the reserved low bits.
    /// Length is `len` rounded up to a multiple of the group size.
    pub(crate) data: Vec<u64>,
    /// Logical number of elements.
    pub(crate) len: usize,
    /// AND-mask applied on every read (clears the reserved bits).
    pub(crate) read_mask: u64,
    pub(crate) crc: Crc32c,
    /// Execution hint for the trait-level BLAS-1 dispatch: backends set it
    /// so dot/AXPY/norm² route through the chunked parallel kernels.  Not
    /// part of the encoded state — the raw storage is unaffected.
    parallel: bool,
    /// Optional XOR erasure tier: per-stripe parity chunks over the encoded
    /// storage, so an uncorrectable codeword (or a deliberately erased
    /// chunk) is rebuilt from its stripe siblings instead of aborting.
    /// `None` (the default) keeps the vector byte-identical in behaviour to
    /// the parity-free layout.
    parity: Option<ParityState>,
}

/// Internal state of the XOR erasure tier (layout in [`ParityConfig`]).
#[derive(Debug, Clone)]
struct ParityState {
    /// Chunk size in storage words (a multiple of [`MAX_GROUP`], so chunk
    /// boundaries always align with codeword boundaries).
    chunk_words: usize,
    /// Data chunks per parity stripe.
    stripe_chunks: usize,
    /// Stripe-major parity words: `stripe_count × chunk_words` entries, each
    /// the word-wise XOR of the stripe's data chunks (absent trailing words
    /// of a partial final chunk contribute zero).
    words: Vec<u64>,
}

/// Outcome of the stripe-parity cross-check (see
/// [`ProtectedVector::verify_parity`]).
///
/// The classifier must run **before** a scrub gets to "repair" an erased
/// chunk: the embedded schemes are linear, so once a scrub has re-encoded
/// miscorrected garbage the stripe residual `parity ⊕ chunks` is itself a
/// valid codeword and XORs cleanly into *every* chunk — attribution becomes
/// impossible.  Pre-scrub, the residual of an erasure is raw noise and
/// convicts exactly one chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ParityVerdict {
    /// Every stripe's XOR matches its stored parity.
    Consistent,
    /// The mismatch is explainable by in-place ECC correction (pending
    /// correctable bit flips): the ordinary scrub restores the originals,
    /// and the parity becomes consistent again on its own.
    Deferred,
    /// Exactly one chunk's tentative rebuild (`parity ⊕ siblings`) verifies
    /// clean, and the chunk's current content is beyond the embedded ECC's
    /// correction radius from it: that chunk was erased and must be rebuilt
    /// from the parity tier.
    Erased {
        /// The erased data chunk.
        chunk: usize,
    },
    /// The data chunks all verify clean and no rebuild candidate exists:
    /// the fault is confined to the parity words themselves, so the data
    /// keeps being served.
    StaleParity,
    /// A mismatch that cannot be attributed to a single chunk (e.g. a
    /// double loss in one stripe): unrecoverable.
    Ambiguous {
        /// The stripe whose mismatch could not be attributed.
        stripe: usize,
    },
}

impl ProtectedVector {
    /// Creates a zero vector of length `n`.
    pub fn zeros(n: usize, scheme: EccScheme, backend: Crc32cBackend) -> Self {
        Self::from_slice(&vec![0.0; n], scheme, backend)
    }

    /// Encodes a plain slice.  The reserved mantissa bits of each value are
    /// lost (masked to zero) — this is the controlled noise §VI-B discusses.
    pub fn from_slice(values: &[f64], scheme: EccScheme, backend: Crc32cBackend) -> Self {
        let group = scheme.vector_group();
        let padded = values.len().div_ceil(group) * group;
        let mut v = ProtectedVector {
            scheme,
            data: vec![0u64; padded],
            len: values.len(),
            read_mask: read_mask(scheme),
            crc: Crc32c::new(backend),
            parallel: false,
            parity: None,
        };
        let mut base = 0;
        while base < values.len() {
            let count = group.min(values.len() - base);
            let mut buf = [0.0f64; MAX_GROUP];
            buf[..count].copy_from_slice(&values[base..base + count]);
            v.encode_group(base, &buf);
            base += group;
        }
        v
    }

    /// The protection scheme.
    pub fn scheme(&self) -> EccScheme {
        self.scheme
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the vector has no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of elements per codeword group.
    pub fn group_size(&self) -> usize {
        self.scheme.vector_group()
    }

    /// Number of codeword groups that hold user-visible elements.  The
    /// storage is padded to whole groups, so this also equals the storage
    /// group count; check accounting is specified in terms of logical groups
    /// so a change to the padding policy can never drift the reported
    /// counts.
    pub fn logical_groups(&self) -> u64 {
        self.len.div_ceil(self.group_size()) as u64
    }

    /// Sets the execution hint the backend trait layer reads to route the
    /// BLAS-1 kernels through their chunked parallel variants.
    pub fn set_parallel(&mut self, parallel: bool) {
        self.parallel = parallel;
    }

    /// Whether the parallel BLAS-1 kernels were requested for this vector.
    pub fn is_parallel(&self) -> bool {
        self.parallel
    }

    /// Raw (encoded) storage — exposed for fault injection and tests.
    pub fn raw(&self) -> &[u64] {
        &self.data
    }

    /// The masked raw-slice fast path: the logical elements as raw bit
    /// patterns plus the AND-mask that clears the reserved redundancy bits.
    ///
    /// Reading `f64::from_bits(words[i] & mask)` is exactly
    /// [`ProtectedVector::get`] without the bounds assert — the view the
    /// SpMV kernels use after the per-invocation scrub has verified the
    /// storage (§VI-C read caching).
    #[inline]
    pub fn masked_words(&self) -> (&[u64], u64) {
        (&self.data[..self.len], self.read_mask)
    }

    /// Flips one bit of one stored element (fault injection hook).
    pub fn inject_bit_flip(&mut self, index: usize, bit: u32) {
        self.data[index] ^= 1u64 << bit;
    }

    /// Reads element `i` with the redundancy bits masked off, without an
    /// integrity check.  This is the fast path used after a kernel has
    /// already checked the groups it touches (the read-caching of §VI-C).
    #[inline]
    pub fn get(&self, i: usize) -> f64 {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        f64::from_bits(self.data[i] & self.read_mask)
    }

    /// Decodes the whole vector into a plain `Vec<f64>` (masked, unchecked).
    pub fn to_vec(&self) -> Vec<f64> {
        (0..self.len()).map(|i| self.get(i)).collect()
    }

    /// Writes element `i`, performing the read-modify-write the paper
    /// describes: the containing group is decoded, checked, updated and
    /// re-encoded.  Bulk kernels avoid this cost; it exists for completeness
    /// and for the RMW-overhead ablation bench.
    pub fn set(&mut self, i: usize, value: f64, log: &FaultLog) -> Result<(), AbftError> {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        let group = self.group_size();
        let base = (i / group) * group;
        if self.scheme != EccScheme::None {
            log.record_checks(Region::DenseVector, 1);
        }
        let (mut buf, _) = self.decode_group(base, log)?;
        buf[i - base] = value;
        self.encode_group(base, &buf);
        self.parity_commit();
        Ok(())
    }

    /// Verifies every codeword.  Errors are logged; correctable flips are
    /// *not* written back (use [`ProtectedVector::scrub`]).
    pub fn check_all(&self, log: &FaultLog) -> Result<(), AbftError> {
        if self.scheme == EccScheme::None {
            return Ok(());
        }
        let mut tally = 0u64;
        let result = self.check_all_inner(log, &mut tally);
        log.record_checks(Region::DenseVector, tally);
        result
    }

    fn check_all_inner(&self, log: &FaultLog, tally: &mut u64) -> Result<(), AbftError> {
        // Batched screening pass: one SIMD-dispatched predicate certifies
        // the whole vector in the (overwhelmingly common) clean case, with
        // the same per-group check accounting as the walk below.
        if self.codec().run_clean(&self.data) {
            *tally += (self.data.len() / self.group_size()) as u64;
            return Ok(());
        }
        if self.scheme == EccScheme::Sed {
            // Tight per-element parity loop (SED is the scheme the paper
            // recommends when overhead matters most, so keep it lean).
            for (i, &w) in self.data.iter().enumerate() {
                *tally += 1;
                if parity_u64(w) != 0 {
                    log.record_uncorrectable(Region::DenseVector);
                    return Err(AbftError::Uncorrectable {
                        region: Region::DenseVector,
                        index: i,
                    });
                }
            }
            return Ok(());
        }
        let group = self.group_size();
        let mut base = 0;
        while base < self.data.len() {
            *tally += 1;
            self.decode_group(base, log)?;
            base += group;
        }
        Ok(())
    }

    /// Re-verifies every codeword and repairs correctable errors in place.
    /// Returns the number of repaired codewords.
    pub fn scrub(&mut self, log: &FaultLog) -> Result<usize, AbftError> {
        if self.scheme == EccScheme::None {
            return Ok(0);
        }
        if self.scheme == EccScheme::Sed {
            // Parity cannot correct anything; scrubbing is detection only.
            self.check_all(log)?;
            return Ok(0);
        }
        let mut tally = 0u64;
        let result = self.scrub_inner(log, &mut tally);
        log.record_checks(Region::DenseVector, tally);
        result
    }

    fn scrub_inner(&mut self, log: &FaultLog, tally: &mut u64) -> Result<usize, AbftError> {
        // A scrub of clean storage (every SpMV performs one on its input
        // vector) is certified by the batched predicate without decoding a
        // single group; only a failing vector takes the correcting walk.
        if self.codec().run_clean(&self.data) {
            *tally += (self.data.len() / self.group_size()) as u64;
            return Ok(0);
        }
        let group = self.group_size();
        let mut repaired = 0;
        let mut base = 0;
        while base < self.data.len() {
            *tally += 1;
            let before = log.total_corrected();
            let (buf, _) = self.decode_group(base, log)?;
            if log.total_corrected() > before {
                self.encode_group(base, &buf);
                repaired += 1;
            }
            base += group;
        }
        Ok(repaired)
    }

    /// Overwrites every element with `f(i)`, encoding one group at a time
    /// (pure write buffering: no read-side integrity work).
    pub fn fill_from_fn(&mut self, mut f: impl FnMut(usize) -> f64) {
        let group = self.group_size();
        let len = self.len;
        let mut base = 0;
        while base < len {
            let count = group.min(len - base);
            let mut buf = [0.0f64; MAX_GROUP];
            for (j, b) in buf[..count].iter_mut().enumerate() {
                *b = f(base + j);
            }
            self.encode_group(base, &buf);
            base += group;
        }
        self.parity_commit();
    }

    /// Fallible variant of [`ProtectedVector::fill_from_fn`] used when the
    /// producing computation itself performs integrity checks (e.g. the
    /// protected SpMV writing its result vector).
    pub fn try_fill_from_fn(
        &mut self,
        mut f: impl FnMut(usize) -> Result<f64, AbftError>,
    ) -> Result<(), AbftError> {
        let group = self.group_size();
        let len = self.len;
        let mut base = 0;
        while base < len {
            let count = group.min(len - base);
            let mut buf = [0.0f64; MAX_GROUP];
            for (j, b) in buf[..count].iter_mut().enumerate() {
                *b = f(base + j)?;
            }
            self.encode_group(base, &buf);
            base += group;
        }
        self.parity_commit();
        Ok(())
    }

    /// Sets every element to `value`.
    pub fn fill(&mut self, value: f64) {
        self.fill_from_fn(|_| value);
    }

    /// Read-modify-write of every element through `f(index, value)`, one
    /// decode + one encode per codeword group (§VI-C buffering).  This is the
    /// primitive behind the pointwise solver updates (Jacobi's
    /// `x += D⁻¹ (b − A x)`) on protected storage.
    pub fn update_from_fn(
        &mut self,
        log: &FaultLog,
        f: impl FnMut(usize, f64) -> f64,
    ) -> Result<(), AbftError> {
        self.parity_precheck(None, log)?;
        let mut tally = 0u64;
        let result = self.update_from_fn_inner(log, &mut tally, f);
        if self.scheme != EccScheme::None {
            log.record_checks(Region::DenseVector, tally);
        }
        if result.is_ok() {
            self.parity_commit();
        }
        result
    }

    fn update_from_fn_inner(
        &mut self,
        log: &FaultLog,
        tally: &mut u64,
        mut f: impl FnMut(usize, f64) -> f64,
    ) -> Result<(), AbftError> {
        let group = self.group_size();
        let len = self.len;
        let mut base = 0;
        while base < self.data.len() {
            *tally += 1;
            let (mut buf, _) = self.decode_group(base, log)?;
            let count = group.min(len.saturating_sub(base));
            for (j, value) in buf[..count].iter_mut().enumerate() {
                *value = f(base + j, *value);
            }
            self.encode_group(base, &buf);
            base += group;
        }
        Ok(())
    }

    /// Multiplies every element by `alpha` (checked read-modify-write).
    /// This is the group-decode reference path; the solver backends use
    /// [`ProtectedVector::scale_masked`](crate::blas1).
    pub fn scale(&mut self, alpha: f64, log: &FaultLog) -> Result<(), AbftError> {
        self.update_from_fn(log, |_, value| value * alpha)
    }

    /// Decodes the whole vector into `out`, verifying each codeword group as
    /// it is read (the checked counterpart of [`ProtectedVector::to_vec`],
    /// without allocating).
    ///
    /// # Panics
    /// Panics if `out.len() != self.len()`.
    pub fn read_checked(&self, out: &mut [f64], log: &FaultLog) -> Result<(), AbftError> {
        assert_eq!(out.len(), self.len, "read_checked: length mismatch");
        let mut tally = 0u64;
        let result = self.read_checked_inner(out, log, &mut tally);
        if self.scheme != EccScheme::None {
            log.record_checks(Region::DenseVector, tally);
        }
        result
    }

    fn read_checked_inner(
        &self,
        out: &mut [f64],
        log: &FaultLog,
        tally: &mut u64,
    ) -> Result<(), AbftError> {
        let group = self.group_size();
        let mut base = 0;
        while base < self.data.len() {
            *tally += 1;
            let (buf, logical) = self.decode_group(base, log)?;
            out[base..base + logical].copy_from_slice(&buf[..logical]);
            base += group;
        }
        Ok(())
    }

    /// Copies (and re-encodes) the contents of `other`, checking `other` as
    /// it is read.
    pub fn copy_from(&mut self, other: &ProtectedVector, log: &FaultLog) -> Result<(), AbftError> {
        assert_eq!(self.len(), other.len(), "copy_from: length mismatch");
        let result = if self.scheme == other.scheme {
            let mut tally = 0u64;
            let result = self.copy_from_inner(other, log, &mut tally);
            if self.scheme != EccScheme::None {
                log.record_checks(Region::DenseVector, tally);
            }
            result
        } else {
            // `check_all` performs (and accounts for) the read-side checks.
            other.check_all(log)?;
            self.fill_from_fn(|i| other.get(i));
            Ok(())
        };
        if result.is_ok() {
            self.parity_commit();
        }
        result
    }

    fn copy_from_inner(
        &mut self,
        other: &ProtectedVector,
        log: &FaultLog,
        tally: &mut u64,
    ) -> Result<(), AbftError> {
        let group = self.group_size();
        let mut base = 0;
        while base < self.data.len() {
            *tally += 1;
            let (buf, _) = other.decode_group(base, log)?;
            self.encode_group(base, &buf);
            base += group;
        }
        Ok(())
    }

    /// Dot product with read-side integrity checks, one per group (§VI-C
    /// buffering).  Both vectors must use the same scheme (mismatched
    /// schemes fall back to a checked element-wise path).
    ///
    /// Accumulation is blocked per [`ACC_BLOCK`] elements, matching the
    /// masked and parallel kernels in [`crate::blas1`] bit for bit.
    pub fn dot(&self, other: &ProtectedVector, log: &FaultLog) -> Result<f64, AbftError> {
        assert_eq!(self.len(), other.len(), "dot: length mismatch");
        if self.scheme != other.scheme {
            self.check_all(log)?;
            other.check_all(log)?;
            return Ok((0..self.len()).map(|i| self.get(i) * other.get(i)).sum());
        }
        let mut tally = 0u64;
        let result = self.dot_inner(other, log, &mut tally);
        if self.scheme != EccScheme::None {
            log.record_checks(Region::DenseVector, tally);
        }
        result
    }

    fn dot_inner(
        &self,
        other: &ProtectedVector,
        log: &FaultLog,
        tally: &mut u64,
    ) -> Result<f64, AbftError> {
        let group = self.group_size();
        let per_element = matches!(self.scheme, EccScheme::None | EccScheme::Sed);
        let mask = self.read_mask;
        let sed = self.scheme == EccScheme::Sed;
        let mut total = 0.0;
        let mut block = 0;
        while block < self.data.len() {
            let block_end = (block + ACC_BLOCK).min(self.data.len());
            let mut acc = 0.0;
            if per_element {
                // Per-element codewords: fused check + multiply without the
                // group-buffer machinery.
                for i in block..block_end {
                    let (a, b) = (self.data[i], other.data[i]);
                    if sed {
                        *tally += 2;
                        if parity_u64(a) != 0 || parity_u64(b) != 0 {
                            log.record_uncorrectable(Region::DenseVector);
                            return Err(AbftError::Uncorrectable {
                                region: Region::DenseVector,
                                index: i,
                            });
                        }
                    }
                    acc += f64::from_bits(a & mask) * f64::from_bits(b & mask);
                }
            } else {
                let mut base = block;
                while base < block_end {
                    *tally += 2;
                    let (a, count) = self.decode_group(base, log)?;
                    let (b, _) = other.decode_group(base, log)?;
                    for j in 0..count {
                        acc += a[j] * b[j];
                    }
                    base += group;
                }
            }
            total += acc;
            block = block_end;
        }
        Ok(total)
    }

    /// Euclidean norm (checked).  Decodes every group twice (once per `dot`
    /// operand); the single-pass variant is
    /// [`ProtectedVector::norm2_masked`](crate::blas1).
    pub fn norm2(&self, log: &FaultLog) -> Result<f64, AbftError> {
        Ok(self.dot(self, log)?.sqrt())
    }

    /// `self ← self + alpha · x` with one decode + one encode per group.
    pub fn axpy(
        &mut self,
        alpha: f64,
        x: &ProtectedVector,
        log: &FaultLog,
    ) -> Result<(), AbftError> {
        self.zip_update(x, log, |s, xv| s + alpha * xv)
    }

    /// `self ← x + alpha · self` (the CG search-direction update).
    pub fn xpay(
        &mut self,
        alpha: f64,
        x: &ProtectedVector,
        log: &FaultLog,
    ) -> Result<(), AbftError> {
        self.zip_update(x, log, |s, xv| xv + alpha * s)
    }

    /// Shared implementation of the two-operand updates.
    fn zip_update(
        &mut self,
        x: &ProtectedVector,
        log: &FaultLog,
        op: impl Fn(f64, f64) -> f64,
    ) -> Result<(), AbftError> {
        assert_eq!(self.len(), x.len(), "vector update: length mismatch");
        assert_eq!(
            self.scheme, x.scheme,
            "vector update: schemes must match (got {:?} vs {:?})",
            self.scheme, x.scheme
        );
        self.parity_precheck(Some(x), log)?;
        let mut tally = 0u64;
        let result = self.zip_update_inner(x, log, &mut tally, op);
        if self.scheme != EccScheme::None {
            log.record_checks(Region::DenseVector, tally);
        }
        if result.is_ok() {
            self.parity_commit();
        }
        result
    }

    fn zip_update_inner(
        &mut self,
        x: &ProtectedVector,
        log: &FaultLog,
        tally: &mut u64,
        op: impl Fn(f64, f64) -> f64,
    ) -> Result<(), AbftError> {
        let group = self.group_size();
        if matches!(self.scheme, EccScheme::None | EccScheme::Sed) {
            // Per-element codewords: fused check + update + re-encode.
            let mask = self.read_mask;
            let sed = self.scheme == EccScheme::Sed;
            for (i, (s, &xw)) in self.data.iter_mut().zip(&x.data).enumerate() {
                if sed {
                    *tally += 2;
                    if parity_u64(*s) != 0 || parity_u64(xw) != 0 {
                        log.record_uncorrectable(Region::DenseVector);
                        return Err(AbftError::Uncorrectable {
                            region: Region::DenseVector,
                            index: i,
                        });
                    }
                }
                let updated = op(f64::from_bits(*s & mask), f64::from_bits(xw & mask));
                let payload = updated.to_bits() & mask;
                *s = if sed {
                    payload | parity_u64(payload) as u64
                } else {
                    updated.to_bits()
                };
            }
            return Ok(());
        }
        let mut base = 0;
        while base < self.data.len() {
            *tally += 2;
            let (mut s, count) = self.decode_group(base, log)?;
            let (xv, _) = x.decode_group(base, log)?;
            for j in 0..count {
                s[j] = op(s[j], xv[j]);
            }
            self.encode_group(base, &s);
            base += group;
        }
        Ok(())
    }

    /// The codec for this vector's scheme — the shared check / decode /
    /// encode implementation the masked kernels also run on.
    #[inline]
    pub(crate) fn codec(&self) -> GroupCodec {
        GroupCodec {
            scheme: self.scheme,
            mask: self.read_mask,
            crc: self.crc,
        }
    }

    /// Decodes and verifies the group starting at `base`, returning the
    /// masked (and, if a recoverable fault was found, transiently corrected)
    /// values plus the number of *logical* elements in the group.  Errors
    /// are recorded in `log`.
    #[inline]
    pub(crate) fn decode_group(
        &self,
        base: usize,
        log: &FaultLog,
    ) -> Result<([f64; MAX_GROUP], usize), AbftError> {
        let group = self.group_size();
        let logical = group.min(self.len.saturating_sub(base));
        let out = self
            .codec()
            .decode(&self.data[base..base + group], logical, base, log)?;
        Ok((out, logical))
    }

    /// Re-encodes the group starting at `base` from plain values (the
    /// reserved LSBs of the inputs are discarded).  The whole group is
    /// rewritten; entries in `values` beyond the logical length must be zero
    /// (the callers' buffers are zero-initialised).
    #[inline]
    pub(crate) fn encode_group(&mut self, base: usize, values: &[f64; MAX_GROUP]) {
        let group = self.group_size();
        let codec = self.codec();
        codec.encode(values, &mut self.data[base..base + group]);
    }

    // ------------------------------------------------------------------
    // XOR erasure tier
    // ------------------------------------------------------------------

    /// Enables the XOR erasure tier over the encoded storage and computes
    /// the initial parity.  The storage words are split into chunks of
    /// `config.chunk_words`; each stripe of `config.stripe_chunks` data
    /// chunks gets one parity chunk holding their word-wise XOR, so any
    /// single lost or uncorrectable chunk in a stripe can be rebuilt
    /// bit-for-bit from the parity and its surviving siblings.
    ///
    /// # Panics
    /// Panics when the vector is unprotected (`EccScheme::None`): a rebuilt
    /// chunk is trusted only after the embedded ECC re-verifies it, which
    /// needs a real scheme.  Also panics on a zero or non-group-aligned
    /// `chunk_words` or a zero `stripe_chunks`.
    pub fn enable_parity(&mut self, config: ParityConfig) {
        assert!(
            self.scheme != EccScheme::None,
            "parity tier requires ECC-protected storage"
        );
        assert!(
            config.chunk_words > 0 && config.chunk_words.is_multiple_of(MAX_GROUP),
            "chunk_words must be a positive multiple of MAX_GROUP"
        );
        assert!(config.stripe_chunks > 0, "stripe_chunks must be > 0");
        self.parity = Some(ParityState {
            chunk_words: config.chunk_words,
            stripe_chunks: config.stripe_chunks,
            words: Vec::new(),
        });
        self.refresh_parity();
    }

    /// Whether the erasure tier is enabled.
    pub fn has_parity(&self) -> bool {
        self.parity.is_some()
    }

    /// Chunk size (in storage words) of the erasure tier, when enabled.
    pub fn parity_chunk_words(&self) -> Option<usize> {
        self.parity.as_ref().map(|p| p.chunk_words)
    }

    /// The parity words themselves — exposed for fault injection and tests.
    pub fn parity_words(&self) -> Option<&[u64]> {
        self.parity.as_ref().map(|p| p.words.as_slice())
    }

    /// Number of data chunks covered by the erasure tier (0 when disabled).
    pub fn parity_chunks(&self) -> usize {
        match &self.parity {
            Some(p) => self.data.len().div_ceil(p.chunk_words),
            None => 0,
        }
    }

    /// Recomputes every parity chunk from the current encoded storage.  The
    /// write paths call this after a successful mutation; a kernel that
    /// aborts *before* mutating anything (the parity-mode pre-check) leaves
    /// both storage and parity untouched, so the rebuild evidence stays
    /// consistent.  A no-op when the tier is disabled.
    pub fn refresh_parity(&mut self) {
        let Some(state) = self.parity.as_mut() else {
            return;
        };
        let cw = state.chunk_words;
        let stripes = self.data.len().div_ceil(cw).div_ceil(state.stripe_chunks);
        state.words.clear();
        state.words.resize(stripes * cw, 0);
        for (c, chunk) in self.data.chunks(cw).enumerate() {
            let seg = (c / state.stripe_chunks) * cw;
            for (p, &w) in state.words[seg..seg + cw].iter_mut().zip(chunk) {
                *p ^= w;
            }
        }
    }

    /// Cross-checks every stripe's XOR against the stored parity and
    /// attributes any mismatch.  See [`ParityVerdict`] and
    /// [`ProtectedVector::verify_parity`] for the reasoning; this is the
    /// shared classifier behind the read-side certification and
    /// [`ProtectedVector::try_recover`].
    fn parity_verdict(&self) -> ParityVerdict {
        let Some(state) = self.parity.as_ref() else {
            return ParityVerdict::Consistent;
        };
        let cw = state.chunk_words;
        let n_chunks = self.data.len().div_ceil(cw);
        let stripes = n_chunks.div_ceil(state.stripe_chunks);
        let codec = self.codec();
        let group = codec.group();
        // Bits the embedded scheme can correct in place, per codeword group
        // (SED detects but never corrects).
        let cap: u32 = match self.scheme {
            EccScheme::None | EccScheme::Sed => 0,
            _ => 1,
        };
        let mut stale = false;
        let mut deferred = false;
        let mut acc = vec![0u64; cw];
        let mut tentative = vec![0u64; cw];
        for stripe in 0..stripes {
            // acc = parity ⊕ (XOR of the stripe's data chunks): zero word-wise
            // iff the stripe is consistent.
            acc.copy_from_slice(&state.words[stripe * cw..(stripe + 1) * cw]);
            let first = stripe * state.stripe_chunks;
            let last = (first + state.stripe_chunks).min(n_chunks);
            for chunk in first..last {
                let lo = chunk * cw;
                let hi = (lo + cw).min(self.data.len());
                for (a, &w) in acc.iter_mut().zip(&self.data[lo..hi]) {
                    *a ^= w;
                }
            }
            if acc.iter().all(|&w| w == 0) {
                continue;
            }
            // Attribute the mismatch.  The tentative rebuild of chunk `c` is
            // `parity ⊕ siblings = acc ⊕ c`: for the chunk that took the
            // fault that is its original content and verifies strictly clean
            // under the embedded ECC, while an innocent chunk's tentative
            // rebuild folds the raw residue in and decodes as noise.
            let mut candidate = None;
            let mut candidates = 0usize;
            let mut all_current_clean = true;
            for chunk in first..last {
                let lo = chunk * cw;
                let hi = (lo + cw).min(self.data.len());
                let span = &self.data[lo..hi];
                if !span.chunks_exact(group).all(|g| codec.is_clean(g)) {
                    all_current_clean = false;
                }
                // A chunk whose span of `acc` is all zero cannot be the
                // faulted one: rebuilding it would change nothing.
                if acc[..hi - lo].iter().all(|&w| w == 0) {
                    continue;
                }
                for (t, (&w, &r)) in tentative.iter_mut().zip(span.iter().zip(&acc)) {
                    *t = w ^ r;
                }
                if tentative[..hi - lo]
                    .chunks_exact(group)
                    .all(|g| codec.is_clean(g))
                {
                    candidates += 1;
                    candidate = Some((chunk, lo, hi));
                }
            }
            match (candidates, candidate) {
                (1, Some((chunk, lo, hi))) => {
                    // Ordinary correctable noise also leaves exactly one
                    // candidate (the flipped chunk, whose tentative rebuild
                    // is its original).  Distinguish it from an erasure by
                    // the correction radius: if every codeword group of the
                    // current content is within `cap` flipped bits of the
                    // tentative, the decoder will restore exactly that
                    // original — leave it to the scrub.  Anything farther is
                    // a loss only the parity tier can rebuild.
                    let explainable = (0..hi - lo).step_by(group).all(|base| {
                        (base..base + group)
                            .map(|k| (self.data[lo + k] ^ tentative[k]).count_ones())
                            .sum::<u32>()
                            <= cap
                    });
                    if explainable {
                        deferred = true;
                    } else {
                        return ParityVerdict::Erased { chunk };
                    }
                }
                // No chunk's rebuild verifies and the data itself is clean:
                // the parity words took the fault, not the data.
                (0, _) if all_current_clean => stale = true,
                // No candidate but dirty data: pending corrections spread
                // over several chunks (scrub will restore them), or a
                // multi-chunk loss (the scrub's DUE escalation decides).
                (0, _) => deferred = true,
                _ => return ParityVerdict::Ambiguous { stripe },
            }
        }
        if deferred {
            ParityVerdict::Deferred
        } else if stale {
            ParityVerdict::StaleParity
        } else {
            ParityVerdict::Consistent
        }
    }

    /// Cross-check of the erasure tier, detection only: recomputes each
    /// stripe's XOR and compares it against the stored parity words.
    ///
    /// This closes the one detection hole the embedded ECC has against
    /// whole-chunk erasures: with small odds, every word of a garbage chunk
    /// presents a syndrome that mimics a *correctable* single-bit error, so
    /// a scrub would silently "repair" the garbage in place and the storage
    /// would then verify clean.  The stripe XOR is not foolable that way —
    /// a genuine correction restores the original word and keeps the parity
    /// consistent, while miscorrected garbage does not — and because the
    /// schemes are linear the check must run **before** any correction
    /// re-encodes the chunk (afterwards the residual is itself a valid
    /// codeword and the culprit can no longer be singled out).
    ///
    /// Returns `Ok` when every stripe is consistent, when a mismatch is
    /// explainable by pending in-place corrections (the ordinary scrub
    /// restores the originals), and when the only explanation is damage
    /// confined to the parity words themselves (the data chunks all verify
    /// clean and no rebuild candidate exists — the data is trustworthy and
    /// keeps being served).  A located chunk loss is reported as an
    /// uncorrectable error whose index points into that chunk, so the
    /// recovery ladder rebuilds the right one; an unattributable mismatch
    /// is reported against the stripe.  A no-op returning `Ok` when the
    /// tier is disabled.
    pub fn verify_parity(&self, log: &FaultLog) -> Result<(), AbftError> {
        match self.parity_verdict() {
            ParityVerdict::Consistent | ParityVerdict::Deferred | ParityVerdict::StaleParity => {
                Ok(())
            }
            ParityVerdict::Erased { chunk } => {
                log.record_uncorrectable(Region::DenseVector);
                Err(AbftError::Uncorrectable {
                    region: Region::DenseVector,
                    index: chunk * self.parity_chunk_words().unwrap_or(1),
                })
            }
            ParityVerdict::Ambiguous { stripe } => {
                log.record_uncorrectable(Region::DenseVector);
                let state = self.parity.as_ref().expect("verdict implies parity");
                Err(AbftError::Uncorrectable {
                    region: Region::DenseVector,
                    index: stripe * state.stripe_chunks * state.chunk_words,
                })
            }
        }
    }

    /// Read-side certification of the erasure tier: like
    /// [`ProtectedVector::verify_parity`] but repairs what it convicts —
    /// every chunk the stripe evidence identifies as lost is rebuilt from
    /// parity and its siblings on the spot (recorded in `log`), **before**
    /// the caller's scrub gets a chance to miscorrect it.  The kernels call
    /// this ahead of the per-invocation scrub, so a rebuilt read proceeds on
    /// the original bits and the solver trajectory is untouched.
    ///
    /// Returns `Err` only for an unattributable mismatch (e.g. a double
    /// loss in one stripe), which no single parity chunk can rebuild.  A
    /// no-op returning `Ok` when the tier is disabled.
    pub fn repair_parity(&mut self, log: &FaultLog) -> Result<(), AbftError> {
        let Some(cw) = self.parity_chunk_words() else {
            return Ok(());
        };
        // Each pass rebuilds one distinct chunk; losses never recur once
        // rebuilt, so the chunk count bounds the loop.
        let budget = self.data.len().div_ceil(cw) + 1;
        for _ in 0..budget {
            match self.parity_verdict() {
                ParityVerdict::Consistent
                | ParityVerdict::Deferred
                | ParityVerdict::StaleParity => return Ok(()),
                ParityVerdict::Erased { chunk } => {
                    if !self.rebuild_chunk(chunk, log) {
                        // The classifier verified the tentative rebuild
                        // clean, so this is unreachable in practice; abort
                        // honestly rather than loop.
                        log.record_uncorrectable(Region::DenseVector);
                        return Err(AbftError::Uncorrectable {
                            region: Region::DenseVector,
                            index: chunk * cw,
                        });
                    }
                }
                ParityVerdict::Ambiguous { stripe } => {
                    log.record_uncorrectable(Region::DenseVector);
                    let state = self.parity.as_ref().expect("verdict implies parity");
                    return Err(AbftError::Uncorrectable {
                        region: Region::DenseVector,
                        index: stripe * state.stripe_chunks * cw,
                    });
                }
            }
        }
        log.record_uncorrectable(Region::DenseVector);
        Err(AbftError::Uncorrectable {
            region: Region::DenseVector,
            index: 0,
        })
    }

    /// Rebuilds data chunk `chunk` as the XOR of its stripe's parity chunk
    /// and the surviving sibling chunks, then re-verifies the rebuilt words
    /// with the embedded ECC.  Returns `true` (and records the rebuild in
    /// `log`) only when the rebuilt chunk verifies strictly clean; a failed
    /// verification (stale parity, double-chunk loss in one stripe) leaves
    /// the chunk in its rebuilt-but-dirty state so the next integrity check
    /// honestly aborts rather than ever accepting a wrong answer.
    pub fn rebuild_chunk(&mut self, chunk: usize, log: &FaultLog) -> bool {
        let Some(state) = self.parity.as_ref() else {
            return false;
        };
        let cw = state.chunk_words;
        let n_chunks = self.data.len().div_ceil(cw);
        if chunk >= n_chunks {
            return false;
        }
        let stripe = chunk / state.stripe_chunks;
        let mut rebuilt = state.words[stripe * cw..(stripe + 1) * cw].to_vec();
        let first = stripe * state.stripe_chunks;
        let last = (first + state.stripe_chunks).min(n_chunks);
        for sibling in (first..last).filter(|&s| s != chunk) {
            let lo = sibling * cw;
            let hi = (lo + cw).min(self.data.len());
            for (p, &w) in rebuilt.iter_mut().zip(&self.data[lo..hi]) {
                *p ^= w;
            }
        }
        let lo = chunk * cw;
        let hi = (lo + cw).min(self.data.len());
        self.data[lo..hi].copy_from_slice(&rebuilt[..hi - lo]);
        let codec = self.codec();
        debug_assert_eq!((hi - lo) % codec.group(), 0);
        let clean = self.data[lo..hi]
            .chunks_exact(codec.group())
            .all(|g| codec.is_clean(g));
        if clean {
            log.record_rebuilt(Region::DenseVector);
        }
        clean
    }

    /// Escalation ladder for uncorrectable dense-vector errors.  The parity
    /// verdict runs first on every pass — rebuilding any chunk the stripe
    /// evidence convicts *before* a scrub can miscorrect it (see the
    /// linearity note on [`ProtectedVector::verify_parity`]) — then a
    /// correcting scrub runs, and each DUE it still reports escalates to a
    /// rebuild of the containing chunk.
    /// Returns `true` when the vector ends verified clean under both the
    /// embedded ECC and the stripe parity (every loss absorbed), `false`
    /// when recovery is impossible — no parity tier, a non-vector fault,
    /// more than one lost chunk in a stripe, or corrupt parity.
    pub fn try_recover(&mut self, log: &FaultLog) -> bool {
        let Some(cw) = self.parity_chunk_words() else {
            return false;
        };
        // Each productive pass rebuilds one distinct chunk; the extra
        // passes bound the final verification scrub and parity cross-check.
        let budget = self.data.len().div_ceil(cw) + 2;
        for _ in 0..budget {
            match self.parity_verdict() {
                ParityVerdict::Erased { chunk } => {
                    if !self.rebuild_chunk(chunk, log) {
                        return false;
                    }
                    continue;
                }
                ParityVerdict::Ambiguous { .. } => {
                    log.record_uncorrectable(Region::DenseVector);
                    return false;
                }
                ParityVerdict::Consistent
                | ParityVerdict::Deferred
                | ParityVerdict::StaleParity => {}
            }
            match self.scrub(log) {
                Ok(_) => {
                    if matches!(
                        self.parity_verdict(),
                        ParityVerdict::Consistent | ParityVerdict::StaleParity
                    ) {
                        return true;
                    }
                    // A rebuildable mismatch remains: the next pass handles
                    // it at the top of the loop.
                }
                Err(AbftError::Uncorrectable {
                    region: Region::DenseVector,
                    index,
                }) => {
                    if !self.rebuild_chunk(index / cw, log) {
                        // The rebuild did not verify strictly clean, but the
                        // embedded ECC may still absorb the residue (e.g. a
                        // parity chunk stale by one correctable bit): one
                        // correcting scrub tries, and the next pass re-judges
                        // the parity evidence honestly.
                        if self.scrub(log).is_err() {
                            return false;
                        }
                        log.record_rebuilt(Region::DenseVector);
                    }
                }
                Err(_) => return false,
            }
        }
        false
    }

    /// Poisons a whole chunk of encoded storage with deterministic garbage
    /// (a splitmix64 stream over `seed`) **without** updating the parity
    /// tier — the model of a lost shard or erased node.  `chunk_words` is
    /// the chunk geometry (pass the parity tier's when enabled, so the
    /// erasure lines up with a rebuildable chunk).
    ///
    /// # Panics
    /// Panics when the chunk start lies beyond the storage.
    pub fn inject_chunk_erasure(&mut self, chunk_words: usize, chunk: usize, seed: u64) {
        assert!(chunk_words > 0, "chunk_words must be > 0");
        let lo = chunk * chunk_words;
        assert!(lo < self.data.len(), "chunk {chunk} beyond storage");
        let hi = (lo + chunk_words).min(self.data.len());
        let mut s = seed ^ (chunk as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        for w in &mut self.data[lo..hi] {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *w = z ^ (z >> 31);
        }
    }

    /// Flips one bit of one parity word (fault-injection hook for the
    /// "DUE confined to the parity tier" scenarios).
    ///
    /// # Panics
    /// Panics when the parity tier is disabled or `word` is out of range.
    pub fn inject_parity_bit_flip(&mut self, word: usize, bit: u32) {
        let state = self.parity.as_mut().expect("parity tier not enabled");
        state.words[word] ^= 1u64 << bit;
    }

    /// Parity-mode write barrier: before a read-modify-write kernel mutates
    /// anything, certify the mutated vector (and any operand it reads) so a
    /// detected fault aborts with **zero mutation** — the caller can then
    /// rebuild the lost chunk and re-run the kernel without double-applying
    /// a partial update.  A no-op when the erasure tier is disabled.
    pub(crate) fn parity_precheck(
        &self,
        operand: Option<&ProtectedVector>,
        log: &FaultLog,
    ) -> Result<(), AbftError> {
        if self.parity.is_none() {
            return Ok(());
        }
        // Parity first (see `verify_parity`): an erasure must be convicted
        // before any decode treats its garbage as correctable noise.
        self.verify_parity(log)?;
        self.check_all(log)?;
        if let Some(other) = operand {
            other.verify_parity(log)?;
            other.check_all(log)?;
        }
        Ok(())
    }

    /// Parity-mode write epilogue: recompute parity after a successful
    /// mutation.  A no-op when the tier is disabled.
    #[inline]
    pub(crate) fn parity_commit(&mut self) {
        if self.parity.is_some() {
            self.refresh_parity();
        }
    }
}

/// Per-scheme codec for one codeword group of raw storage words.
///
/// The [`ProtectedVector`] read-modify-write methods and the masked-slice
/// BLAS-1 kernels in [`crate::blas1`] (which run over chunked raw slices
/// where no `&ProtectedVector` is available) share this one implementation
/// of check / correct / re-encode, so the two paths cannot drift.
#[derive(Debug, Clone, Copy)]
pub(crate) struct GroupCodec {
    pub(crate) scheme: EccScheme,
    pub(crate) mask: u64,
    pub(crate) crc: Crc32c,
}

impl GroupCodec {
    /// Elements per codeword group.
    #[inline]
    pub(crate) fn group(&self) -> usize {
        self.scheme.vector_group()
    }

    /// Batched check-only verification of a whole-group-aligned run of
    /// storage words (`words.len()` must be a multiple of the group size):
    /// `true` when **every** codeword in the run is consistent.
    ///
    /// This is the block-granular screening pass of the masked kernels: one
    /// call certifies an entire [`ACC_BLOCK`] (or a whole vector) through
    /// the SIMD-dispatched predicates of [`abft_ecc::verify`], and only a
    /// failing run is re-walked group by group to locate, correct and
    /// attribute the fault.  CRC32C groups have no batched lane kernel —
    /// their cost is the checksum itself, which [`Crc32c::auto`]'s
    /// width policy already serves — so they loop [`GroupCodec::is_clean`]
    /// per group.
    #[inline]
    pub(crate) fn run_clean(&self, words: &[u64]) -> bool {
        match self.scheme {
            EccScheme::None => true,
            EccScheme::Sed => abft_ecc::verify::sed_words_clean(words),
            EccScheme::Secded64 => abft_ecc::verify::secded64_words_clean(words),
            EccScheme::Secded128 => abft_ecc::verify::secded128_words_clean(words),
            EccScheme::Crc32c => words.chunks_exact(4).all(|group| self.is_clean(group)),
        }
    }

    /// Whether [`GroupCodec::run_clean`] is backed by a batched SIMD lane
    /// kernel for this scheme.  CRC32C is checksum-bound — its `run_clean`
    /// is the same per-group checksum loop the block kernels already
    /// interleave, so screening a block with it up front would only add a
    /// second traversal; the block kernels keep the interleaved per-group
    /// check for it.  Whole-vector certifies (`check_all`/`scrub`) still
    /// use `run_clean` for CRC32C, where the verify-only checksum replaces
    /// a correcting group decode.
    #[inline]
    pub(crate) fn has_batched_kernel(&self) -> bool {
        matches!(
            self.scheme,
            EccScheme::Sed | EccScheme::Secded64 | EccScheme::Secded128
        )
    }

    /// Check-only verification of one group (`words.len()` must equal the
    /// group size): `true` when every codeword bit is consistent.  The
    /// masked kernels run their raw-slice fast path over groups this
    /// accepts; anything else takes the correcting `GroupCodec::decode`.
    #[inline]
    pub(crate) fn is_clean(&self, words: &[u64]) -> bool {
        match self.scheme {
            EccScheme::None => true,
            EccScheme::Sed => parity_u64(words[0]) == 0,
            EccScheme::Secded64 => {
                let w = words[0];
                w & 0x80 == 0 && SECDED_56.verify(&[w >> 8], (w & 0x7F) as u16)
            }
            EccScheme::Secded128 => {
                let (w0, w1) = (words[0], words[1]);
                let payload = [(w0 >> 5) | (w1 >> 5) << 59, (w1 >> 5) >> 5];
                let stored = ((w0 & 0x1F) | ((w1 & 0x07) << 5)) as u16;
                w1 & 0x18 == 0 && SECDED_118.verify(&payload, stored)
            }
            EccScheme::Crc32c => {
                let stored = words
                    .iter()
                    .enumerate()
                    .fold(0u32, |acc, (j, w)| acc | (((*w & 0xFF) as u32) << (8 * j)));
                stored == self.crc.checksum_words_masked(words, self.mask)
            }
        }
    }

    /// Decodes and verifies one group, returning the masked (and, where a
    /// recoverable fault was found, transiently corrected) values.
    /// `logical` is the number of user-visible elements in the group (less
    /// than the group size only in the trailing partial group); `base` is
    /// the global index of the group's first element, used for error
    /// attribution.  Corrected and uncorrectable events are recorded in
    /// `log`; check counts are the caller's responsibility (kernels tally
    /// them locally and flush in bulk).
    pub(crate) fn decode(
        &self,
        stored: &[u64],
        logical: usize,
        base: usize,
        log: &FaultLog,
    ) -> Result<[f64; MAX_GROUP], AbftError> {
        let group = stored.len();
        let mut words = [0u64; MAX_GROUP];
        words[..group].copy_from_slice(stored);
        if let Err(offset) = self.correct_in_place(&mut words, group, log) {
            match self.padding_reset(stored, logical) {
                Some(fixed) => {
                    // The corruption is confined to padding words, which are
                    // architecturally zero: recoverable, and never blamed on
                    // a user-visible element.
                    log.record_corrected(Region::DenseVector);
                    words = fixed;
                }
                None => {
                    log.record_uncorrectable(Region::DenseVector);
                    return Err(AbftError::Uncorrectable {
                        region: Region::DenseVector,
                        index: base + offset,
                    });
                }
            }
        }
        let mut out = [0.0f64; MAX_GROUP];
        for j in 0..group {
            out[j] = f64::from_bits(words[j] & self.mask);
        }
        Ok(out)
    }

    /// Per-scheme check-and-correct over one group's words.  Correctable
    /// flips are repaired in `words` (and recorded); an unrecoverable
    /// codeword returns the in-group element offset to report, leaving the
    /// uncorrectable classification to `GroupCodec::decode` (which first
    /// attempts the padding reset).
    fn correct_in_place(
        &self,
        words: &mut [u64; MAX_GROUP],
        group: usize,
        log: &FaultLog,
    ) -> Result<(), usize> {
        match self.scheme {
            EccScheme::None => {}
            EccScheme::Sed => {
                // Per-element parity over the full 64-bit word.
                for (j, w) in words[..group].iter().enumerate() {
                    if parity_u64(*w) != 0 {
                        return Err(j);
                    }
                }
            }
            EccScheme::Secded64 => {
                for (j, w) in words[..group].iter_mut().enumerate() {
                    let stored = (*w & 0xFF) as u16;
                    // Only 7 of the 8 reserved bits carry the code; the 8th is
                    // defined to be zero, so a flip there is trivially
                    // detectable and correctable.
                    if stored & 0x80 != 0 {
                        log.record_corrected(Region::DenseVector);
                    }
                    let stored = stored & 0x7F;
                    let mut payload = [*w >> 8];
                    match SECDED_56.check_and_correct(&mut payload, stored) {
                        DecodeOutcome::NoError => {}
                        DecodeOutcome::CorrectedData(_) => {
                            log.record_corrected(Region::DenseVector);
                            *w = (payload[0] << 8) | (*w & 0xFF);
                        }
                        DecodeOutcome::CorrectedRedundancy => {
                            log.record_corrected(Region::DenseVector);
                        }
                        DecodeOutcome::Uncorrectable => return Err(j),
                    }
                }
            }
            EccScheme::Secded128 => {
                // Pair codeword: 2 × 59 payload bits, 8 redundancy bits split
                // 5 + 3 across the two elements' reserved LSBs.
                let w1 = if group > 1 { words[1] } else { 0 };
                // Bits 3–4 of the second element's reserved field are unused
                // and defined to be zero.
                if w1 & 0x18 != 0 {
                    log.record_corrected(Region::DenseVector);
                }
                let stored = ((words[0] & 0x1F) | ((w1 & 0x07) << 5)) as u16;
                let mut payload = [(words[0] >> 5) | (w1 >> 5) << 59, (w1 >> 5) >> 5];
                match SECDED_118.check_and_correct(&mut payload, stored) {
                    DecodeOutcome::NoError => {}
                    DecodeOutcome::CorrectedData(_) => {
                        log.record_corrected(Region::DenseVector);
                        words[0] = (payload[0] << 5) | (words[0] & 0x1F);
                        if group > 1 {
                            let p1 = (payload[0] >> 59) | (payload[1] << 5);
                            words[1] = (p1 << 5) | (w1 & 0x1F);
                        }
                    }
                    DecodeOutcome::CorrectedRedundancy => {
                        log.record_corrected(Region::DenseVector);
                    }
                    DecodeOutcome::Uncorrectable => return Err(0),
                }
            }
            EccScheme::Crc32c => {
                // Four-element codeword: CRC32C over the masked bit patterns,
                // one checksum byte in each element's reserved LSBs.
                let stored = words[..group]
                    .iter()
                    .enumerate()
                    .fold(0u32, |acc, (j, w)| acc | (((*w & 0xFF) as u32) << (8 * j)));
                let computed = self.crc.checksum_words_masked(&words[..group], self.mask);
                if stored != computed {
                    if (stored ^ computed).count_ones() == 1 {
                        // Flip in the stored checksum byte: data intact.
                        log.record_corrected(Region::DenseVector);
                    } else if let Some(fixed) = self.crc_try_correct(words, group, stored) {
                        log.record_corrected(Region::DenseVector);
                        *words = fixed;
                    } else {
                        return Err(0);
                    }
                }
            }
        }
        Ok(())
    }

    /// Last-resort recovery for a trailing partial group: the padding
    /// elements beyond the logical length are architecturally zero, so when
    /// re-encoding the logical values (with zeroed padding) reproduces the
    /// stored logical words bit for bit, the corruption is confined to the
    /// padding words and the canonical re-encoding restores the group.
    fn padding_reset(&self, stored: &[u64], logical: usize) -> Option<[u64; MAX_GROUP]> {
        let group = stored.len();
        if logical == 0 || logical >= group {
            return None;
        }
        let mut values = [0.0f64; MAX_GROUP];
        for (v, w) in values[..logical].iter_mut().zip(stored) {
            *v = f64::from_bits(w & self.mask);
        }
        let mut canonical = [0u64; MAX_GROUP];
        self.encode(&values, &mut canonical[..group]);
        if canonical[..logical] == stored[..logical] {
            Some(canonical)
        } else {
            None
        }
    }

    /// Attempts single-bit trial correction of a CRC-protected group.
    fn crc_try_correct(
        &self,
        words: &[u64; MAX_GROUP],
        count: usize,
        stored: u32,
    ) -> Option<[u64; MAX_GROUP]> {
        let mut bytes = [0u8; MAX_GROUP * 8];
        for j in 0..count {
            bytes[j * 8..j * 8 + 8].copy_from_slice(&(words[j] & self.mask).to_le_bytes());
        }
        let bit = abft_ecc::correction::correct_crc32c_single(
            &self.crc,
            &mut bytes[..count * 8],
            stored,
        )?;
        // Corrections inside the masked LSBs cannot correspond to real flips.
        if bit % 64 < 8 {
            return None;
        }
        let mut fixed = *words;
        for j in 0..count {
            let restored = u64::from_le_bytes(bytes[j * 8..j * 8 + 8].try_into().unwrap());
            fixed[j] = restored | (words[j] & !self.mask);
        }
        Some(fixed)
    }

    /// Canonical encode of one group from plain values (the reserved LSBs of
    /// the inputs are discarded).  `out.len()` must equal the group size;
    /// entries in `values` beyond the logical length must be zero.
    #[inline]
    pub(crate) fn encode(&self, values: &[f64; MAX_GROUP], out: &mut [u64]) {
        let mask = self.mask;
        let count = out.len();
        match self.scheme {
            EccScheme::None => {
                for (o, v) in out.iter_mut().zip(values) {
                    *o = v.to_bits();
                }
            }
            EccScheme::Sed => {
                for (o, v) in out.iter_mut().zip(values) {
                    let payload = v.to_bits() & mask;
                    *o = payload | parity_u64(payload) as u64;
                }
            }
            EccScheme::Secded64 => {
                for (o, v) in out.iter_mut().zip(values) {
                    let payload = [v.to_bits() >> 8];
                    let red = SECDED_56.encode(&payload) as u64;
                    *o = (payload[0] << 8) | red;
                }
            }
            EccScheme::Secded128 => {
                let b0 = values[0].to_bits() >> 5;
                let b1 = if count > 1 {
                    values[1].to_bits() >> 5
                } else {
                    0
                };
                let payload = [b0 | (b1 << 59), b1 >> 5];
                let red = SECDED_118.encode(&payload) as u64;
                out[0] = (b0 << 5) | (red & 0x1F);
                if count > 1 {
                    out[1] = (b1 << 5) | ((red >> 5) & 0x07);
                }
            }
            EccScheme::Crc32c => {
                let mut words = [0u64; MAX_GROUP];
                for (w, v) in words[..count].iter_mut().zip(values) {
                    *w = v.to_bits() & mask;
                }
                let checksum = self.crc.checksum_words_masked(&words[..count], mask);
                for (o, (j, &w)) in out.iter_mut().zip(words[..count].iter().enumerate()) {
                    *o = w | (((checksum >> (8 * j)) & 0xFF) as u64);
                }
            }
        }
    }
}

/// The AND-mask clearing a scheme's reserved mantissa bits.
fn read_mask(scheme: EccScheme) -> u64 {
    !((1u64 << scheme.vector_mantissa_bits()) - 1)
}

/// Largest relative error the masking can introduce for a normal `f64`
/// (2^(reserved bits) ULPs of the 52-bit mantissa).
pub fn masking_relative_error_bound(scheme: EccScheme) -> f64 {
    (1u64 << scheme.vector_mantissa_bits()) as f64 * 2f64.powi(-52)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * 0.618).sin() * 1000.0 + 0.125)
            .collect()
    }

    fn all_schemes() -> [EccScheme; 5] {
        [
            EccScheme::None,
            EccScheme::Sed,
            EccScheme::Secded64,
            EccScheme::Secded128,
            EccScheme::Crc32c,
        ]
    }

    #[test]
    fn roundtrip_values_within_masking_noise() {
        let values = sample(37);
        for scheme in all_schemes() {
            let v = ProtectedVector::from_slice(&values, scheme, Crc32cBackend::SlicingBy16);
            assert_eq!(v.len(), 37);
            assert!(!v.is_empty());
            assert_eq!(v.scheme(), scheme);
            let bound = masking_relative_error_bound(scheme);
            for (i, &orig) in values.iter().enumerate() {
                let got = v.get(i);
                let rel = ((got - orig) / orig).abs();
                assert!(
                    rel <= bound,
                    "{scheme:?} element {i}: rel error {rel} > bound {bound}"
                );
            }
            let log = FaultLog::new();
            v.check_all(&log).unwrap();
            assert_eq!(
                log.total_corrected() + log.total_uncorrectable(),
                0,
                "{scheme:?}"
            );
        }
    }

    #[test]
    fn masked_bits_are_zero_on_read() {
        let values = sample(8);
        for scheme in all_schemes() {
            let v = ProtectedVector::from_slice(&values, scheme, Crc32cBackend::SlicingBy16);
            let reserved = scheme.vector_mantissa_bits();
            for i in 0..v.len() {
                let bits = v.get(i).to_bits();
                if reserved > 0 {
                    assert_eq!(bits & ((1 << reserved) - 1), 0, "{scheme:?}");
                }
            }
        }
    }

    #[test]
    fn every_single_flip_is_handled_per_scheme_contract() {
        let values = sample(12);
        for scheme in all_schemes() {
            if scheme == EccScheme::None {
                continue;
            }
            let clean = ProtectedVector::from_slice(&values, scheme, Crc32cBackend::SlicingBy16);
            for index in [0usize, 5, 11] {
                for bit in (0..64).step_by(7) {
                    let mut v = clean.clone();
                    v.inject_bit_flip(index, bit);
                    let log = FaultLog::new();
                    let result = v.check_all(&log);
                    if scheme == EccScheme::Sed {
                        assert!(
                            result.is_err(),
                            "{scheme:?}: flip at ({index},{bit}) undetected"
                        );
                    } else {
                        // Correctable: check succeeds and records a correction.
                        result.unwrap_or_else(|e| {
                            panic!("{scheme:?}: flip at ({index},{bit}) not corrected: {e}")
                        });
                        assert_eq!(log.total_corrected(), 1, "{scheme:?} ({index},{bit})");
                        // Scrubbing restores the clean storage.
                        let mut v2 = v.clone();
                        assert_eq!(v2.scrub(&log).unwrap(), 1);
                        assert_eq!(v2.raw(), clean.raw(), "{scheme:?} ({index},{bit})");
                    }
                }
            }
        }
    }

    #[test]
    fn double_flips_are_detected_by_secded() {
        let values = sample(10);
        for scheme in [EccScheme::Secded64, EccScheme::Secded128] {
            let mut v = ProtectedVector::from_slice(&values, scheme, Crc32cBackend::SlicingBy16);
            v.inject_bit_flip(2, 20);
            v.inject_bit_flip(2, 45);
            let log = FaultLog::new();
            assert!(v.check_all(&log).is_err(), "{scheme:?}");
            assert!(log.total_uncorrectable() > 0);
        }
    }

    #[test]
    fn dot_and_axpy_match_plain_arithmetic() {
        let a_vals = sample(25);
        let b_vals: Vec<f64> = sample(25).iter().map(|x| x * 0.5 - 3.0).collect();
        let log = FaultLog::new();
        for scheme in all_schemes() {
            let a = ProtectedVector::from_slice(&a_vals, scheme, Crc32cBackend::SlicingBy16);
            let b = ProtectedVector::from_slice(&b_vals, scheme, Crc32cBackend::SlicingBy16);
            // Reference uses the *masked* values, because that is what the
            // protected kernels are defined to compute with.
            let expect_dot: f64 = (0..25).map(|i| a.get(i) * b.get(i)).sum();
            let got = a.dot(&b, &log).unwrap();
            assert!(
                (got - expect_dot).abs() <= 1e-9 * expect_dot.abs().max(1.0),
                "{scheme:?}"
            );

            let mut y = a.clone();
            y.axpy(2.5, &b, &log).unwrap();
            for i in 0..25 {
                let expect = a.get(i) + 2.5 * b.get(i);
                let rel = (y.get(i) - expect).abs() / expect.abs().max(1e-30);
                assert!(rel < 1e-12, "{scheme:?} axpy element {i}");
            }

            let mut p = a.clone();
            p.xpay(0.75, &b, &log).unwrap();
            for i in 0..25 {
                let expect = b.get(i) + 0.75 * a.get(i);
                let rel = (p.get(i) - expect).abs() / expect.abs().max(1e-30);
                assert!(rel < 1e-12, "{scheme:?} xpay element {i}");
            }

            let n = a.norm2(&log).unwrap();
            assert!((n - expect_dot_norm(&a)).abs() < 1e-9 * n.max(1.0));
        }
    }

    fn expect_dot_norm(a: &ProtectedVector) -> f64 {
        (0..a.len())
            .map(|i| a.get(i) * a.get(i))
            .sum::<f64>()
            .sqrt()
    }

    #[test]
    fn fill_set_and_copy() {
        let log = FaultLog::new();
        for scheme in all_schemes() {
            let mut v = ProtectedVector::zeros(11, scheme, Crc32cBackend::SlicingBy16);
            assert!(v.to_vec().iter().all(|&x| x == 0.0));
            v.fill(3.5);
            assert!(v.to_vec().iter().all(|&x| x == 3.5));
            v.check_all(&log).unwrap();

            v.fill_from_fn(|i| i as f64);
            assert_eq!(v.get(7), 7.0);
            v.check_all(&log).unwrap();

            v.set(4, 99.0, &log).unwrap();
            assert_eq!(v.get(4), 99.0);
            assert_eq!(v.get(5), 5.0);
            v.check_all(&log).unwrap();

            let src = ProtectedVector::from_slice(&sample(11), scheme, Crc32cBackend::SlicingBy16);
            v.copy_from(&src, &log).unwrap();
            for i in 0..11 {
                assert_eq!(v.get(i), src.get(i));
            }

            v.try_fill_from_fn(|i| Ok(i as f64 * 2.0)).unwrap();
            assert_eq!(v.get(3), 6.0);
        }
    }

    #[test]
    fn copy_between_different_schemes() {
        let log = FaultLog::new();
        let src =
            ProtectedVector::from_slice(&sample(9), EccScheme::Crc32c, Crc32cBackend::SlicingBy16);
        let mut dst = ProtectedVector::zeros(9, EccScheme::Sed, Crc32cBackend::SlicingBy16);
        dst.copy_from(&src, &log).unwrap();
        for i in 0..9 {
            // SED keeps 63 bits, so copying from a CRC-masked value is exact.
            assert_eq!(dst.get(i), src.get(i));
        }
        // Dot between different schemes falls back to the checked slow path.
        let d = dst.dot(&src, &log).unwrap();
        let expect: f64 = (0..9).map(|i| src.get(i) * src.get(i)).sum();
        assert!((d - expect).abs() < 1e-9 * expect.abs());
    }

    #[test]
    fn masking_noise_bound_is_small() {
        assert_eq!(
            masking_relative_error_bound(EccScheme::None),
            2f64.powi(-52)
        );
        assert!(masking_relative_error_bound(EccScheme::Crc32c) < 1e-12);
        assert!(
            masking_relative_error_bound(EccScheme::Secded128)
                < masking_relative_error_bound(EccScheme::Secded64)
        );
    }

    #[test]
    fn group_sizes() {
        assert_eq!(
            ProtectedVector::zeros(4, EccScheme::Crc32c, Crc32cBackend::SlicingBy16).group_size(),
            4
        );
        assert_eq!(
            ProtectedVector::zeros(4, EccScheme::Sed, Crc32cBackend::SlicingBy16).group_size(),
            1
        );
    }

    #[test]
    fn odd_tail_groups_are_protected() {
        // Lengths that are not multiples of the group size still protect the
        // trailing elements.
        let log = FaultLog::new();
        for scheme in [EccScheme::Secded128, EccScheme::Crc32c] {
            for n in [1usize, 2, 3, 5, 6, 7, 9] {
                let values = sample(n);
                let clean =
                    ProtectedVector::from_slice(&values, scheme, Crc32cBackend::SlicingBy16);
                let mut v = clean.clone();
                v.inject_bit_flip(n - 1, 37);
                v.check_all(&log).unwrap();
                assert!(log.total_corrected() > 0, "{scheme:?} n={n}");
                log.reset();
            }
        }
    }

    #[test]
    fn parallel_hint_roundtrips_and_survives_clone() {
        let mut v = ProtectedVector::zeros(4, EccScheme::Sed, Crc32cBackend::SlicingBy16);
        assert!(!v.is_parallel());
        v.set_parallel(true);
        assert!(v.is_parallel());
        assert!(v.clone().is_parallel());
    }

    #[test]
    fn logical_group_counts() {
        for (scheme, n, expect) in [
            (EccScheme::Sed, 7usize, 7u64),
            (EccScheme::Secded64, 7, 7),
            (EccScheme::Secded128, 7, 4),
            (EccScheme::Crc32c, 7, 2),
            (EccScheme::Crc32c, 8, 2),
            (EccScheme::Crc32c, 0, 0),
        ] {
            let v = ProtectedVector::zeros(n, scheme, Crc32cBackend::SlicingBy16);
            assert_eq!(v.logical_groups(), expect, "{scheme:?} n={n}");
            // The padded storage is always a whole number of groups, and
            // every one of them holds at least one logical element.
            assert_eq!(
                v.raw().len() as u64,
                expect * v.group_size() as u64,
                "{scheme:?} n={n}"
            );
        }
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let log = FaultLog::new();
        let a = ProtectedVector::zeros(3, EccScheme::Sed, Crc32cBackend::SlicingBy16);
        let b = ProtectedVector::zeros(4, EccScheme::Sed, Crc32cBackend::SlicingBy16);
        let _ = a.dot(&b, &log);
    }

    fn small_parity() -> ParityConfig {
        ParityConfig {
            stripe_chunks: 3,
            chunk_words: 8,
        }
    }

    #[test]
    fn parity_rebuild_restores_an_erased_chunk_bit_for_bit() {
        let log = FaultLog::new();
        for scheme in [
            EccScheme::Sed,
            EccScheme::Secded64,
            EccScheme::Secded128,
            EccScheme::Crc32c,
        ] {
            // 67 elements: every scheme gets a trailing partial chunk, and
            // SECDED128 additionally gets a trailing partial codeword group.
            let mut v =
                ProtectedVector::from_slice(&sample(67), scheme, Crc32cBackend::SlicingBy16);
            v.enable_parity(small_parity());
            let clean = v.raw().to_vec();
            let last = v.parity_chunks() - 1;
            for chunk in [1usize, last] {
                v.inject_chunk_erasure(8, chunk, 0x00DD_F00D + chunk as u64);
                assert_ne!(v.raw(), &clean[..], "{scheme:?} chunk {chunk}");
                assert!(v.try_recover(&log), "{scheme:?} chunk {chunk}");
                assert_eq!(v.raw(), &clean[..], "{scheme:?} chunk {chunk}");
            }
            assert!(log.total_rebuilt() >= 2, "{scheme:?}");
            log.reset();
        }
    }

    #[test]
    fn double_chunk_loss_in_one_stripe_aborts_instead_of_fabricating() {
        let log = FaultLog::new();
        let mut v = ProtectedVector::from_slice(
            &sample(64),
            EccScheme::Secded64,
            Crc32cBackend::SlicingBy16,
        );
        v.enable_parity(ParityConfig {
            stripe_chunks: 4,
            chunk_words: 8,
        });
        v.inject_chunk_erasure(8, 0, 1);
        v.inject_chunk_erasure(8, 1, 2);
        assert!(
            !v.try_recover(&log),
            "two losses per stripe exceed XOR parity"
        );
        // The storage must still *fail* verification — never a wrong answer.
        assert!(v.check_all(&log).is_err());
    }

    #[test]
    fn corrupt_parity_never_reads_on_clean_data_and_never_fakes_a_rebuild() {
        let log = FaultLog::new();
        let values = sample(64);
        let mut v =
            ProtectedVector::from_slice(&values, EccScheme::Secded64, Crc32cBackend::SlicingBy16);
        v.enable_parity(ParityConfig {
            stripe_chunks: 2,
            chunk_words: 8,
        });
        let clean = v.raw().to_vec();
        // A DUE confined to the parity words: data stays clean, so the
        // parity is simply never consulted.
        v.inject_parity_bit_flip(3, 17);
        v.check_all(&log).unwrap();
        assert_eq!(v.scrub(&log).unwrap(), 0);
        // Parity stale by ONE bit + a lost chunk: the rebuilt chunk is one
        // flip away from the truth, which the embedded ECC corrects — the
        // ladder recovers the exact original rather than aborting.
        v.inject_chunk_erasure(8, 0, 7);
        assert!(v.try_recover(&log));
        assert_eq!(v.raw(), &clean[..]);
        // Parity stale by TWO bits in one word + a lost chunk: the rebuilt
        // word carries a double flip the ECC can only detect.  The ladder
        // must abort — never hand back a wrong chunk.
        v.refresh_parity();
        v.inject_parity_bit_flip(3, 17);
        v.inject_parity_bit_flip(3, 44);
        v.inject_chunk_erasure(8, 0, 11);
        assert!(!v.try_recover(&log));
        assert!(v.check_all(&log).is_err());
    }

    #[test]
    fn parity_tracks_the_mutating_write_paths() {
        let log = FaultLog::new();
        let values = sample(40);
        let mut v =
            ProtectedVector::from_slice(&values, EccScheme::Secded64, Crc32cBackend::SlicingBy16);
        v.enable_parity(small_parity());
        let x = ProtectedVector::from_slice(
            &sample(40),
            EccScheme::Secded64,
            Crc32cBackend::SlicingBy16,
        );
        v.axpy(1.5, &x, &log).unwrap();
        v.scale(0.25, &log).unwrap();
        v.set(11, 42.0, &log).unwrap();
        // The incremental refreshes must equal a from-scratch recompute.
        let incremental = v.parity_words().unwrap().to_vec();
        let mut fresh = v.clone();
        fresh.refresh_parity();
        assert_eq!(fresh.parity_words().unwrap(), &incremental[..]);
        // And an erasure after the updates is still recoverable.
        let clean = v.raw().to_vec();
        v.inject_chunk_erasure(8, 2, 99);
        assert!(v.try_recover(&log));
        assert_eq!(v.raw(), &clean[..]);
    }

    #[test]
    fn parity_precheck_aborts_with_zero_mutation() {
        let log = FaultLog::new();
        let mut v = ProtectedVector::from_slice(
            &sample(32),
            EccScheme::Secded64,
            Crc32cBackend::SlicingBy16,
        );
        v.enable_parity(small_parity());
        let mut x = ProtectedVector::from_slice(
            &sample(32),
            EccScheme::Secded64,
            Crc32cBackend::SlicingBy16,
        );
        // A double flip makes the operand uncorrectable.
        x.inject_bit_flip(1, 20);
        x.inject_bit_flip(1, 45);
        let before = v.raw().to_vec();
        let parity_before = v.parity_words().unwrap().to_vec();
        assert!(v.axpy(2.0, &x, &log).is_err());
        assert_eq!(v.raw(), &before[..], "failed kernel must not mutate");
        assert_eq!(v.parity_words().unwrap(), &parity_before[..]);
    }

    #[test]
    fn recovery_without_parity_declines() {
        let log = FaultLog::new();
        let mut v = ProtectedVector::from_slice(
            &sample(32),
            EccScheme::Secded64,
            Crc32cBackend::SlicingBy16,
        );
        v.inject_chunk_erasure(8, 0, 5);
        assert!(!v.try_recover(&log));
        assert_eq!(log.total_rebuilt(), 0);
    }

    #[test]
    #[should_panic]
    fn parity_requires_a_real_scheme() {
        let mut v = ProtectedVector::zeros(8, EccScheme::None, Crc32cBackend::SlicingBy16);
        v.enable_parity(ParityConfig::default());
    }
}
