//! Fault-injection campaigns over the protected CG solver.
//!
//! One trial = build the TeaLeaf conduction system, protect it, inject a
//! [`FaultSpec`], run the solve, and classify the outcome against a clean
//! reference solution.  A campaign repeats this with fresh random faults and
//! accumulates an outcome histogram per scheme.

use crate::flip::{FaultSpec, FaultTarget};
use crate::outcome::FaultOutcome;
use abft_core::{AbftError, EccScheme, FaultLog, ProtectedCsr, ProtectedVector, ProtectionConfig};
use abft_solvers::backends::MatrixProtected;
use abft_solvers::{ChebyshevBounds, Method, Solver, SolverError};
use abft_sparse::CsrMatrix;
use abft_tealeaf::assembly::{assemble_matrix, assemble_rhs, face_coefficients, Conductivity};
use abft_tealeaf::states::apply_states;
use abft_tealeaf::{Deck, Grid};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;
use std::sync::Arc;

/// Configuration of a fault-injection campaign.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Grid size of the TeaLeaf problem used for each trial.
    pub nx: usize,
    /// Grid size of the TeaLeaf problem used for each trial.
    pub ny: usize,
    /// Number of trials per (scheme, target) combination.
    pub trials: usize,
    /// Number of bit flips injected per trial.
    pub flips_per_trial: usize,
    /// Protection configuration template (the element/row-pointer/vector
    /// schemes are taken from here).
    pub protection: ProtectionConfig,
    /// Region to inject into.
    pub target: FaultTarget,
    /// RNG seed (campaigns are reproducible).
    pub seed: u64,
    /// Relative solution error above which an undetected fault counts as a
    /// silent data corruption rather than as masked.
    pub sdc_threshold: f64,
    /// Iterative method run on the corrupted system (the generic solver
    /// layer makes every method injectable, not just CG).
    pub solver: Method,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            nx: 16,
            ny: 16,
            trials: 100,
            flips_per_trial: 1,
            protection: ProtectionConfig::full(EccScheme::Secded64),
            target: FaultTarget::MatrixValues,
            seed: 0xABF7,
            sdc_threshold: 1e-9,
            solver: Method::Cg,
        }
    }
}

/// Outcome histogram of a campaign.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CampaignStats {
    counts: HashMap<FaultOutcome, usize>,
    trials: usize,
}

impl CampaignStats {
    /// Records one outcome.
    pub fn record(&mut self, outcome: FaultOutcome) {
        *self.counts.entry(outcome).or_default() += 1;
        self.trials += 1;
    }

    /// Number of trials recorded.
    pub fn trials(&self) -> usize {
        self.trials
    }

    /// Count for one outcome.
    pub fn count(&self, outcome: FaultOutcome) -> usize {
        self.counts.get(&outcome).copied().unwrap_or(0)
    }

    /// Fraction of trials with this outcome.
    pub fn rate(&self, outcome: FaultOutcome) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.count(outcome) as f64 / self.trials as f64
        }
    }

    /// Fraction of trials in which the protection either handled the fault or
    /// the fault was harmless (everything except silent data corruption).
    pub fn safety_rate(&self) -> f64 {
        1.0 - self.rate(FaultOutcome::SilentDataCorruption)
    }
}

impl std::fmt::Display for CampaignStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for outcome in FaultOutcome::ALL {
            writeln!(
                f,
                "{:>26}: {:5} ({:5.1} %)",
                outcome.label(),
                self.count(outcome),
                100.0 * self.rate(outcome)
            )?;
        }
        Ok(())
    }
}

/// A fault-injection campaign.
#[derive(Debug, Clone)]
pub struct Campaign {
    config: CampaignConfig,
    matrix: CsrMatrix,
    rhs: Vec<f64>,
    reference: Vec<f64>,
}

impl Campaign {
    /// Prepares the campaign: assembles the TeaLeaf system once and computes
    /// the clean reference solution.
    pub fn new(config: CampaignConfig) -> Self {
        let deck = Deck::standard(config.nx, config.ny, 1);
        let grid = Grid::new(deck.x_cells, deck.y_cells, deck.x_max, deck.y_max);
        let mut density = vec![1.0; grid.cells()];
        let mut energy = vec![1.0; grid.cells()];
        apply_states(&grid, &deck.states, &mut density, &mut energy);
        let coeffs = face_coefficients(&grid, &density, Conductivity::Reciprocal);
        let matrix = assemble_matrix(&grid, &coeffs, deck.dt_init);
        let rhs = assemble_rhs(&density, &energy);
        let reference = Solver::cg()
            .max_iterations(deck.max_iters)
            .tolerance(deck.eps)
            .solve(&matrix, &rhs)
            .expect("plain reference solve cannot fault");
        assert!(reference.status.converged, "reference solve must converge");
        Campaign {
            config,
            matrix,
            rhs,
            reference: reference.solution,
        }
    }

    /// The campaign configuration.
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// Runs all trials and returns the outcome histogram.
    ///
    /// Fault specs are drawn sequentially from the seeded RNG (so the
    /// campaign stays reproducible), then every trial is submitted to the
    /// shared worker pool and the outcomes are collected in submission
    /// order — trials overlap instead of running one at a time, and the
    /// histogram is identical to what the historical serial loop produced.
    pub fn run(&self) -> CampaignStats {
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);
        let specs: Vec<FaultSpec> = (0..self.config.trials)
            .map(|_| {
                FaultSpec::random(
                    &mut rng,
                    self.config.target,
                    self.target_elements(),
                    self.config.flips_per_trial,
                )
            })
            .collect();
        let shared = Arc::new(self.clone());
        let tickets: Vec<abft_serve::Ticket<FaultOutcome>> = specs
            .into_iter()
            .map(|spec| {
                let campaign = Arc::clone(&shared);
                abft_serve::submit(move || campaign.run_trial(&spec))
            })
            .collect();
        let mut stats = CampaignStats::default();
        for ticket in tickets {
            stats.record(ticket.wait());
        }
        stats
    }

    /// Number of elements in the configured target region.
    fn target_elements(&self) -> usize {
        match self.config.target {
            FaultTarget::MatrixValues | FaultTarget::MatrixColumnIndices => self.matrix.nnz(),
            FaultTarget::RowPointer => self.matrix.rows() + 1,
            FaultTarget::DenseVector => self.rhs.len(),
        }
    }

    /// Runs a single trial with the given fault specification.
    pub fn run_trial(&self, spec: &FaultSpec) -> FaultOutcome {
        match spec.target {
            FaultTarget::DenseVector => self.run_vector_trial(spec),
            _ => self.run_matrix_trial(spec),
        }
    }

    fn run_matrix_trial(&self, spec: &FaultSpec) -> FaultOutcome {
        let mut protected = match ProtectedCsr::from_csr(&self.matrix, &self.config.protection) {
            Ok(p) => p,
            Err(_) => return FaultOutcome::DetectedUncorrectable,
        };
        for &(element, bit) in &spec.flips {
            match spec.target {
                FaultTarget::MatrixValues => protected.inject_value_bit_flip(element, bit),
                FaultTarget::MatrixColumnIndices => protected.inject_col_bit_flip(element, bit),
                FaultTarget::RowPointer => protected.inject_row_pointer_bit_flip(element, bit),
                FaultTarget::DenseVector => unreachable!(),
            }
        }
        // Jacobi needs a much larger iteration budget than the Krylov /
        // Chebyshev methods; keep the cap tight for the others so stalled
        // trials (e.g. an undetected corruption under no protection) don't
        // burn 10x the iterations for nothing.
        let max_iterations = match self.config.solver {
            Method::Jacobi => 20_000,
            _ => 2_000,
        };
        // Spectral bounds are estimated from the *clean* matrix (TeaLeaf
        // derives them at assembly time, before any upset can strike) — the
        // corrupted copy could yield arbitrarily bad bounds and stall the
        // Chebyshev-type methods.
        let solver = Solver::new(self.config.solver)
            .max_iterations(max_iterations)
            .tolerance(1e-15)
            .bounds(ChebyshevBounds::estimate_gershgorin(&self.matrix));
        match solver.solve_operator(&MatrixProtected::new(&protected), &self.rhs) {
            Err(SolverError::Fault(AbftError::OutOfRange { .. })) => FaultOutcome::BoundsCaught,
            Err(_) => FaultOutcome::DetectedUncorrectable,
            Ok(outcome) => {
                if outcome.faults.total_corrected() > 0 {
                    FaultOutcome::Corrected
                } else if self.relative_error(&outcome.solution) <= self.config.sdc_threshold {
                    FaultOutcome::Masked
                } else {
                    FaultOutcome::SilentDataCorruption
                }
            }
        }
    }

    fn run_vector_trial(&self, spec: &FaultSpec) -> FaultOutcome {
        let log = FaultLog::new();
        let scheme = self.config.protection.vectors;
        let backend = self.config.protection.crc_backend;
        let mut vector = ProtectedVector::from_slice(&self.rhs, scheme, backend);
        let clean: Vec<f64> = (0..vector.len()).map(|i| vector.get(i)).collect();
        for &(element, bit) in &spec.flips {
            vector.inject_bit_flip(element, bit);
        }
        match vector.scrub(&log) {
            Err(_) => FaultOutcome::DetectedUncorrectable,
            Ok(_) => {
                let recovered: Vec<f64> = (0..vector.len()).map(|i| vector.get(i)).collect();
                let max_rel = clean
                    .iter()
                    .zip(&recovered)
                    .map(|(a, b)| {
                        if *a == 0.0 {
                            (a - b).abs()
                        } else {
                            ((a - b) / a).abs()
                        }
                    })
                    .fold(0.0f64, f64::max);
                if log.total_corrected() > 0 && max_rel <= self.config.sdc_threshold {
                    FaultOutcome::Corrected
                } else if max_rel <= self.config.sdc_threshold {
                    FaultOutcome::Masked
                } else {
                    FaultOutcome::SilentDataCorruption
                }
            }
        }
    }

    fn relative_error(&self, solution: &[f64]) -> f64 {
        let norm: f64 = self.reference.iter().map(|v| v * v).sum::<f64>().sqrt();
        let diff: f64 = solution
            .iter()
            .zip(&self.reference)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        if norm == 0.0 {
            diff
        } else {
            diff / norm
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abft_ecc::Crc32cBackend;

    fn config(scheme: EccScheme, target: FaultTarget, trials: usize) -> CampaignConfig {
        CampaignConfig {
            nx: 8,
            ny: 8,
            trials,
            flips_per_trial: 1,
            protection: ProtectionConfig::full(scheme).with_crc_backend(Crc32cBackend::SlicingBy16),
            target,
            seed: 42,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn secded_corrects_or_masks_every_single_flip() {
        for target in FaultTarget::ALL {
            let campaign = Campaign::new(config(EccScheme::Secded64, target, 40));
            let stats = campaign.run();
            assert_eq!(stats.trials(), 40);
            assert_eq!(
                stats.count(FaultOutcome::SilentDataCorruption),
                0,
                "{target:?}"
            );
            assert_eq!(
                stats.count(FaultOutcome::DetectedUncorrectable),
                0,
                "{target:?}: single flips must be correctable"
            );
            assert!(stats.safety_rate() == 1.0);
            assert!(
                stats.count(FaultOutcome::Corrected) > 0,
                "{target:?}: expected at least some corrections"
            );
        }
    }

    #[test]
    fn sed_detects_single_flips_without_correcting() {
        let campaign = Campaign::new(config(EccScheme::Sed, FaultTarget::MatrixValues, 40));
        let stats = campaign.run();
        assert_eq!(stats.count(FaultOutcome::SilentDataCorruption), 0);
        assert_eq!(stats.count(FaultOutcome::Corrected), 0);
        assert!(stats.count(FaultOutcome::DetectedUncorrectable) > 0);
    }

    #[test]
    fn unprotected_runs_suffer_silent_corruptions() {
        let mut cfg = config(EccScheme::None, FaultTarget::MatrixValues, 60);
        cfg.protection = ProtectionConfig::unprotected();
        // Flip high-order exponent bits often enough to corrupt the answer.
        cfg.flips_per_trial = 3;
        let campaign = Campaign::new(cfg);
        let stats = campaign.run();
        assert!(
            stats.count(FaultOutcome::SilentDataCorruption) > 0,
            "without protection some flips must corrupt the solution: {stats}"
        );
        assert!(stats.safety_rate() < 1.0);
    }

    #[test]
    fn double_flips_are_detected_by_secded_not_corrected() {
        let mut cfg = config(EccScheme::Secded64, FaultTarget::MatrixValues, 40);
        cfg.flips_per_trial = 2;
        let campaign = Campaign::new(cfg);
        let stats = campaign.run();
        assert_eq!(stats.count(FaultOutcome::SilentDataCorruption), 0);
        // Two flips in the same codeword are uncorrectable; two flips in
        // different codewords are each corrected — both happen.
        assert!(
            stats.count(FaultOutcome::DetectedUncorrectable) > 0
                || stats.count(FaultOutcome::Corrected) > 0
        );
    }

    #[test]
    fn crc_handles_burst_errors() {
        let campaign = Campaign::new(config(EccScheme::Crc32c, FaultTarget::MatrixValues, 1));
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..20 {
            let spec = FaultSpec::random_burst(
                &mut rng,
                FaultTarget::MatrixValues,
                campaign.matrix.nnz(),
                5,
            );
            let outcome = campaign.run_trial(&spec);
            assert!(
                outcome.is_safe(),
                "burst of 5 must at least be detected, got {outcome:?}"
            );
        }
    }

    #[test]
    fn every_solver_method_is_injectable() {
        // The generic solver layer means the campaign is no longer CG-only:
        // protected Chebyshev and PPCG absorb single flips just as well.
        for method in [Method::Jacobi, Method::Chebyshev, Method::Ppcg] {
            let mut cfg = config(EccScheme::Secded64, FaultTarget::MatrixValues, 12);
            cfg.solver = method;
            let stats = Campaign::new(cfg).run();
            assert_eq!(
                stats.count(FaultOutcome::SilentDataCorruption),
                0,
                "{method:?}"
            );
            assert!(stats.count(FaultOutcome::Corrected) > 0, "{method:?}");
        }
    }

    #[test]
    fn stats_bookkeeping() {
        let mut stats = CampaignStats::default();
        stats.record(FaultOutcome::Corrected);
        stats.record(FaultOutcome::Corrected);
        stats.record(FaultOutcome::SilentDataCorruption);
        assert_eq!(stats.trials(), 3);
        assert_eq!(stats.count(FaultOutcome::Corrected), 2);
        assert!((stats.rate(FaultOutcome::Corrected) - 2.0 / 3.0).abs() < 1e-12);
        assert!((stats.safety_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert!(stats.to_string().contains("corrected"));
        assert_eq!(CampaignStats::default().rate(FaultOutcome::Masked), 0.0);
    }
}
