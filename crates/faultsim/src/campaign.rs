//! Fault-injection campaigns over the protected CG solver.
//!
//! One trial = build the TeaLeaf conduction system, protect it, inject a
//! fault (bit flips, a burst, or a whole-chunk erasure), run the solve, and
//! classify the outcome against a clean reference solution.  A campaign
//! repeats this with fresh random faults and accumulates an outcome
//! histogram per scheme.
//!
//! Every trial draws from its **own** ChaCha stream keyed by the campaign
//! seed and the trial index, so the histogram is identical for any worker
//! count or dispatch order; trials are dispatched to the shared worker pool
//! in batches whose local counts merge order-independently.
//!
//! A trial is split into two deterministic halves: [`Campaign::draw_trial`]
//! turns (seed, trial index) into a concrete [`TrialDraw`] — every random
//! decision the trial will make — and [`Campaign::execute_draw`] runs that
//! draw against the protected system.  The split is what makes failures
//! *replayable*: a captured draw re-executes bit for bit without the RNG
//! (see [`crate::record`]), and the minimizer shrinks draws by re-executing
//! candidates.  Campaigns at scale run through the streaming engine in
//! [`crate::engine`], which folds outcomes into per-worker accumulators
//! (memory `O(workers)`, not `O(trials)`) and supports adaptive early
//! stopping.

use crate::flip::{FaultSpec, FaultTarget, SolverVectorTarget};
use crate::outcome::FaultOutcome;
use abft_core::{
    AbftError, AnyProtectedMatrix, EccScheme, FaultLog, FaultLogSnapshot, ProtectedMatrix,
    ProtectedVector, ProtectionConfig, StorageTier,
};
use abft_solvers::backends::{FullyProtected, MatrixProtected};
use abft_solvers::{
    cg_with_poll, ft_pcg, ChebyshevBounds, FaultContext, Ilu0, LinearOperator, Method, Polynomial,
    PrecondKind, Preconditioner, Reliability, ReliabilityPolicy, SolveStatus, Solver, SolverConfig,
    SolverError,
};
use abft_sparse::CsrMatrix;
use abft_tealeaf::assembly::{assemble_matrix, assemble_rhs, face_coefficients, Conductivity};
use abft_tealeaf::states::apply_states;
use abft_tealeaf::{Deck, Grid};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::cell::Cell;
use std::collections::HashMap;

/// What one trial injects into the running solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectionKind {
    /// `flips_per_trial` independent uniformly random bit flips — the
    /// historical single/multi-bit-upset model.
    BitFlips,
    /// One contiguous burst of `flips_per_trial` bits inside one element
    /// (the error class CRC32C targets).
    Burst,
    /// Mid-iteration whole-chunk erasure of dense solver-vector state: a
    /// chunk of the CG direction vector is overwritten with garbage during
    /// an SpMV, modelling a lost shard rather than a bit upset.  Requires
    /// `protection.vectors != None`; recovery additionally requires the
    /// parity tier (`protection.parity`).
    ChunkErasure,
    /// Erasure of a whole row-pointer codeword group: every entry of an
    /// aligned 4-element span has half its bits flipped.
    RowPointerGroupErasure,
    /// `flips_per_trial` independent bit flips into the preconditioner's
    /// stored factors before the FT-PCG solve starts — the persistent-SDC
    /// model for the inner stage.  The trial runs the flexible inner-outer
    /// solver with the preconditioner built in the tier
    /// [`CampaignConfig::precond_reliability`] selects.
    PrecondFactorFlips,
    /// One contiguous burst of `flips_per_trial` bits inside a single
    /// stored preconditioner factor (multi-bit upset in the inner stage).
    PrecondFactorBurst,
    /// A transient burst written into the preconditioner's **output**
    /// vector mid-inner-apply — after the inner stage computed `z`, before
    /// the protected outer iteration screens it.  This strikes exactly the
    /// reliability boundary the bounded-norm sanity screen guards.
    InnerApplyBurst,
    /// `flips_per_trial` independent bit flips planted in one **live solver
    /// vector** (`x`, `r` or `p`) between two CG iterations, via the
    /// solver's poll hook — the upset strikes state the solver *owns*
    /// mid-solve rather than at-rest storage, so the next kernel that reads
    /// the vector runs the detect/correct/rebuild ladder on the live
    /// recurrence.  Requires `protection.vectors != None` and [`Method::Cg`].
    SolverVectorFlips,
    /// One contiguous burst of `flips_per_trial` bits inside a single
    /// element of a live solver vector, planted mid-iteration like
    /// [`InjectionKind::SolverVectorFlips`].
    SolverVectorBurst,
}

/// Configuration of a fault-injection campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignConfig {
    /// Grid size of the TeaLeaf problem used for each trial.
    pub nx: usize,
    /// Grid size of the TeaLeaf problem used for each trial.
    pub ny: usize,
    /// Number of trials per (scheme, target) combination.
    pub trials: usize,
    /// Number of bit flips injected per trial.
    pub flips_per_trial: usize,
    /// Protection configuration template (the element/row-pointer/vector
    /// schemes are taken from here).
    pub protection: ProtectionConfig,
    /// Region to inject into.
    pub target: FaultTarget,
    /// RNG seed (campaigns are reproducible).
    pub seed: u64,
    /// Relative solution error above which an undetected fault counts as a
    /// silent data corruption rather than as masked.
    pub sdc_threshold: f64,
    /// Iterative method run on the corrupted system (the generic solver
    /// layer makes every method injectable, not just CG).
    pub solver: Method,
    /// What each trial injects (bit flips, a burst, or an erasure).
    pub injection: InjectionKind,
    /// Which protected storage tier each trial encodes the matrix into.
    /// Matrix-side faults strike that tier's own redundancy layout (e.g.
    /// per-element row indexes under [`StorageTier::Coo`]).
    pub storage: StorageTier,
    /// Preconditioner used by the inner-apply injection kinds
    /// ([`InjectionKind::PrecondFactorFlips`] and friends); ignored by the
    /// other kinds.
    pub precond: PrecondKind,
    /// Reliability tier the preconditioner is built in for the inner-apply
    /// injection kinds: [`ReliabilityPolicy::Selective`] (the default)
    /// leaves the inner stage unchecked and relies on the outer screen,
    /// [`ReliabilityPolicy::Uniform`] protects the factors themselves.
    pub precond_reliability: ReliabilityPolicy,
}

impl CampaignConfig {
    /// The ECC scheme guarding the region this campaign injects into — the
    /// `scheme` a captured [`crate::record::TrialRecord`] reports.
    pub fn active_scheme(&self) -> EccScheme {
        match self.injection {
            InjectionKind::BitFlips | InjectionKind::Burst => match self.target {
                FaultTarget::MatrixValues | FaultTarget::MatrixColumnIndices => {
                    self.protection.elements
                }
                FaultTarget::RowPointer => self.protection.row_pointer,
                FaultTarget::DenseVector => self.protection.vectors,
            },
            InjectionKind::RowPointerGroupErasure => self.protection.row_pointer,
            InjectionKind::ChunkErasure
            | InjectionKind::SolverVectorFlips
            | InjectionKind::SolverVectorBurst
            | InjectionKind::InnerApplyBurst => self.protection.vectors,
            // The factor store is built with the element scheme (when the
            // reliability tier protects it at all).
            InjectionKind::PrecondFactorFlips | InjectionKind::PrecondFactorBurst => {
                self.protection.elements
            }
        }
    }
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            nx: 16,
            ny: 16,
            trials: 100,
            flips_per_trial: 1,
            protection: ProtectionConfig::full(EccScheme::Secded64),
            target: FaultTarget::MatrixValues,
            seed: 0xABF7,
            sdc_threshold: 1e-9,
            solver: Method::Cg,
            injection: InjectionKind::BitFlips,
            storage: StorageTier::Csr,
            precond: PrecondKind::Ilu0,
            precond_reliability: ReliabilityPolicy::Selective,
        }
    }
}

/// Outcome histogram of a campaign.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CampaignStats {
    counts: HashMap<FaultOutcome, usize>,
    trials: usize,
}

impl CampaignStats {
    /// Records one outcome.
    pub fn record(&mut self, outcome: FaultOutcome) {
        *self.counts.entry(outcome).or_default() += 1;
        self.trials += 1;
    }

    /// Records `count` occurrences of `outcome` at once — the bulk entry
    /// point the streaming engine uses to fold a drained per-worker
    /// accumulator into a histogram.  A zero count is a no-op (no empty
    /// entry is created, so histogram equality is unaffected).
    pub fn add(&mut self, outcome: FaultOutcome, count: usize) {
        if count == 0 {
            return;
        }
        *self.counts.entry(outcome).or_default() += count;
        self.trials += count;
    }

    /// Number of trials recorded.
    pub fn trials(&self) -> usize {
        self.trials
    }

    /// Count for one outcome.
    pub fn count(&self, outcome: FaultOutcome) -> usize {
        self.counts.get(&outcome).copied().unwrap_or(0)
    }

    /// Fraction of trials with this outcome.
    pub fn rate(&self, outcome: FaultOutcome) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.count(outcome) as f64 / self.trials as f64
        }
    }

    /// Fraction of trials in which the protection either handled the fault or
    /// the fault was harmless (everything except silent corruption).
    pub fn safety_rate(&self) -> f64 {
        1.0 - self.rate(FaultOutcome::SilentCorruption)
    }

    /// Fraction of trials that still produced the correct answer
    /// (corrected, rebuilt from parity, or masked).
    pub fn recovery_rate(&self) -> f64 {
        FaultOutcome::ALL
            .into_iter()
            .filter(|o| o.is_recovered())
            .map(|o| self.rate(o))
            .sum()
    }

    /// Folds another histogram into this one (order-independent, so batch
    /// results can merge in any completion order).
    pub fn merge(&mut self, other: &CampaignStats) {
        for (outcome, count) in &other.counts {
            *self.counts.entry(*outcome).or_default() += count;
        }
        self.trials += other.trials;
    }

    /// Wilson 95 % score interval for the rate of `outcome` — the
    /// uncertainty attached to every streamed campaign count.  Returns the
    /// full `[0, 1]` interval when no trials were recorded.
    pub fn wilson_ci(&self, outcome: FaultOutcome) -> (f64, f64) {
        Self::wilson(self.count(outcome), self.trials)
    }

    /// Wilson 95 % score interval for `successes` out of `trials`.
    ///
    /// With `trials == 0` there is no data, so the interval degenerates to
    /// the whole probability axis `(0.0, 1.0)` — deliberately, because a
    /// vacuous claim must not tighten either bound.  Note the asymmetry
    /// against every `trials > 0` case (where both bounds are data-driven):
    /// callers that *render* intervals should show the degenerate case as
    /// "n/a" rather than as a seemingly measured 0–100 % row —
    /// [`CampaignStats::print_summary`] does.
    pub fn wilson(successes: usize, trials: usize) -> (f64, f64) {
        Self::wilson_with_z(successes, trials, WILSON_Z95)
    }

    /// Wilson score interval for `successes` out of `trials` at an explicit
    /// critical value `z`.  The streaming engine's sequential stop rule uses
    /// this with a spending-corrected `z` (wider than 95 %) so that peeking
    /// at batch boundaries keeps the overall error probability bounded;
    /// everything else uses the 95 % wrapper [`CampaignStats::wilson`].
    /// Returns the degenerate `(0.0, 1.0)` when `trials == 0`.
    pub fn wilson_with_z(successes: usize, trials: usize, z: f64) -> (f64, f64) {
        if trials == 0 {
            return (0.0, 1.0);
        }
        let n = trials as f64;
        let p = successes as f64 / n;
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let centre = p + z2 / (2.0 * n);
        let half = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
        (
            (((centre - half) / denom).max(0.0)),
            (((centre + half) / denom).min(1.0)),
        )
    }

    /// Renders the outcome histogram, one row per outcome with its count,
    /// rate and Wilson 95 % CI.  This is the body of the [`Display`]
    /// implementation.  With zero trials every row renders "n/a" instead of
    /// the misleading `0.0 %, CI [0.0, 100.0]` the raw degenerate interval
    /// would produce (see [`CampaignStats::wilson`]).
    ///
    /// [`Display`]: std::fmt::Display
    pub fn print_summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for outcome in FaultOutcome::ALL {
            if self.trials == 0 {
                let _ = writeln!(
                    out,
                    "{:>30}: {:5} (  n/a  , 95 % CI n/a)",
                    outcome.label(),
                    0,
                );
                continue;
            }
            let (lo, hi) = self.wilson_ci(outcome);
            let _ = writeln!(
                out,
                "{:>30}: {:5} ({:5.1} %, 95 % CI [{:5.1}, {:5.1}])",
                outcome.label(),
                self.count(outcome),
                100.0 * self.rate(outcome),
                100.0 * lo,
                100.0 * hi,
            );
        }
        out
    }
}

/// 97.5th percentile of N(0,1) — the critical value of the two-sided 95 %
/// Wilson interval.
pub const WILSON_Z95: f64 = 1.959_963_984_540_054_f64;

impl std::fmt::Display for CampaignStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.print_summary())
    }
}

/// What one executed trial reported back: the classified outcome plus the
/// residual-drift scalar the streaming engine buckets into its histogram.
#[derive(Debug, Clone, Copy)]
pub struct TrialObservation {
    /// The classified outcome.
    pub outcome: FaultOutcome,
    /// How far the returned answer drifted: the relative solution error
    /// against the clean reference for solve trials, the element-wise
    /// maximum relative error for at-rest vector-scrub trials, and the
    /// relative true residual for preconditioned trials (whose iteration
    /// path legitimately differs from the reference).  `NaN` when the trial
    /// produced no answer at all (aborted / fail-stopped) — the histogram
    /// buckets that separately.
    pub drift: f64,
}

/// The fully drawn, concrete injection plan of one trial — every random
/// decision [`Campaign::draw_trial`] made, and nothing else.  Executing the
/// same draw twice ([`Campaign::execute_draw`]) gives bit-identical trials,
/// which is what makes captured failures replayable and minimizable: the
/// shrinker edits the flip list of a draw and re-executes candidates, and
/// the failure corpus serializes draws verbatim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrialDraw {
    /// At-rest flips into protected storage ([`InjectionKind::BitFlips`],
    /// [`InjectionKind::Burst`], [`InjectionKind::RowPointerGroupErasure`]).
    Flips(FaultSpec),
    /// Mid-iteration flips into a live solver vector
    /// ([`InjectionKind::SolverVectorFlips`] / `SolverVectorBurst`).
    SolverVector {
        /// Which live vector of the CG recurrence is struck.
        vector: SolverVectorTarget,
        /// Zero-based iteration at (or past) which the flips land, once.
        strike_iteration: u64,
        /// `(element, bit)` flips applied to the struck vector.
        flips: Vec<(usize, u32)>,
    },
    /// Mid-iteration whole-chunk erasure ([`InjectionKind::ChunkErasure`]).
    ChunkErasure {
        /// Index of the erased chunk.
        chunk: usize,
        /// Chunk granularity in elements.
        chunk_words: usize,
        /// Zero-based iteration at (or past) which the erasure fires, once.
        strike_iteration: u64,
        /// Seed for the garbage pattern overwriting the chunk.
        garbage_seed: u64,
    },
    /// Pre-solve flips into the preconditioner's stored factors
    /// ([`InjectionKind::PrecondFactorFlips`] / `PrecondFactorBurst`): a
    /// list of `(factor index, bit)` pairs.
    PrecondFactors(Vec<(usize, u32)>),
    /// A transient burst into the inner apply's output
    /// ([`InjectionKind::InnerApplyBurst`]).
    InnerApplyBurst {
        /// Zero-based inner-apply call at (or past) which the burst fires.
        strike_apply: u64,
        /// Element of the output vector to corrupt.
        element: usize,
        /// First bit of the contiguous burst.
        start_bit: u32,
        /// Burst length in bits.
        length: u32,
    },
}

impl TrialDraw {
    /// The editable flip list of this draw, if it has one — the part the
    /// minimizer shrinks.  Strike timing and erasure geometry are left
    /// alone: a one-flip change to them changes the fault *class*, not its
    /// weight.
    pub fn flips(&self) -> Option<&[(usize, u32)]> {
        match self {
            TrialDraw::Flips(spec) => Some(&spec.flips),
            TrialDraw::SolverVector { flips, .. } => Some(flips),
            TrialDraw::PrecondFactors(flips) => Some(flips),
            TrialDraw::ChunkErasure { .. } | TrialDraw::InnerApplyBurst { .. } => None,
        }
    }

    /// A copy of this draw with its flip list replaced (identity for draws
    /// without one).  The minimizer's candidate generator.
    pub fn with_flips(&self, flips: Vec<(usize, u32)>) -> TrialDraw {
        let mut draw = self.clone();
        match &mut draw {
            TrialDraw::Flips(spec) => spec.flips = flips,
            TrialDraw::SolverVector { flips: f, .. } => *f = flips,
            TrialDraw::PrecondFactors(f) => *f = flips,
            TrialDraw::ChunkErasure { .. } | TrialDraw::InnerApplyBurst { .. } => {}
        }
        draw
    }

    /// Fault weight: the number of flipped bits (erasures count their
    /// geometry in elements/bits).
    pub fn weight(&self) -> usize {
        match self {
            TrialDraw::Flips(spec) => spec.flips.len(),
            TrialDraw::SolverVector { flips, .. } => flips.len(),
            TrialDraw::PrecondFactors(flips) => flips.len(),
            TrialDraw::ChunkErasure { chunk_words, .. } => *chunk_words,
            TrialDraw::InnerApplyBurst { length, .. } => *length as usize,
        }
    }
}

/// A fault-injection campaign.
#[derive(Debug, Clone)]
pub struct Campaign {
    config: CampaignConfig,
    matrix: CsrMatrix,
    rhs: Vec<f64>,
    reference: Vec<f64>,
}

impl Campaign {
    /// Prepares the campaign: assembles the TeaLeaf system once and computes
    /// the clean reference solution.
    pub fn new(config: CampaignConfig) -> Self {
        let deck = Deck::standard(config.nx, config.ny, 1);
        let grid = Grid::new(deck.x_cells, deck.y_cells, deck.x_max, deck.y_max);
        let mut density = vec![1.0; grid.cells()];
        let mut energy = vec![1.0; grid.cells()];
        apply_states(&grid, &deck.states, &mut density, &mut energy);
        let coeffs = face_coefficients(&grid, &density, Conductivity::Reciprocal);
        let matrix = assemble_matrix(&grid, &coeffs, deck.dt_init);
        let rhs = assemble_rhs(&density, &energy);
        let reference = Solver::cg()
            .max_iterations(deck.max_iters)
            .tolerance(deck.eps)
            .solve(&matrix, &rhs)
            .expect("plain reference solve cannot fault");
        assert!(reference.status.converged, "reference solve must converge");
        Campaign {
            config,
            matrix,
            rhs,
            reference: reference.solution,
        }
    }

    /// The campaign configuration.
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// Runs all trials and returns the outcome histogram.
    ///
    /// Every trial derives its own ChaCha stream from the campaign seed and
    /// the trial index ([`Campaign::run_trial_indexed`]), so trial `t`'s
    /// faults never depend on how many random draws earlier trials made.
    /// Trials run through the streaming engine ([`crate::engine`]): waves of
    /// pool jobs stream their outcomes into per-worker accumulators whose
    /// counts merge order-independently — the totals are identical for any
    /// worker count, batch size, or completion order, and the outcome
    /// memory is `O(workers)` regardless of trial count.  No stop rule and
    /// no failure capture here; use [`Campaign::run_streaming`] for those.
    pub fn run(&self) -> CampaignStats {
        let stream = crate::engine::StreamConfig {
            stop: None,
            capture_limit: 0,
            ..crate::engine::StreamConfig::default()
        };
        self.run_streaming(&stream).stats
    }

    /// Runs trial number `trial` of this campaign: draws the fault from the
    /// trial's own ChaCha stream (keyed by campaign seed and trial index)
    /// and classifies the outcome.
    pub fn run_trial_indexed(&self, trial: usize) -> FaultOutcome {
        self.run_trial_observed(trial).outcome
    }

    /// Runs trial number `trial` and returns the full observation (outcome
    /// plus residual drift) — [`Campaign::draw_trial`] followed by
    /// [`Campaign::execute_draw`].
    pub fn run_trial_observed(&self, trial: usize) -> TrialObservation {
        self.execute_draw(&self.draw_trial(trial))
    }

    /// Makes every random decision of trial number `trial` — from the
    /// trial's own ChaCha stream, keyed by the campaign seed and the trial
    /// index — and returns the resulting concrete injection plan.  Pure:
    /// the same `(config, trial)` always yields the same draw, and the draw
    /// never depends on other trials.
    pub fn draw_trial(&self, trial: usize) -> TrialDraw {
        let mut rng = ChaCha8Rng::seed_from_u64(mix_seed(self.config.seed, trial as u64));
        match self.config.injection {
            InjectionKind::BitFlips => TrialDraw::Flips(FaultSpec::random(
                &mut rng,
                self.config.target,
                self.target_elements(),
                self.config.flips_per_trial,
            )),
            InjectionKind::Burst => {
                let length = (self.config.flips_per_trial.max(1) as u32)
                    .min(self.config.target.element_bits());
                TrialDraw::Flips(FaultSpec::random_burst(
                    &mut rng,
                    self.config.target,
                    self.target_elements(),
                    length,
                ))
            }
            InjectionKind::RowPointerGroupErasure => TrialDraw::Flips(FaultSpec::erase_span(
                &mut rng,
                FaultTarget::RowPointer,
                self.matrix.rows(),
                4,
            )),
            InjectionKind::ChunkErasure => {
                let chunk_words = self
                    .config
                    .protection
                    .parity
                    .map(|p| p.chunk_words)
                    .unwrap_or(64);
                let chunks = self.rhs.len().div_ceil(chunk_words);
                TrialDraw::ChunkErasure {
                    chunk: rng.gen_range(0..chunks),
                    chunk_words,
                    strike_iteration: u64::from(rng.gen_range(1u32..4)),
                    garbage_seed: rng.gen_range(0..u64::MAX),
                }
            }
            InjectionKind::SolverVectorFlips => {
                let vector = SolverVectorTarget::ALL[rng.gen_range(0..3usize)];
                let strike_iteration = u64::from(rng.gen_range(1u32..4));
                let n = self.rhs.len();
                let flips = (0..self.config.flips_per_trial.max(1))
                    .map(|_| (rng.gen_range(0..n), rng.gen_range(0..64)))
                    .collect();
                TrialDraw::SolverVector {
                    vector,
                    strike_iteration,
                    flips,
                }
            }
            InjectionKind::SolverVectorBurst => {
                let vector = SolverVectorTarget::ALL[rng.gen_range(0..3usize)];
                let strike_iteration = u64::from(rng.gen_range(1u32..4));
                let length = (self.config.flips_per_trial.max(1) as u32).min(64);
                let element = rng.gen_range(0..self.rhs.len());
                let start = rng.gen_range(0..=(64 - length));
                TrialDraw::SolverVector {
                    vector,
                    strike_iteration,
                    flips: (start..start + length).map(|bit| (element, bit)).collect(),
                }
            }
            InjectionKind::PrecondFactorFlips => {
                let factor_count = self.precond_factor_count();
                let flips = (0..self.config.flips_per_trial.max(1))
                    .map(|_| (rng.gen_range(0..factor_count), rng.gen_range(0..64u32)))
                    .collect();
                TrialDraw::PrecondFactors(flips)
            }
            InjectionKind::PrecondFactorBurst => {
                let factor_count = self.precond_factor_count();
                let length = (self.config.flips_per_trial.max(1) as u32).min(64);
                let k = rng.gen_range(0..factor_count);
                let start = rng.gen_range(0..=(64 - length));
                TrialDraw::PrecondFactors((start..start + length).map(|bit| (k, bit)).collect())
            }
            InjectionKind::InnerApplyBurst => {
                let length = (self.config.flips_per_trial.max(1) as u32).min(64);
                TrialDraw::InnerApplyBurst {
                    strike_apply: u64::from(rng.gen_range(1u32..4)),
                    element: rng.gen_range(0..self.rhs.len()),
                    start_bit: rng.gen_range(0..=(64 - length)),
                    length,
                }
            }
        }
    }

    /// Executes a concrete injection plan and classifies what survived.
    /// Deterministic: the same draw always produces the same observation,
    /// which is what [`Campaign::replay`](crate::record) and the failure
    /// minimizer rely on.
    pub fn execute_draw(&self, draw: &TrialDraw) -> TrialObservation {
        match draw {
            TrialDraw::Flips(spec) => self.run_trial_drawn(spec),
            TrialDraw::SolverVector {
                vector,
                strike_iteration,
                flips,
            } => self.run_solver_vector_trial(*vector, *strike_iteration, flips),
            TrialDraw::ChunkErasure {
                chunk,
                chunk_words,
                strike_iteration,
                garbage_seed,
            } => {
                self.run_chunk_erasure_trial(*chunk, *chunk_words, *strike_iteration, *garbage_seed)
            }
            TrialDraw::PrecondFactors(flips) => self.run_precond_trial(flips, None),
            TrialDraw::InnerApplyBurst {
                strike_apply,
                element,
                start_bit,
                length,
            } => self.run_precond_trial(
                &[],
                Some(InjectingPreconditionerSpec {
                    strike_apply: *strike_apply,
                    element: *element,
                    start_bit: *start_bit,
                    length: *length,
                }),
            ),
        }
    }

    /// Number of stored factors of the configured preconditioner — the
    /// element space the factor-flip draws index into.  Builds a throwaway
    /// instance (the count is a property of the sparsity pattern, not of
    /// the trial).  Panics if the preconditioner cannot be built at all:
    /// campaign systems are SPD TeaLeaf assemblies, for which both kinds
    /// always build.
    fn precond_factor_count(&self) -> usize {
        let tier = self.config.precond_reliability.tier();
        let scheme = self.config.protection.elements;
        let backend = self.config.protection.crc_backend;
        match self.config.precond {
            PrecondKind::Ilu0 => Ilu0::new(&self.matrix, tier, scheme, backend)
                .expect("ILU(0) always builds on the SPD campaign system")
                .factor_count(),
            PrecondKind::Polynomial(steps) => {
                Polynomial::new(&self.matrix, steps, tier, scheme, backend)
                    .expect("the polynomial preconditioner always builds")
                    .factor_count()
            }
        }
    }

    /// Number of elements in the configured target region — storage-aware,
    /// because the structural region differs per tier: the CSR row pointer
    /// has `rows + 1` entries while the COO tier carries one protected row
    /// index per stored element.  (For blocked CSR the first `rows + 1`
    /// concatenated per-block entries are targeted, a uniform subset valid
    /// for any realized block count.)
    fn target_elements(&self) -> usize {
        match self.config.target {
            FaultTarget::MatrixValues | FaultTarget::MatrixColumnIndices => self.matrix.nnz(),
            FaultTarget::RowPointer => match self.config.storage {
                StorageTier::Coo => self.matrix.nnz(),
                StorageTier::Csr | StorageTier::BlockedCsr(_) => self.matrix.rows() + 1,
            },
            FaultTarget::DenseVector => self.rhs.len(),
        }
    }

    /// Runs a single trial with the given fault specification.
    pub fn run_trial(&self, spec: &FaultSpec) -> FaultOutcome {
        self.run_trial_drawn(spec).outcome
    }

    fn run_trial_drawn(&self, spec: &FaultSpec) -> TrialObservation {
        match spec.target {
            FaultTarget::DenseVector => self.run_vector_trial(spec),
            _ => self.run_matrix_trial(spec),
        }
    }

    /// Injects a whole-chunk erasure into the solver's direction vector
    /// mid-iteration and lets the rebuild/retry ladder fight it out: the
    /// striking operator poisons one chunk during an SpMV, the solver's
    /// per-kernel retry asks the vector to rebuild from parity, and the
    /// outcome is classified by what survived ([`FaultOutcome::DetectedRebuilt`]
    /// when the rebuild let the solve converge to the right answer).
    fn run_chunk_erasure_trial(
        &self,
        chunk: usize,
        chunk_words: usize,
        strike_iteration: u64,
        garbage_seed: u64,
    ) -> TrialObservation {
        assert_ne!(
            self.config.protection.vectors,
            EccScheme::None,
            "chunk-erasure campaigns need protected vectors (the erasure must be detectable)"
        );
        let protected = match AnyProtectedMatrix::encode(
            &self.matrix,
            &self.config.protection,
            self.config.storage,
        ) {
            Ok(p) => p,
            Err(_) => return aborted(FaultOutcome::DetectedAborted),
        };
        let op = FullyProtected::new(&protected);
        let striking = InjectingOperator {
            inner: &op,
            strike_iteration,
            chunk,
            chunk_words,
            garbage_seed,
            fired: Cell::new(false),
        };
        let max_iterations = match self.config.solver {
            Method::Jacobi => 20_000,
            _ => 2_000,
        };
        let solver = Solver::new(self.config.solver)
            .max_iterations(max_iterations)
            .tolerance(1e-15)
            .bounds(ChebyshevBounds::estimate_gershgorin(&self.matrix));
        match solver.solve_operator(&striking, &self.rhs) {
            Err(SolverError::Fault(AbftError::OutOfRange { .. })) => {
                aborted(FaultOutcome::BoundsCaught)
            }
            Err(_) => aborted(FaultOutcome::DetectedAborted),
            Ok(outcome) => {
                let drift = self.relative_error(&outcome.solution);
                let correct = drift <= self.config.sdc_threshold;
                let classified = if outcome.faults.total_rebuilt() > 0 {
                    if correct {
                        FaultOutcome::DetectedRebuilt
                    } else {
                        FaultOutcome::SilentCorruption
                    }
                } else if outcome.faults.total_corrected() > 0 && correct {
                    FaultOutcome::Corrected
                } else if correct {
                    FaultOutcome::Masked
                } else {
                    FaultOutcome::SilentCorruption
                };
                TrialObservation {
                    outcome: classified,
                    drift,
                }
            }
        }
    }

    /// Plants flips in a live solver vector between two CG iterations (via
    /// the solver's poll hook) and classifies what the protection tier made
    /// of damage to state the solver *owns*: the very next kernel that
    /// reads the struck vector runs the detect/correct/rebuild ladder on
    /// the live recurrence.
    fn run_solver_vector_trial(
        &self,
        vector: SolverVectorTarget,
        strike_iteration: u64,
        flips: &[(usize, u32)],
    ) -> TrialObservation {
        assert_eq!(
            self.config.solver,
            Method::Cg,
            "solver-vector injection rides the CG poll hook, which needs Method::Cg"
        );
        assert_ne!(
            self.config.protection.vectors,
            EccScheme::None,
            "solver-vector campaigns need protected vectors (unprotected live state cannot \
             distinguish detection from luck)"
        );
        let protected = match AnyProtectedMatrix::encode(
            &self.matrix,
            &self.config.protection,
            self.config.storage,
        ) {
            Ok(p) => p,
            Err(_) => return aborted(FaultOutcome::DetectedAborted),
        };
        let op = FullyProtected::new(&protected);
        let log = FaultLog::new();
        let base = FaultContext::with_log(&log);
        let ctx = base.scoped_to(op.reduction_workspace());
        let b = op.vector_from(&self.rhs);
        let config = SolverConfig::new(2_000, 1e-15);
        let fired = Cell::new(false);
        let result = cg_with_poll(&op, &b, &config, &ctx, |iteration, state| {
            if !fired.get() && iteration >= strike_iteration {
                fired.set(true);
                let struck = match vector {
                    SolverVectorTarget::X => state.x,
                    SolverVectorTarget::R => state.r,
                    SolverVectorTarget::P => state.p,
                };
                for &(element, bit) in flips {
                    struck.inject_bit_flip(element, bit);
                }
            }
        });
        match result {
            Err(SolverError::Fault(AbftError::OutOfRange { .. })) => {
                aborted(FaultOutcome::BoundsCaught)
            }
            Err(_) => aborted(FaultOutcome::DetectedAborted),
            Ok((mut x, status)) => {
                let solution = match op.finish(&mut x, &ctx) {
                    Ok(s) => s,
                    Err(_) => return aborted(FaultOutcome::DetectedAborted),
                };
                if !status.converged {
                    // The budget ran out loudly — a detected failure, never
                    // a silent one.
                    return aborted(FaultOutcome::DetectedAborted);
                }
                let drift = self.relative_error(&solution);
                let correct = drift <= self.config.sdc_threshold;
                let faults = log.snapshot();
                let classified = if faults.total_rebuilt() > 0 {
                    if correct {
                        FaultOutcome::DetectedRebuilt
                    } else {
                        FaultOutcome::SilentCorruption
                    }
                } else if faults.total_corrected() > 0 && correct {
                    FaultOutcome::Corrected
                } else if correct {
                    FaultOutcome::Masked
                } else {
                    FaultOutcome::SilentCorruption
                };
                TrialObservation {
                    outcome: classified,
                    drift,
                }
            }
        }
    }

    /// True squared residual `‖b − A·x‖₂²` of a returned solution,
    /// recomputed with the pristine (never-injected) assembly-time matrix —
    /// the same quantity the solvers compare against their tolerance, so
    /// the preconditioned trials' certification check is in the solver's
    /// own units.
    fn true_residual_sq(&self, solution: &[f64]) -> f64 {
        let mut ax = vec![0.0; self.rhs.len()];
        abft_sparse::spmv::spmv_serial(&self.matrix, solution, &mut ax);
        ax.iter()
            .zip(&self.rhs)
            .map(|(a, b)| (b - a) * (b - a))
            .sum::<f64>()
    }

    /// Runs one inner-apply fault trial: builds the preconditioner in the
    /// configured reliability tier, injects the drawn fault into the inner
    /// stage (`flips` into the stored factors pre-solve, and/or a transient
    /// `strike` burst into the inner apply's output mid-solve), runs the
    /// flexible inner-outer FT-PCG solver, and classifies what survived.
    /// The selective claim under test: inner SDC may cost iterations or
    /// trip the outer screen ([`FaultOutcome::BoundsCaught`]), but never
    /// yields a wrong answer.
    fn run_precond_trial(
        &self,
        flips: &[(usize, u32)],
        strike: Option<InjectingPreconditionerSpec>,
    ) -> TrialObservation {
        assert_eq!(
            self.config.solver,
            Method::Cg,
            "preconditioned campaigns run FT-PCG, which needs Method::Cg"
        );
        let protected = match AnyProtectedMatrix::encode(
            &self.matrix,
            &self.config.protection,
            self.config.storage,
        ) {
            Ok(p) => p,
            Err(_) => return aborted(FaultOutcome::DetectedAborted),
        };
        let tier = self.config.precond_reliability.tier();
        let scheme = self.config.protection.elements;
        let backend = self.config.protection.crc_backend;

        // Build concretely (not through `PrecondKind::build`) so the
        // factor-injection hooks stay reachable.
        enum Built {
            Ilu(Ilu0),
            Poly(Polynomial),
        }
        let mut built = match self.config.precond {
            PrecondKind::Ilu0 => match Ilu0::new(&self.matrix, tier, scheme, backend) {
                Ok(p) => Built::Ilu(p),
                Err(_) => return aborted(FaultOutcome::DetectedAborted),
            },
            PrecondKind::Polynomial(steps) => {
                match Polynomial::new(&self.matrix, steps, tier, scheme, backend) {
                    Ok(p) => Built::Poly(p),
                    Err(_) => return aborted(FaultOutcome::DetectedAborted),
                }
            }
        };
        for &(k, bit) in flips {
            match &mut built {
                Built::Ilu(p) => p.inject_factor_bit_flip(k, bit),
                Built::Poly(p) => p.inject_factor_bit_flip(k, bit),
            }
        }

        let inner: &dyn Preconditioner = match &built {
            Built::Ilu(p) => p,
            Built::Poly(p) => p,
        };
        let striking;
        let precond: &dyn Preconditioner = match strike {
            Some(spec) => {
                striking = InjectingPreconditioner {
                    inner,
                    spec,
                    applies: Cell::new(0),
                    fired: Cell::new(false),
                };
                &striking
            }
            None => inner,
        };

        let config = SolverConfig::new(2_000, 1e-15);
        let result = if self.config.protection.vectors != EccScheme::None {
            run_ft_pcg(
                &FullyProtected::new(&protected),
                &self.rhs,
                precond,
                &config,
            )
        } else {
            run_ft_pcg(
                &MatrixProtected::new(&protected),
                &self.rhs,
                precond,
                &config,
            )
        };
        match result {
            Err(SolverError::Fault(AbftError::OutOfRange { .. })) => {
                aborted(FaultOutcome::BoundsCaught)
            }
            Err(_) => aborted(FaultOutcome::DetectedAborted),
            Ok((solution, status, faults)) => {
                // FT-PCG declares convergence when the *squared* recurrence
                // residual drops below the absolute tolerance, so that is
                // exactly what a converged return certifies — recompute the
                // same quantity against the pristine operator and allow a
                // margin (1e6 squared = three orders of magnitude in the
                // norm) for recurrence drift over a long solve.  Genuine
                // corruption lands many orders above this line; honest
                // converged solves land well below it.
                //
                // The selective-reliability contract is residual-certified:
                // an inner fault may cost iterations (or stall the solve,
                // which the caller sees as `converged = false` — a detected
                // failure, never a silent one), but a *converged* return
                // whose true residual, recomputed against the pristine
                // operator, misses the certification is a silent
                // corruption.  Distance to a reference solution is the
                // wrong metric here: a distorted but benign preconditioner
                // legitimately changes the iteration path, so two correct
                // answers agree only up to conditioning-amplified rounding.
                if !status.converged {
                    return aborted(FaultOutcome::DetectedAborted);
                }
                let residual_sq = self.true_residual_sq(&solution);
                // Drift for preconditioned trials is the *relative true
                // residual* (distance to the reference solution is the
                // wrong metric here — see above).
                let b_norm: f64 = self.rhs.iter().map(|v| v * v).sum::<f64>().sqrt();
                let drift = if b_norm == 0.0 {
                    residual_sq.sqrt()
                } else {
                    residual_sq.sqrt() / b_norm
                };
                if residual_sq > config.tolerance * 1e6 {
                    return TrialObservation {
                        outcome: FaultOutcome::SilentCorruption,
                        drift,
                    };
                }
                let screened: u64 = faults.bounds_violations.iter().sum();
                let classified = if screened > 0 {
                    FaultOutcome::BoundsCaught
                } else if faults.total_rebuilt() > 0 {
                    FaultOutcome::DetectedRebuilt
                } else if faults.total_corrected() > 0 {
                    FaultOutcome::Corrected
                } else {
                    FaultOutcome::Masked
                };
                TrialObservation {
                    outcome: classified,
                    drift,
                }
            }
        }
    }

    fn run_matrix_trial(&self, spec: &FaultSpec) -> TrialObservation {
        let mut protected = match AnyProtectedMatrix::encode(
            &self.matrix,
            &self.config.protection,
            self.config.storage,
        ) {
            Ok(p) => p,
            Err(_) => return aborted(FaultOutcome::DetectedAborted),
        };
        for &(element, bit) in &spec.flips {
            match spec.target {
                FaultTarget::MatrixValues => protected.inject_value_bit_flip(element, bit),
                FaultTarget::MatrixColumnIndices => protected.inject_col_bit_flip(element, bit),
                FaultTarget::RowPointer => protected.inject_structure_bit_flip(element, bit),
                FaultTarget::DenseVector => unreachable!(),
            }
        }
        // Jacobi needs a much larger iteration budget than the Krylov /
        // Chebyshev methods; keep the cap tight for the others so stalled
        // trials (e.g. an undetected corruption under no protection) don't
        // burn 10x the iterations for nothing.
        let max_iterations = match self.config.solver {
            Method::Jacobi => 20_000,
            _ => 2_000,
        };
        // Spectral bounds are estimated from the *clean* matrix (TeaLeaf
        // derives them at assembly time, before any upset can strike) — the
        // corrupted copy could yield arbitrarily bad bounds and stall the
        // Chebyshev-type methods.
        let solver = Solver::new(self.config.solver)
            .max_iterations(max_iterations)
            .tolerance(1e-15)
            .bounds(ChebyshevBounds::estimate_gershgorin(&self.matrix));
        match solver.solve_operator(&MatrixProtected::new(&protected), &self.rhs) {
            Err(SolverError::Fault(AbftError::OutOfRange { .. })) => {
                aborted(FaultOutcome::BoundsCaught)
            }
            Err(_) => aborted(FaultOutcome::DetectedAborted),
            Ok(outcome) => {
                let drift = self.relative_error(&outcome.solution);
                let classified = if outcome.faults.total_corrected() > 0 {
                    FaultOutcome::Corrected
                } else if drift <= self.config.sdc_threshold {
                    FaultOutcome::Masked
                } else {
                    FaultOutcome::SilentCorruption
                };
                TrialObservation {
                    outcome: classified,
                    drift,
                }
            }
        }
    }

    fn run_vector_trial(&self, spec: &FaultSpec) -> TrialObservation {
        let log = FaultLog::new();
        let scheme = self.config.protection.vectors;
        let backend = self.config.protection.crc_backend;
        let mut vector = ProtectedVector::from_slice(&self.rhs, scheme, backend);
        let clean: Vec<f64> = (0..vector.len()).map(|i| vector.get(i)).collect();
        for &(element, bit) in &spec.flips {
            vector.inject_bit_flip(element, bit);
        }
        match vector.scrub(&log) {
            Err(_) => aborted(FaultOutcome::DetectedAborted),
            Ok(_) => {
                let recovered: Vec<f64> = (0..vector.len()).map(|i| vector.get(i)).collect();
                let max_rel = clean
                    .iter()
                    .zip(&recovered)
                    .map(|(a, b)| {
                        if *a == 0.0 {
                            (a - b).abs()
                        } else {
                            ((a - b) / a).abs()
                        }
                    })
                    .fold(0.0f64, f64::max);
                let classified =
                    if log.total_corrected() > 0 && max_rel <= self.config.sdc_threshold {
                        FaultOutcome::Corrected
                    } else if max_rel <= self.config.sdc_threshold {
                        FaultOutcome::Masked
                    } else {
                        FaultOutcome::SilentCorruption
                    };
                TrialObservation {
                    outcome: classified,
                    drift: max_rel,
                }
            }
        }
    }

    fn relative_error(&self, solution: &[f64]) -> f64 {
        relative_distance(&self.reference, solution)
    }
}

/// Observation of a trial that produced no answer at all (fail-stop,
/// screen trip, budget exhaustion): the drift is `NaN`, which the drift
/// histogram buckets separately from every measured magnitude.
fn aborted(outcome: FaultOutcome) -> TrialObservation {
    TrialObservation {
        outcome,
        drift: f64::NAN,
    }
}

/// `‖solution − reference‖₂ / ‖reference‖₂` (absolute when the reference
/// is zero).
fn relative_distance(reference: &[f64], solution: &[f64]) -> f64 {
    let norm: f64 = reference.iter().map(|v| v * v).sum::<f64>().sqrt();
    let diff: f64 = solution
        .iter()
        .zip(reference)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        .sqrt();
    if norm == 0.0 {
        diff
    } else {
        diff / norm
    }
}

/// SplitMix64-style mixing of (campaign seed, trial index) into an
/// independent stream key.  Trial `t`'s draws never depend on how many draws
/// earlier trials made, so the campaign histogram is identical for any
/// worker count, batch size, or dispatch order.
fn mix_seed(seed: u64, trial: u64) -> u64 {
    let mut z = seed ^ trial.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Wraps a protected operator and poisons one chunk of the *input* vector
/// the first time the solver applies it at (or past) the strike iteration —
/// the mid-iteration erasure of live solver state.  Everything else
/// delegates unchanged, so the solve is exactly the production stack with
/// one shard yanked out from under it.
struct InjectingOperator<'a, Op> {
    inner: &'a Op,
    strike_iteration: u64,
    chunk: usize,
    chunk_words: usize,
    garbage_seed: u64,
    fired: Cell<bool>,
}

impl<Op: LinearOperator<Vector = ProtectedVector>> LinearOperator for InjectingOperator<'_, Op> {
    type Vector = ProtectedVector;

    fn rows(&self) -> usize {
        self.inner.rows()
    }

    fn cols(&self) -> usize {
        self.inner.cols()
    }

    fn apply(
        &self,
        x: &mut ProtectedVector,
        y: &mut ProtectedVector,
        iteration: u64,
        ctx: &FaultContext,
    ) -> Result<(), SolverError> {
        if !self.fired.get() && iteration >= self.strike_iteration {
            self.fired.set(true);
            x.inject_chunk_erasure(self.chunk_words, self.chunk, self.garbage_seed);
        }
        self.inner.apply(x, y, iteration, ctx)
    }

    fn diagonal(&self, ctx: &FaultContext) -> Result<Vec<f64>, SolverError> {
        self.inner.diagonal(ctx)
    }

    fn vector_from(&self, values: &[f64]) -> ProtectedVector {
        self.inner.vector_from(values)
    }

    fn zero_vector(&self, n: usize) -> ProtectedVector {
        self.inner.zero_vector(n)
    }

    fn bounds_hint(&self) -> Option<ChebyshevBounds> {
        self.inner.bounds_hint()
    }

    fn reduction_workspace(&self) -> Option<&std::cell::RefCell<abft_core::ReductionWorkspace>> {
        self.inner.reduction_workspace()
    }

    fn finish(
        &self,
        solution: &mut ProtectedVector,
        ctx: &FaultContext,
    ) -> Result<Vec<f64>, SolverError> {
        self.inner.finish(solution, ctx)
    }
}

/// One full FT-PCG solve with its own fault log: the standalone production
/// path (`SolveSpec` runs the identical sequence), returned with the
/// snapshot so the trial can classify what the outer iteration observed.
fn run_ft_pcg<Op: LinearOperator>(
    op: &Op,
    rhs: &[f64],
    precond: &dyn Preconditioner,
    config: &SolverConfig,
) -> Result<(Vec<f64>, SolveStatus, FaultLogSnapshot), SolverError> {
    let log = FaultLog::new();
    let base = FaultContext::with_log(&log);
    let ctx = base.scoped_to(op.reduction_workspace());
    let b = op.vector_from(rhs);
    let (mut x, status) = ft_pcg(op, &b, precond, config, &ctx)?;
    let solution = op.finish(&mut x, &ctx)?;
    Ok((solution, status, log.snapshot()))
}

/// Where and how [`InjectingPreconditioner`] strikes.
#[derive(Debug, Clone, Copy)]
struct InjectingPreconditionerSpec {
    /// Zero-based inner-apply call at (or past) which the burst fires once.
    strike_apply: u64,
    /// Element of the inner apply's output vector to corrupt.
    element: usize,
    /// First bit of the contiguous burst.
    start_bit: u32,
    /// Burst length in bits.
    length: u32,
}

/// Wraps a preconditioner and writes one bit burst into the output vector
/// `z` the first time the apply counter reaches the strike point — after
/// the inner stage produced its answer, before the protected outer
/// iteration screens it.  Everything else delegates unchanged, so the
/// solve exercises the exact production reliability boundary.
struct InjectingPreconditioner<'a> {
    inner: &'a dyn Preconditioner,
    spec: InjectingPreconditionerSpec,
    applies: Cell<u64>,
    fired: Cell<bool>,
}

impl Preconditioner for InjectingPreconditioner<'_> {
    fn rows(&self) -> usize {
        self.inner.rows()
    }

    fn apply(&self, r: &[f64], z: &mut [f64], ctx: &FaultContext) -> Result<(), SolverError> {
        self.inner.apply(r, z, ctx)?;
        let call = self.applies.get();
        self.applies.set(call + 1);
        if !self.fired.get() && call >= self.spec.strike_apply {
            self.fired.set(true);
            let mut bits = z[self.spec.element].to_bits();
            for offset in 0..self.spec.length {
                bits ^= 1u64 << (self.spec.start_bit + offset);
            }
            z[self.spec.element] = f64::from_bits(bits);
        }
        Ok(())
    }

    fn reliability(&self) -> Reliability {
        self.inner.reliability()
    }

    fn bound_hint(&self) -> Option<f64> {
        self.inner.bound_hint()
    }

    fn label(&self) -> &'static str {
        self.inner.label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abft_ecc::Crc32cBackend;

    fn config(scheme: EccScheme, target: FaultTarget, trials: usize) -> CampaignConfig {
        CampaignConfig {
            nx: 8,
            ny: 8,
            trials,
            flips_per_trial: 1,
            protection: ProtectionConfig::full(scheme).with_crc_backend(Crc32cBackend::SlicingBy16),
            target,
            seed: 42,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn secded_corrects_or_masks_every_single_flip() {
        for target in FaultTarget::ALL {
            let campaign = Campaign::new(config(EccScheme::Secded64, target, 40));
            let stats = campaign.run();
            assert_eq!(stats.trials(), 40);
            assert_eq!(stats.count(FaultOutcome::SilentCorruption), 0, "{target:?}");
            assert_eq!(
                stats.count(FaultOutcome::DetectedAborted),
                0,
                "{target:?}: single flips must be correctable"
            );
            assert!(stats.safety_rate() == 1.0);
            assert!(
                stats.count(FaultOutcome::Corrected) > 0,
                "{target:?}: expected at least some corrections"
            );
        }
    }

    #[test]
    fn sed_detects_single_flips_without_correcting() {
        let campaign = Campaign::new(config(EccScheme::Sed, FaultTarget::MatrixValues, 40));
        let stats = campaign.run();
        assert_eq!(stats.count(FaultOutcome::SilentCorruption), 0);
        assert_eq!(stats.count(FaultOutcome::Corrected), 0);
        assert!(stats.count(FaultOutcome::DetectedAborted) > 0);
    }

    #[test]
    fn unprotected_runs_suffer_silent_corruptions() {
        let mut cfg = config(EccScheme::None, FaultTarget::MatrixValues, 60);
        cfg.protection = ProtectionConfig::unprotected();
        // Flip high-order exponent bits often enough to corrupt the answer.
        cfg.flips_per_trial = 3;
        let campaign = Campaign::new(cfg);
        let stats = campaign.run();
        assert!(
            stats.count(FaultOutcome::SilentCorruption) > 0,
            "without protection some flips must corrupt the solution: {stats}"
        );
        assert!(stats.safety_rate() < 1.0);
    }

    #[test]
    fn double_flips_are_detected_by_secded_not_corrected() {
        let mut cfg = config(EccScheme::Secded64, FaultTarget::MatrixValues, 40);
        cfg.flips_per_trial = 2;
        let campaign = Campaign::new(cfg);
        let stats = campaign.run();
        assert_eq!(stats.count(FaultOutcome::SilentCorruption), 0);
        // Two flips in the same codeword are uncorrectable; two flips in
        // different codewords are each corrected — both happen.
        assert!(
            stats.count(FaultOutcome::DetectedAborted) > 0
                || stats.count(FaultOutcome::Corrected) > 0
        );
    }

    #[test]
    fn trial_streams_are_independent_of_dispatch_order() {
        // Per-trial seeding: running trials 0..n in any order, or one at a
        // time, reproduces exactly the histogram `run()` computes.
        let campaign = Campaign::new(config(EccScheme::Secded64, FaultTarget::MatrixValues, 20));
        let batched = campaign.run();
        let mut reversed = CampaignStats::default();
        for trial in (0..20).rev() {
            reversed.record(campaign.run_trial_indexed(trial));
        }
        assert_eq!(batched, reversed);
    }

    #[test]
    fn chunk_erasure_with_parity_rebuilds_and_converges() {
        let mut cfg = config(EccScheme::Secded64, FaultTarget::DenseVector, 8);
        cfg.protection = cfg.protection.with_parity(abft_core::ParityConfig {
            stripe_chunks: 4,
            chunk_words: 16,
        });
        cfg.injection = InjectionKind::ChunkErasure;
        let stats = Campaign::new(cfg).run();
        assert_eq!(stats.trials(), 8);
        assert_eq!(stats.count(FaultOutcome::SilentCorruption), 0);
        assert!(
            stats.count(FaultOutcome::DetectedRebuilt) > 0,
            "erasures must be rebuilt from parity: {stats}"
        );
        assert_eq!(stats.count(FaultOutcome::DetectedAborted), 0, "{stats}");
    }

    #[test]
    fn chunk_erasure_without_parity_aborts_instead_of_corrupting() {
        let mut cfg = config(EccScheme::Secded64, FaultTarget::DenseVector, 8);
        cfg.injection = InjectionKind::ChunkErasure;
        let stats = Campaign::new(cfg).run();
        assert_eq!(stats.count(FaultOutcome::SilentCorruption), 0, "{stats}");
        assert_eq!(stats.count(FaultOutcome::DetectedRebuilt), 0, "{stats}");
        assert!(
            stats.count(FaultOutcome::DetectedAborted) > 0,
            "without parity the erasure must surface as an abort: {stats}"
        );
    }

    #[test]
    fn row_pointer_group_erasure_is_always_detected() {
        let mut cfg = config(EccScheme::Secded64, FaultTarget::RowPointer, 12);
        cfg.injection = InjectionKind::RowPointerGroupErasure;
        let stats = Campaign::new(cfg).run();
        assert_eq!(stats.count(FaultOutcome::SilentCorruption), 0, "{stats}");
        assert_eq!(stats.count(FaultOutcome::Corrected), 0, "{stats}");
        assert!(stats.safety_rate() == 1.0);
    }

    #[test]
    fn wilson_interval_brackets_the_rate() {
        let (lo, hi) = CampaignStats::wilson(99, 100);
        assert!(lo < 0.99 && 0.99 < hi);
        assert!(
            lo > 0.92,
            "99/100 should have a tight lower bound, got {lo}"
        );
        assert_eq!(CampaignStats::wilson(0, 0), (0.0, 1.0));
        let (lo, hi) = CampaignStats::wilson(0, 50);
        assert!(lo < 1e-12, "degenerate lower bound, got {lo}");
        assert!(hi < 0.12);
        let (lo, hi) = CampaignStats::wilson(50, 50);
        assert!(lo > 0.9);
        assert!(hi > 1.0 - 1e-12, "degenerate upper bound, got {hi}");
    }

    #[test]
    fn crc_handles_burst_errors() {
        let campaign = Campaign::new(config(EccScheme::Crc32c, FaultTarget::MatrixValues, 1));
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..20 {
            let spec = FaultSpec::random_burst(
                &mut rng,
                FaultTarget::MatrixValues,
                campaign.matrix.nnz(),
                5,
            );
            let outcome = campaign.run_trial(&spec);
            assert!(
                outcome.is_safe(),
                "burst of 5 must at least be detected, got {outcome:?}"
            );
        }
    }

    #[test]
    fn every_solver_method_is_injectable() {
        // The generic solver layer means the campaign is no longer CG-only:
        // protected Chebyshev and PPCG absorb single flips just as well.
        for method in [Method::Jacobi, Method::Chebyshev, Method::Ppcg] {
            let mut cfg = config(EccScheme::Secded64, FaultTarget::MatrixValues, 12);
            cfg.solver = method;
            let stats = Campaign::new(cfg).run();
            assert_eq!(stats.count(FaultOutcome::SilentCorruption), 0, "{method:?}");
            assert!(stats.count(FaultOutcome::Corrected) > 0, "{method:?}");
        }
    }

    #[test]
    fn storage_tiers_absorb_single_flips() {
        // The injection surface is storage-generic: the same campaign run
        // against the COO and blocked-CSR tiers strikes their own redundancy
        // layouts (per-element row indexes, per-block row pointers) and
        // SECDED still corrects every single flip.
        for storage in [StorageTier::Coo, StorageTier::BlockedCsr(4)] {
            for target in [
                FaultTarget::MatrixValues,
                FaultTarget::MatrixColumnIndices,
                FaultTarget::RowPointer,
            ] {
                let mut cfg = config(EccScheme::Secded64, target, 16);
                cfg.storage = storage;
                let stats = Campaign::new(cfg).run();
                assert_eq!(stats.trials(), 16, "{storage:?} {target:?}");
                assert_eq!(
                    stats.count(FaultOutcome::SilentCorruption),
                    0,
                    "{storage:?} {target:?}"
                );
                assert_eq!(
                    stats.count(FaultOutcome::DetectedAborted),
                    0,
                    "{storage:?} {target:?}: single flips must be correctable"
                );
                assert!(
                    stats.count(FaultOutcome::Corrected) > 0,
                    "{storage:?} {target:?}: expected at least some corrections"
                );
            }
        }
    }

    #[test]
    fn selective_inner_apply_bursts_never_corrupt_silently() {
        // The selective-reliability claim at campaign scale: an unchecked
        // inner apply whose output is hit by an 8-bit burst costs
        // iterations or trips the outer screen, never the answer.
        let mut cfg = config(EccScheme::Secded64, FaultTarget::DenseVector, 24);
        cfg.injection = InjectionKind::InnerApplyBurst;
        cfg.flips_per_trial = 8;
        cfg.precond_reliability = ReliabilityPolicy::Selective;
        let stats = Campaign::new(cfg).run();
        assert_eq!(stats.trials(), 24);
        assert_eq!(stats.count(FaultOutcome::SilentCorruption), 0, "{stats}");
        assert_eq!(
            stats.count(FaultOutcome::DetectedAborted),
            0,
            "the unreliable inner tier never fail-stops: {stats}"
        );
    }

    #[test]
    fn protected_factor_flips_are_corrected_in_the_uniform_tier() {
        let mut cfg = config(EccScheme::Secded64, FaultTarget::DenseVector, 16);
        cfg.injection = InjectionKind::PrecondFactorFlips;
        cfg.precond_reliability = ReliabilityPolicy::Uniform;
        let stats = Campaign::new(cfg).run();
        assert_eq!(stats.count(FaultOutcome::SilentCorruption), 0, "{stats}");
        assert_eq!(
            stats.count(FaultOutcome::DetectedAborted),
            0,
            "single factor flips must be SECDED-correctable: {stats}"
        );
        assert!(
            stats.count(FaultOutcome::Corrected) > 0,
            "expected the protected factor store to log corrections: {stats}"
        );
    }

    #[test]
    fn selective_factor_bursts_stay_safe_for_the_polynomial_fallback() {
        let mut cfg = config(EccScheme::Secded64, FaultTarget::DenseVector, 16);
        cfg.injection = InjectionKind::PrecondFactorBurst;
        cfg.flips_per_trial = 6;
        cfg.precond = PrecondKind::Polynomial(2);
        cfg.precond_reliability = ReliabilityPolicy::Selective;
        let stats = Campaign::new(cfg).run();
        assert_eq!(stats.trials(), 16);
        assert_eq!(stats.count(FaultOutcome::SilentCorruption), 0, "{stats}");
    }

    #[test]
    fn stats_bookkeeping() {
        let mut stats = CampaignStats::default();
        stats.record(FaultOutcome::Corrected);
        stats.record(FaultOutcome::Corrected);
        stats.record(FaultOutcome::SilentCorruption);
        assert_eq!(stats.trials(), 3);
        assert_eq!(stats.count(FaultOutcome::Corrected), 2);
        assert!((stats.rate(FaultOutcome::Corrected) - 2.0 / 3.0).abs() < 1e-12);
        assert!((stats.safety_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert!((stats.recovery_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert!(stats.to_string().contains("corrected"));
        assert_eq!(CampaignStats::default().rate(FaultOutcome::Masked), 0.0);

        let mut other = CampaignStats::default();
        other.record(FaultOutcome::DetectedRebuilt);
        other.merge(&stats);
        assert_eq!(other.trials(), 4);
        assert_eq!(other.count(FaultOutcome::Corrected), 2);
        assert_eq!(other.count(FaultOutcome::DetectedRebuilt), 1);
    }
}
