//! Classification of what happened to an injected fault.

/// The observed consequence of one fault-injection trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultOutcome {
    /// Detected and repaired; the run completed with the correct answer.
    Corrected,
    /// Detected but not repairable; the run was aborted with an error the
    /// application can act on (re-assemble, restart the step, …).
    DetectedUncorrectable,
    /// An out-of-range index produced by the corruption was caught by a
    /// bounds check before it could cause an out-of-bounds access.
    BoundsCaught,
    /// The flip was never flagged but had no effect on the result (it hit a
    /// reserved bit, a stored zero, or was numerically negligible).
    Masked,
    /// The flip was never flagged and the result is wrong — a silent data
    /// corruption.
    SilentDataCorruption,
}

impl FaultOutcome {
    /// All outcomes in reporting order.
    pub const ALL: [FaultOutcome; 5] = [
        FaultOutcome::Corrected,
        FaultOutcome::DetectedUncorrectable,
        FaultOutcome::BoundsCaught,
        FaultOutcome::Masked,
        FaultOutcome::SilentDataCorruption,
    ];

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            FaultOutcome::Corrected => "corrected",
            FaultOutcome::DetectedUncorrectable => "detected (uncorrectable)",
            FaultOutcome::BoundsCaught => "caught by bounds check",
            FaultOutcome::Masked => "masked (no effect)",
            FaultOutcome::SilentDataCorruption => "silent data corruption",
        }
    }

    /// Whether the protection did its job for this trial: either the fault
    /// was handled (corrected / detected / contained) or it was harmless.
    pub fn is_safe(self) -> bool {
        !matches!(self, FaultOutcome::SilentDataCorruption)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn safety_classification() {
        assert!(FaultOutcome::Corrected.is_safe());
        assert!(FaultOutcome::DetectedUncorrectable.is_safe());
        assert!(FaultOutcome::BoundsCaught.is_safe());
        assert!(FaultOutcome::Masked.is_safe());
        assert!(!FaultOutcome::SilentDataCorruption.is_safe());
        assert_eq!(FaultOutcome::ALL.len(), 5);
        assert!(FaultOutcome::SilentDataCorruption
            .label()
            .contains("silent"));
    }
}
