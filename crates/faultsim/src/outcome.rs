//! Classification of what happened to an injected fault.

/// The observed consequence of one fault-injection trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultOutcome {
    /// Detected and repaired in place by the embedded ECC; the run completed
    /// with the correct answer.
    Corrected,
    /// Detected as uncorrectable by the embedded ECC, then rebuilt from the
    /// XOR parity tier (the erasure escalation ladder); the run completed
    /// with the correct answer.
    DetectedRebuilt,
    /// Detected but not repairable by either tier; the run was aborted with
    /// an error the application can act on (re-assemble, restart the
    /// step, …).
    DetectedAborted,
    /// An out-of-range index produced by the corruption was caught by a
    /// bounds check before it could cause an out-of-bounds access.
    BoundsCaught,
    /// The fault was never flagged but had no effect on the result (it hit a
    /// reserved bit, a stored zero, or was numerically negligible).
    Masked,
    /// The fault was never flagged and the result is wrong — a silent
    /// corruption, the failure mode the protection exists to prevent.
    SilentCorruption,
}

impl FaultOutcome {
    /// All outcomes in reporting order.
    pub const ALL: [FaultOutcome; 6] = [
        FaultOutcome::Corrected,
        FaultOutcome::DetectedRebuilt,
        FaultOutcome::DetectedAborted,
        FaultOutcome::BoundsCaught,
        FaultOutcome::Masked,
        FaultOutcome::SilentCorruption,
    ];

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            FaultOutcome::Corrected => "corrected",
            FaultOutcome::DetectedRebuilt => "detected (rebuilt from parity)",
            FaultOutcome::DetectedAborted => "detected (aborted)",
            FaultOutcome::BoundsCaught => "caught by bounds check",
            FaultOutcome::Masked => "masked (no effect)",
            FaultOutcome::SilentCorruption => "silent corruption",
        }
    }

    /// Whether the protection did its job for this trial: either the fault
    /// was handled (corrected / rebuilt / detected / contained) or it was
    /// harmless.
    pub fn is_safe(self) -> bool {
        !matches!(self, FaultOutcome::SilentCorruption)
    }

    /// Whether the trial still produced a correct answer (the fault was
    /// absorbed rather than merely contained).
    pub fn is_recovered(self) -> bool {
        matches!(
            self,
            FaultOutcome::Corrected | FaultOutcome::DetectedRebuilt | FaultOutcome::Masked
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn safety_classification() {
        assert!(FaultOutcome::Corrected.is_safe());
        assert!(FaultOutcome::DetectedRebuilt.is_safe());
        assert!(FaultOutcome::DetectedAborted.is_safe());
        assert!(FaultOutcome::BoundsCaught.is_safe());
        assert!(FaultOutcome::Masked.is_safe());
        assert!(!FaultOutcome::SilentCorruption.is_safe());
        assert_eq!(FaultOutcome::ALL.len(), 6);
        assert!(FaultOutcome::SilentCorruption.label().contains("silent"));
        assert!(FaultOutcome::DetectedRebuilt.label().contains("parity"));
    }

    #[test]
    fn recovery_classification() {
        assert!(FaultOutcome::Corrected.is_recovered());
        assert!(FaultOutcome::DetectedRebuilt.is_recovered());
        assert!(FaultOutcome::Masked.is_recovered());
        assert!(!FaultOutcome::DetectedAborted.is_recovered());
        assert!(!FaultOutcome::BoundsCaught.is_recovered());
        assert!(!FaultOutcome::SilentCorruption.is_recovered());
    }
}
