//! Replayable failure records: captured non-safe trials, deterministically
//! minimized, serialized to a JSON corpus, and re-executed bit for bit.
//!
//! When the streaming engine sees a non-safe outcome it keeps only the
//! trial *index*; [`Campaign::minimize_trial`] re-derives the trial's
//! [`TrialDraw`] from `(seed, index)` and shrinks it with a deterministic
//! minimizer:
//!
//! 1. **Bisect the flip count** — delta-debugging style: while either half
//!    of the flip list alone reproduces the recorded outcome, keep that
//!    half; a linear single-flip removal pass mops up small residues.
//! 2. **Bisect the bit positions** — for each surviving flip, binary-search
//!    the lowest bit index that still reproduces (low-order mantissa bits
//!    are "smaller" faults than exponent bits).
//!
//! Every candidate is verified by re-executing the edited draw
//! ([`Campaign::execute_draw`] is deterministic), and the final draw is
//! re-verified before it replaces the original, so a minimized record
//! *always* reproduces its outcome.  Records group into a
//! [`FailureCorpus`] (the `FAILURES.json` shape) that [`Campaign::replay`]
//! re-executes exactly; 64-bit integers are serialized as decimal strings
//! because the JSON number type is an `f64` (see [`crate::json`]).

use crate::campaign::{Campaign, CampaignConfig, InjectionKind, TrialDraw};
use crate::flip::{FaultSpec, FaultTarget, SolverVectorTarget};
use crate::json::Json;
use crate::outcome::FaultOutcome;
use abft_core::{Crc32cBackend, EccScheme, ParityConfig, ProtectionConfig, StorageTier};
use abft_solvers::{Method, PrecondKind, ReliabilityPolicy};
use std::path::Path;

/// One captured, minimized, replayable failure.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialRecord {
    /// The full campaign configuration the trial ran under — everything
    /// needed to rebuild the system and re-execute the draw.
    pub config: CampaignConfig,
    /// Trial index within the campaign's seeded stream.
    pub trial: usize,
    /// The outcome the (minimized) draw reproduces.
    pub outcome: FaultOutcome,
    /// The minimized injection plan.
    pub draw: TrialDraw,
    /// Fault weight of the original draw, before shrinking.
    pub original_weight: usize,
    /// Fault weight of `draw` (`<= original_weight`).
    pub minimized_weight: usize,
}

impl TrialRecord {
    /// The campaign seed (the `seed` of the issue's
    /// `TrialRecord {seed, trial, kind, scheme, storage}` shape).
    pub fn seed(&self) -> u64 {
        self.config.seed
    }

    /// The injection kind.
    pub fn kind(&self) -> InjectionKind {
        self.config.injection
    }

    /// The ECC scheme guarding the struck region.
    pub fn scheme(&self) -> EccScheme {
        self.config.active_scheme()
    }

    /// The protected matrix storage tier.
    pub fn storage(&self) -> StorageTier {
        self.config.storage
    }
}

/// Result of replaying one record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayOutcome {
    /// The record's trial index.
    pub trial: usize,
    /// The outcome the record promised.
    pub recorded: FaultOutcome,
    /// The outcome the re-execution produced.
    pub replayed: FaultOutcome,
}

impl ReplayOutcome {
    /// Did the replay reproduce the recorded outcome exactly?
    pub fn matches(&self) -> bool {
        self.recorded == self.replayed
    }
}

impl Campaign {
    /// Re-derives trial `trial`'s draw, shrinks it with the deterministic
    /// minimizer (module docs), and returns the replayable record.
    pub fn minimize_trial(&self, trial: usize) -> TrialRecord {
        let draw = self.draw_trial(trial);
        let outcome = self.execute_draw(&draw).outcome;
        let original_weight = draw.weight();
        let minimized = match draw.flips() {
            Some(flips) if !flips.is_empty() => {
                let reproduce = |candidate: &[(usize, u32)]| {
                    self.execute_draw(&draw.with_flips(candidate.to_vec()))
                        .outcome
                        == outcome
                };
                let shrunk = shrink_flips(&reproduce, flips);
                draw.with_flips(shrunk)
            }
            // Draws without an editable flip list (chunk erasures,
            // inner-apply bursts) are recorded as drawn.
            _ => draw.clone(),
        };
        let minimized_weight = minimized.weight();
        TrialRecord {
            config: self.config().clone(),
            trial,
            outcome,
            draw: minimized,
            original_weight,
            minimized_weight,
        }
    }

    /// Re-executes every record of a corpus bit for bit and reports, per
    /// record, whether the recorded outcome was reproduced.  Consecutive
    /// records with the same configuration share one rebuilt campaign
    /// system (corpora are stored config-grouped).
    pub fn replay(corpus: &FailureCorpus) -> Vec<ReplayOutcome> {
        let mut cache: Option<(CampaignConfig, Campaign)> = None;
        corpus
            .records
            .iter()
            .map(|record| {
                let rebuild = match &cache {
                    Some((config, _)) => config != &record.config,
                    None => true,
                };
                if rebuild {
                    cache = Some((record.config.clone(), Campaign::new(record.config.clone())));
                }
                let (_, campaign) = cache.as_ref().expect("cache filled above");
                ReplayOutcome {
                    trial: record.trial,
                    recorded: record.outcome,
                    replayed: campaign.execute_draw(&record.draw).outcome,
                }
            })
            .collect()
    }
}

/// A candidate flip list handed to a minimizer probe.
type FlipList = [(usize, u32)];

/// Deterministic flip-list shrinker: bisect the count (keep whichever half
/// still reproduces), mop up small residues with single-flip removal, then
/// bisect each surviving flip's bit position toward bit 0.  `reproduce`
/// must be deterministic; every surviving edit has been verified by it.
fn shrink_flips(reproduce: &dyn Fn(&FlipList) -> bool, flips: &FlipList) -> Vec<(usize, u32)> {
    let mut current = flips.to_vec();
    // Phase 1: bisect the flip count.
    while current.len() > 1 {
        let mid = current.len() / 2;
        if reproduce(&current[..mid]) {
            current.truncate(mid);
        } else if reproduce(&current[mid..]) {
            current.drain(..mid);
        } else {
            break;
        }
    }
    // Residue pass: drop single flips while that still reproduces.  Only
    // for small lists — each probe is a full solve.
    if current.len() > 1 && current.len() <= 8 {
        let mut index = 0;
        while index < current.len() && current.len() > 1 {
            let mut candidate = current.clone();
            candidate.remove(index);
            if reproduce(&candidate) {
                current = candidate;
            } else {
                index += 1;
            }
        }
    }
    // Phase 2: bisect each surviving flip's bit position toward 0.
    for index in 0..current.len() {
        let original_bit = current[index].1;
        let mut lo = 0u32;
        let mut hi = original_bit;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let mut candidate = current.clone();
            candidate[index].1 = mid;
            if reproduce(&candidate) {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        if hi != original_bit {
            // `hi` was verified by the last successful probe of the search
            // (or equals original_bit when nothing lower reproduced), but
            // re-verify the combined list defensively before keeping it.
            let mut candidate = current.clone();
            candidate[index].1 = hi;
            if reproduce(&candidate) {
                current = candidate;
            }
        }
    }
    current
}

/// A serializable corpus of failure records — the `FAILURES.json` shape.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FailureCorpus {
    /// The records, in capture order (group records of one configuration
    /// together so [`Campaign::replay`] can reuse the rebuilt system).
    pub records: Vec<TrialRecord>,
}

impl FailureCorpus {
    /// Serializes the corpus.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("version", 1usize.into()),
            (
                "records",
                Json::Arr(self.records.iter().map(record_to_json).collect()),
            ),
        ])
    }

    /// Parses a corpus serialized by [`FailureCorpus::to_json`].
    pub fn from_json(doc: &Json) -> Result<FailureCorpus, String> {
        let records = doc
            .get("records")
            .and_then(Json::as_arr)
            .ok_or("corpus has no records array")?
            .iter()
            .map(record_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(FailureCorpus { records })
    }

    /// Writes the corpus to `path` (pretty-printed, trailing newline).
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json().render() + "\n")
    }

    /// Loads a corpus from `path`.
    pub fn load(path: impl AsRef<Path>) -> Result<FailureCorpus, String> {
        let text = std::fs::read_to_string(path.as_ref())
            .map_err(|e| format!("{}: {e}", path.as_ref().display()))?;
        Self::from_json(&Json::parse(&text)?)
    }
}

// --- tag helpers -----------------------------------------------------------
//
// Stable string tags for every enum in a record.  u64 values (seeds) are
// serialized as decimal strings: Json::Num is an f64 and cannot round-trip
// integers above 2^53.

fn u64_to_json(value: u64) -> Json {
    Json::Str(value.to_string())
}

fn u64_from_json(value: &Json, what: &str) -> Result<u64, String> {
    value
        .as_str()
        .and_then(|s| s.parse::<u64>().ok())
        .ok_or_else(|| format!("{what}: expected a decimal-string u64, got {value:?}"))
}

fn usize_from_json(value: &Json, what: &str) -> Result<usize, String> {
    value
        .as_f64()
        .filter(|n| n.fract() == 0.0 && *n >= 0.0 && *n <= 2f64.powi(53))
        .map(|n| n as usize)
        .ok_or_else(|| format!("{what}: expected a non-negative integer, got {value:?}"))
}

fn scheme_tag(scheme: EccScheme) -> &'static str {
    match scheme {
        EccScheme::None => "none",
        EccScheme::Sed => "sed",
        EccScheme::Secded64 => "secded64",
        EccScheme::Secded128 => "secded128",
        EccScheme::Crc32c => "crc32c",
    }
}

fn scheme_from_tag(tag: &str) -> Result<EccScheme, String> {
    Ok(match tag {
        "none" => EccScheme::None,
        "sed" => EccScheme::Sed,
        "secded64" => EccScheme::Secded64,
        "secded128" => EccScheme::Secded128,
        "crc32c" => EccScheme::Crc32c,
        other => return Err(format!("unknown scheme tag {other:?}")),
    })
}

fn backend_tag(backend: Crc32cBackend) -> &'static str {
    match backend {
        Crc32cBackend::Naive => "naive",
        Crc32cBackend::SlicingBy4 => "slicing4",
        Crc32cBackend::SlicingBy8 => "slicing8",
        Crc32cBackend::SlicingBy16 => "slicing16",
        Crc32cBackend::Hardware => "hardware",
        Crc32cBackend::Auto => "auto",
    }
}

fn backend_from_tag(tag: &str) -> Result<Crc32cBackend, String> {
    Ok(match tag {
        "naive" => Crc32cBackend::Naive,
        "slicing4" => Crc32cBackend::SlicingBy4,
        "slicing8" => Crc32cBackend::SlicingBy8,
        "slicing16" => Crc32cBackend::SlicingBy16,
        "hardware" => Crc32cBackend::Hardware,
        "auto" => Crc32cBackend::Auto,
        other => return Err(format!("unknown CRC backend tag {other:?}")),
    })
}

fn target_tag(target: FaultTarget) -> &'static str {
    match target {
        FaultTarget::MatrixValues => "matrix_values",
        FaultTarget::MatrixColumnIndices => "matrix_col_indices",
        FaultTarget::RowPointer => "row_pointer",
        FaultTarget::DenseVector => "dense_vector",
    }
}

fn target_from_tag(tag: &str) -> Result<FaultTarget, String> {
    Ok(match tag {
        "matrix_values" => FaultTarget::MatrixValues,
        "matrix_col_indices" => FaultTarget::MatrixColumnIndices,
        "row_pointer" => FaultTarget::RowPointer,
        "dense_vector" => FaultTarget::DenseVector,
        other => return Err(format!("unknown target tag {other:?}")),
    })
}

fn method_tag(method: Method) -> &'static str {
    match method {
        Method::Cg => "cg",
        Method::Jacobi => "jacobi",
        Method::Chebyshev => "chebyshev",
        Method::Ppcg => "ppcg",
    }
}

fn method_from_tag(tag: &str) -> Result<Method, String> {
    Ok(match tag {
        "cg" => Method::Cg,
        "jacobi" => Method::Jacobi,
        "chebyshev" => Method::Chebyshev,
        "ppcg" => Method::Ppcg,
        other => return Err(format!("unknown method tag {other:?}")),
    })
}

fn injection_tag(kind: InjectionKind) -> &'static str {
    match kind {
        InjectionKind::BitFlips => "bit_flips",
        InjectionKind::Burst => "burst",
        InjectionKind::ChunkErasure => "chunk_erasure",
        InjectionKind::RowPointerGroupErasure => "row_pointer_group_erasure",
        InjectionKind::PrecondFactorFlips => "precond_factor_flips",
        InjectionKind::PrecondFactorBurst => "precond_factor_burst",
        InjectionKind::InnerApplyBurst => "inner_apply_burst",
        InjectionKind::SolverVectorFlips => "solver_vector_flips",
        InjectionKind::SolverVectorBurst => "solver_vector_burst",
    }
}

fn injection_from_tag(tag: &str) -> Result<InjectionKind, String> {
    Ok(match tag {
        "bit_flips" => InjectionKind::BitFlips,
        "burst" => InjectionKind::Burst,
        "chunk_erasure" => InjectionKind::ChunkErasure,
        "row_pointer_group_erasure" => InjectionKind::RowPointerGroupErasure,
        "precond_factor_flips" => InjectionKind::PrecondFactorFlips,
        "precond_factor_burst" => InjectionKind::PrecondFactorBurst,
        "inner_apply_burst" => InjectionKind::InnerApplyBurst,
        "solver_vector_flips" => InjectionKind::SolverVectorFlips,
        "solver_vector_burst" => InjectionKind::SolverVectorBurst,
        other => return Err(format!("unknown injection tag {other:?}")),
    })
}

fn storage_tag(storage: StorageTier) -> String {
    match storage {
        StorageTier::Csr => "csr".to_string(),
        StorageTier::Coo => "coo".to_string(),
        StorageTier::BlockedCsr(blocks) => format!("blocked_csr:{blocks}"),
    }
}

fn storage_from_tag(tag: &str) -> Result<StorageTier, String> {
    if let Some(blocks) = tag.strip_prefix("blocked_csr:") {
        return blocks
            .parse::<usize>()
            .map(StorageTier::BlockedCsr)
            .map_err(|e| format!("bad blocked_csr tag {tag:?}: {e}"));
    }
    Ok(match tag {
        "csr" => StorageTier::Csr,
        "coo" => StorageTier::Coo,
        other => return Err(format!("unknown storage tag {other:?}")),
    })
}

fn precond_tag(kind: PrecondKind) -> String {
    match kind {
        PrecondKind::Ilu0 => "ilu0".to_string(),
        PrecondKind::Polynomial(steps) => format!("polynomial:{steps}"),
    }
}

fn precond_from_tag(tag: &str) -> Result<PrecondKind, String> {
    if let Some(steps) = tag.strip_prefix("polynomial:") {
        return steps
            .parse::<usize>()
            .map(PrecondKind::Polynomial)
            .map_err(|e| format!("bad polynomial tag {tag:?}: {e}"));
    }
    match tag {
        "ilu0" => Ok(PrecondKind::Ilu0),
        other => Err(format!("unknown preconditioner tag {other:?}")),
    }
}

fn reliability_tag(policy: ReliabilityPolicy) -> &'static str {
    match policy {
        ReliabilityPolicy::Uniform => "uniform",
        ReliabilityPolicy::Selective => "selective",
    }
}

fn reliability_from_tag(tag: &str) -> Result<ReliabilityPolicy, String> {
    Ok(match tag {
        "uniform" => ReliabilityPolicy::Uniform,
        "selective" => ReliabilityPolicy::Selective,
        other => return Err(format!("unknown reliability tag {other:?}")),
    })
}

fn outcome_tag(outcome: FaultOutcome) -> &'static str {
    match outcome {
        FaultOutcome::Corrected => "corrected",
        FaultOutcome::DetectedRebuilt => "detected_rebuilt",
        FaultOutcome::DetectedAborted => "detected_aborted",
        FaultOutcome::BoundsCaught => "bounds_caught",
        FaultOutcome::Masked => "masked",
        FaultOutcome::SilentCorruption => "silent_corruption",
    }
}

fn outcome_from_tag(tag: &str) -> Result<FaultOutcome, String> {
    Ok(match tag {
        "corrected" => FaultOutcome::Corrected,
        "detected_rebuilt" => FaultOutcome::DetectedRebuilt,
        "detected_aborted" => FaultOutcome::DetectedAborted,
        "bounds_caught" => FaultOutcome::BoundsCaught,
        "masked" => FaultOutcome::Masked,
        "silent_corruption" => FaultOutcome::SilentCorruption,
        other => return Err(format!("unknown outcome tag {other:?}")),
    })
}

fn flips_to_json(flips: &[(usize, u32)]) -> Json {
    Json::Arr(
        flips
            .iter()
            .map(|&(element, bit)| Json::Arr(vec![element.into(), Json::Num(bit as f64)]))
            .collect(),
    )
}

fn flips_from_json(value: &Json) -> Result<Vec<(usize, u32)>, String> {
    value
        .as_arr()
        .ok_or("flips: expected an array")?
        .iter()
        .map(|pair| {
            let pair = pair
                .as_arr()
                .filter(|p| p.len() == 2)
                .ok_or("bad flip pair")?;
            let element = usize_from_json(&pair[0], "flip element")?;
            let bit = usize_from_json(&pair[1], "flip bit")? as u32;
            Ok((element, bit))
        })
        .collect()
}

fn vector_tag(vector: SolverVectorTarget) -> &'static str {
    match vector {
        SolverVectorTarget::X => "x",
        SolverVectorTarget::R => "r",
        SolverVectorTarget::P => "p",
    }
}

fn vector_from_tag(tag: &str) -> Result<SolverVectorTarget, String> {
    Ok(match tag {
        "x" => SolverVectorTarget::X,
        "r" => SolverVectorTarget::R,
        "p" => SolverVectorTarget::P,
        other => return Err(format!("unknown solver-vector tag {other:?}")),
    })
}

fn draw_to_json(draw: &TrialDraw) -> Json {
    match draw {
        TrialDraw::Flips(spec) => Json::obj([
            ("type", "flips".into()),
            ("target", target_tag(spec.target).into()),
            ("flips", flips_to_json(&spec.flips)),
        ]),
        TrialDraw::SolverVector {
            vector,
            strike_iteration,
            flips,
        } => Json::obj([
            ("type", "solver_vector".into()),
            ("vector", vector_tag(*vector).into()),
            ("strike_iteration", u64_to_json(*strike_iteration)),
            ("flips", flips_to_json(flips)),
        ]),
        TrialDraw::ChunkErasure {
            chunk,
            chunk_words,
            strike_iteration,
            garbage_seed,
        } => Json::obj([
            ("type", "chunk_erasure".into()),
            ("chunk", (*chunk).into()),
            ("chunk_words", (*chunk_words).into()),
            ("strike_iteration", u64_to_json(*strike_iteration)),
            ("garbage_seed", u64_to_json(*garbage_seed)),
        ]),
        TrialDraw::PrecondFactors(flips) => Json::obj([
            ("type", "precond_factors".into()),
            ("flips", flips_to_json(flips)),
        ]),
        TrialDraw::InnerApplyBurst {
            strike_apply,
            element,
            start_bit,
            length,
        } => Json::obj([
            ("type", "inner_apply_burst".into()),
            ("strike_apply", u64_to_json(*strike_apply)),
            ("element", (*element).into()),
            ("start_bit", Json::Num(*start_bit as f64)),
            ("length", Json::Num(*length as f64)),
        ]),
    }
}

fn draw_from_json(value: &Json) -> Result<TrialDraw, String> {
    let kind = value
        .get("type")
        .and_then(Json::as_str)
        .ok_or("draw has no type")?;
    let field = |name: &str| {
        value
            .get(name)
            .ok_or_else(|| format!("draw missing {name}"))
    };
    Ok(match kind {
        "flips" => TrialDraw::Flips(FaultSpec {
            target: target_from_tag(field("target")?.as_str().ok_or("target not a string")?)?,
            flips: flips_from_json(field("flips")?)?,
        }),
        "solver_vector" => TrialDraw::SolverVector {
            vector: vector_from_tag(field("vector")?.as_str().ok_or("vector not a string")?)?,
            strike_iteration: u64_from_json(field("strike_iteration")?, "strike_iteration")?,
            flips: flips_from_json(field("flips")?)?,
        },
        "chunk_erasure" => TrialDraw::ChunkErasure {
            chunk: usize_from_json(field("chunk")?, "chunk")?,
            chunk_words: usize_from_json(field("chunk_words")?, "chunk_words")?,
            strike_iteration: u64_from_json(field("strike_iteration")?, "strike_iteration")?,
            garbage_seed: u64_from_json(field("garbage_seed")?, "garbage_seed")?,
        },
        "precond_factors" => TrialDraw::PrecondFactors(flips_from_json(field("flips")?)?),
        "inner_apply_burst" => TrialDraw::InnerApplyBurst {
            strike_apply: u64_from_json(field("strike_apply")?, "strike_apply")?,
            element: usize_from_json(field("element")?, "element")?,
            start_bit: usize_from_json(field("start_bit")?, "start_bit")? as u32,
            length: usize_from_json(field("length")?, "length")? as u32,
        },
        other => return Err(format!("unknown draw type {other:?}")),
    })
}

fn config_to_json(config: &CampaignConfig) -> Json {
    let protection = &config.protection;
    Json::obj([
        ("nx", config.nx.into()),
        ("ny", config.ny.into()),
        ("trials", config.trials.into()),
        ("flips_per_trial", config.flips_per_trial.into()),
        ("elements", scheme_tag(protection.elements).into()),
        ("row_pointer", scheme_tag(protection.row_pointer).into()),
        ("vectors", scheme_tag(protection.vectors).into()),
        (
            "check_interval",
            (protection.check_interval as usize).into(),
        ),
        ("crc_backend", backend_tag(protection.crc_backend).into()),
        ("parallel", protection.parallel.into()),
        (
            "parity",
            match protection.parity {
                Some(parity) => Json::obj([
                    ("stripe_chunks", parity.stripe_chunks.into()),
                    ("chunk_words", parity.chunk_words.into()),
                ]),
                None => Json::Null,
            },
        ),
        ("target", target_tag(config.target).into()),
        ("seed", u64_to_json(config.seed)),
        ("sdc_threshold", config.sdc_threshold.into()),
        ("solver", method_tag(config.solver).into()),
        ("injection", injection_tag(config.injection).into()),
        ("storage", storage_tag(config.storage).into()),
        ("precond", precond_tag(config.precond).into()),
        (
            "precond_reliability",
            reliability_tag(config.precond_reliability).into(),
        ),
    ])
}

fn config_from_json(value: &Json) -> Result<CampaignConfig, String> {
    let str_field = |name: &str| {
        value
            .get(name)
            .and_then(Json::as_str)
            .ok_or_else(|| format!("config missing string field {name}"))
    };
    let num_field = |name: &str| {
        value
            .get(name)
            .ok_or_else(|| format!("config missing field {name}"))
            .and_then(|v| usize_from_json(v, name))
    };
    let parity = match value.get("parity") {
        None | Some(Json::Null) => None,
        Some(parity) => Some(ParityConfig {
            stripe_chunks: usize_from_json(
                parity
                    .get("stripe_chunks")
                    .ok_or("parity missing stripe_chunks")?,
                "stripe_chunks",
            )?,
            chunk_words: usize_from_json(
                parity
                    .get("chunk_words")
                    .ok_or("parity missing chunk_words")?,
                "chunk_words",
            )?,
        }),
    };
    let protection = ProtectionConfig {
        elements: scheme_from_tag(str_field("elements")?)?,
        row_pointer: scheme_from_tag(str_field("row_pointer")?)?,
        vectors: scheme_from_tag(str_field("vectors")?)?,
        check_interval: num_field("check_interval")? as u32,
        crc_backend: backend_from_tag(str_field("crc_backend")?)?,
        parallel: matches!(value.get("parallel"), Some(Json::Bool(true))),
        parity,
    };
    Ok(CampaignConfig {
        nx: num_field("nx")?,
        ny: num_field("ny")?,
        trials: num_field("trials")?,
        flips_per_trial: num_field("flips_per_trial")?,
        protection,
        target: target_from_tag(str_field("target")?)?,
        seed: u64_from_json(value.get("seed").ok_or("config missing seed")?, "seed")?,
        sdc_threshold: value
            .get("sdc_threshold")
            .and_then(Json::as_f64)
            .ok_or("config missing sdc_threshold")?,
        solver: method_from_tag(str_field("solver")?)?,
        injection: injection_from_tag(str_field("injection")?)?,
        storage: storage_from_tag(str_field("storage")?)?,
        precond: precond_from_tag(str_field("precond")?)?,
        precond_reliability: reliability_from_tag(str_field("precond_reliability")?)?,
    })
}

fn record_to_json(record: &TrialRecord) -> Json {
    Json::obj([
        ("config", config_to_json(&record.config)),
        ("trial", record.trial.into()),
        ("outcome", outcome_tag(record.outcome).into()),
        ("draw", draw_to_json(&record.draw)),
        ("original_weight", record.original_weight.into()),
        ("minimized_weight", record.minimized_weight.into()),
    ])
}

fn record_from_json(value: &Json) -> Result<TrialRecord, String> {
    Ok(TrialRecord {
        config: config_from_json(value.get("config").ok_or("record missing config")?)?,
        trial: usize_from_json(value.get("trial").ok_or("record missing trial")?, "trial")?,
        outcome: outcome_tag_lookup(value)?,
        draw: draw_from_json(value.get("draw").ok_or("record missing draw")?)?,
        original_weight: usize_from_json(
            value
                .get("original_weight")
                .ok_or("record missing original_weight")?,
            "original_weight",
        )?,
        minimized_weight: usize_from_json(
            value
                .get("minimized_weight")
                .ok_or("record missing minimized_weight")?,
            "minimized_weight",
        )?,
    })
}

fn outcome_tag_lookup(value: &Json) -> Result<FaultOutcome, String> {
    outcome_from_tag(
        value
            .get("outcome")
            .and_then(Json::as_str)
            .ok_or("record missing outcome")?,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrink_flips_bisects_count_and_bits() {
        // Outcome is reproduced iff the candidate still contains the one
        // load-bearing flip (element 7, any bit >= 8).
        let reproduce =
            |candidate: &[(usize, u32)]| candidate.iter().any(|&(e, b)| e == 7 && b >= 8);
        let noisy = vec![(1, 3), (7, 62), (4, 10), (9, 51), (2, 0)];
        let shrunk = shrink_flips(&reproduce, &noisy);
        assert_eq!(
            shrunk,
            vec![(7, 8)],
            "count bisected to 1, bit bisected to 8"
        );

        // When every flip is load-bearing, nothing is dropped and bits
        // still shrink as far as the predicate allows.
        let all_needed = |candidate: &[(usize, u32)]| candidate.len() >= 2;
        let pair = vec![(3, 40), (5, 41)];
        let shrunk = shrink_flips(&all_needed, &pair);
        assert_eq!(shrunk, vec![(3, 0), (5, 0)]);
    }

    #[test]
    fn corpus_round_trips_through_json() {
        let config = CampaignConfig {
            seed: 0xDEAD_BEEF_CAFE_F00D, // > 2^53: exercises the string path
            protection: ProtectionConfig::full(EccScheme::Secded64)
                .with_parity(ParityConfig {
                    stripe_chunks: 4,
                    chunk_words: 16,
                })
                .with_crc_backend(Crc32cBackend::SlicingBy16),
            storage: StorageTier::BlockedCsr(4),
            precond: PrecondKind::Polynomial(2),
            ..CampaignConfig::default()
        };
        let corpus = FailureCorpus {
            records: vec![
                TrialRecord {
                    config: config.clone(),
                    trial: 17,
                    outcome: FaultOutcome::DetectedAborted,
                    draw: TrialDraw::Flips(FaultSpec {
                        target: FaultTarget::RowPointer,
                        flips: vec![(256, 3), (256, 17)],
                    }),
                    original_weight: 4,
                    minimized_weight: 2,
                },
                TrialRecord {
                    config: config.clone(),
                    trial: 3,
                    outcome: FaultOutcome::SilentCorruption,
                    draw: TrialDraw::SolverVector {
                        vector: SolverVectorTarget::P,
                        strike_iteration: 2,
                        flips: vec![(9, 62)],
                    },
                    original_weight: 3,
                    minimized_weight: 1,
                },
                TrialRecord {
                    config: config.clone(),
                    trial: 8,
                    outcome: FaultOutcome::BoundsCaught,
                    draw: TrialDraw::ChunkErasure {
                        chunk: 2,
                        chunk_words: 16,
                        strike_iteration: 1,
                        garbage_seed: u64::MAX - 1, // not f64-representable
                    },
                    original_weight: 16,
                    minimized_weight: 16,
                },
                TrialRecord {
                    config,
                    trial: 21,
                    outcome: FaultOutcome::Masked,
                    draw: TrialDraw::InnerApplyBurst {
                        strike_apply: 1,
                        element: 5,
                        start_bit: 48,
                        length: 8,
                    },
                    original_weight: 8,
                    minimized_weight: 8,
                },
            ],
        };
        let parsed =
            FailureCorpus::from_json(&Json::parse(&corpus.to_json().render()).unwrap()).unwrap();
        assert_eq!(parsed, corpus);
        // The u64s survived exactly.
        assert_eq!(parsed.records[0].seed(), 0xDEAD_BEEF_CAFE_F00D);
        match &parsed.records[2].draw {
            TrialDraw::ChunkErasure { garbage_seed, .. } => {
                assert_eq!(*garbage_seed, u64::MAX - 1)
            }
            other => panic!("wrong draw: {other:?}"),
        }
    }

    #[test]
    fn corpus_rejects_malformed_documents() {
        for bad in [
            r#"{"version": 1}"#,
            r#"{"records": [{}]}"#,
            r#"{"records": [{"trial": 0}]}"#,
        ] {
            assert!(
                FailureCorpus::from_json(&Json::parse(bad).unwrap()).is_err(),
                "{bad} should fail"
            );
        }
    }
}
