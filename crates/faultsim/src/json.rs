//! Minimal JSON emission and parsing, shared by the benchmark harness
//! (`experiments --json`, the `--check-regression`/`--check-coverage` gates)
//! and the fault-campaign failure corpus ([`crate::record`]).
//!
//! The build environment cannot fetch `serde`/`serde_json`, so a tiny value
//! tree with a renderer and a recursive-descent parser (sufficient for the
//! documents this workspace itself writes) covers the need without external
//! dependencies.  One sharp edge: [`Json::Num`] is an `f64`, so integers
//! above 2^53 (e.g. 64-bit seeds) do **not** round-trip — serialize those as
//! decimal *strings* and parse them back with `u64::from_str` (the failure
//! corpus does exactly this).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any finite number (non-finite values render as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for objects.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Looks up a field of an object (`None` on non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array (`None` on non-arrays).
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The numeric value (`None` on non-numbers).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value (`None` on non-strings).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Parses a JSON document (the subset this module renders: no exponent
    /// edge cases beyond `f64::from_str`, no duplicate-key policy).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }

    /// Renders with two-space indentation (the `to_string_pretty` shape).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent + 1);
        let close = "  ".repeat(indent);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => {
                if n.is_finite() {
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad);
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&close);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    out.push_str(&pad);
                    Json::Str(key.clone()).write(out, indent + 1);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&close);
                out.push('}');
            }
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at byte {} (found {:?})",
            byte as char,
            *pos,
            bytes.get(*pos).map(|&b| b as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
            {
                *pos += 1;
            }
            std::str::from_utf8(&bytes[start..*pos])
                .ok()
                .and_then(|s| s.parse::<f64>().ok())
                .map(Json::Num)
                .ok_or_else(|| format!("invalid number at byte {start}"))
        }
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Json,
) -> Result<Json, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("invalid \\u escape at byte {}", *pos))?;
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("invalid escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                let start = *pos;
                while *pos < bytes.len() && bytes[*pos] != b'"' && bytes[*pos] != b'\\' {
                    *pos += 1;
                }
                out.push_str(
                    std::str::from_utf8(&bytes[start..*pos])
                        .map_err(|e| format!("invalid UTF-8 in string: {e}"))?,
                );
            }
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let value = Json::obj([
            ("name", "fig \"4\"".into()),
            ("rows", Json::Arr(vec![1.5.into(), Json::Null, true.into()])),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        let text = value.render();
        assert!(text.contains("\"fig \\\"4\\\"\""));
        assert!(text.contains("1.5"));
        assert!(text.contains("null"));
        assert!(text.contains("true"));
        assert!(text.contains("[]"));
        assert!(text.contains("{}"));
        // Indentation is stable.
        assert!(text.starts_with("{\n  \"name\""));
    }

    #[test]
    fn escapes_control_characters() {
        let text = Json::Str("a\nb\t\u{1}".into()).render();
        assert_eq!(text, "\"a\\nb\\t\\u0001\"");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
    }

    #[test]
    fn parse_round_trips_rendered_documents() {
        let value = Json::obj([
            ("label", "pre \"quoted\"\n".into()),
            ("count", 42usize.into()),
            ("ratio", (-1.5e-3).into()),
            ("flag", true.into()),
            ("missing", Json::Null),
            (
                "rows",
                Json::Arr(vec![
                    Json::obj([("op", "dot".into()), ("ns", 123.25.into())]),
                    Json::Arr(vec![]),
                    Json::Obj(vec![]),
                ]),
            ),
        ]);
        let parsed = Json::parse(&value.render()).unwrap();
        assert_eq!(parsed, value);
        // Accessors walk the tree.
        assert_eq!(parsed.get("count").and_then(Json::as_f64), Some(42.0));
        assert_eq!(
            parsed.get("rows").and_then(Json::as_arr).map(|a| a.len()),
            Some(3)
        );
        assert_eq!(
            parsed.get("rows").unwrap().as_arr().unwrap()[0]
                .get("op")
                .and_then(Json::as_str),
            Some("dot")
        );
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "\"abc", "{\"a\" 1}", "[1] trailing", "nul"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }
}
