//! The streaming campaign engine: million-trial fault-injection campaigns
//! in `O(workers)` outcome memory, with adaptive early stopping.
//!
//! [`run_stream`] shards trials across the `abft-serve` job pool in waves.
//! Each job folds its trials' observations into one of a fixed set of
//! per-worker [`CampaignAccumulator`]s — running outcome counts and a
//! residual-drift histogram in relaxed atomics, no per-trial `Vec` anywhere —
//! so a `trials: 1_000_000` campaign differs from a 1 000-trial one only in
//! wall clock.  Because every trial draws from its own ChaCha stream keyed
//! by `(seed, trial index)` (see [`Campaign::draw_trial`]), the merged
//! totals are bitwise identical for any worker count, wave size, or
//! completion order.
//!
//! **Merge discipline.** Jobs write counters with relaxed atomics; the wave
//! barrier ([`abft_serve::submit_batch`]) completes every job's `Ticket`
//! handshake (a mutex release/acquire per job) before the caller reads, so
//! draining accumulators between waves is race-free and sees exactly the
//! trials dispatched so far.  Accumulator totals are sums of per-trial
//! `+1`s, and integer addition is commutative — which shard a trial lands
//! in cannot change any total.
//!
//! **Stop-rule validity.** A [`StopRule`] is evaluated only at wave
//! boundaries.  Peeking at a 95 % Wilson bound after every wave would
//! inflate the error probability (each look is another chance to cross by
//! luck), so the engine spends its error budget à la Bonferroni: with `K`
//! planned looks (`ceil(max_trials / batch)`) each look uses the critical
//! value `z = Φ⁻¹(1 − α/(2K))` — computed by [`normal_quantile`] — making
//! the probability that *any* look's corrected bound crosses a true-rate
//! boundary at most `α`.  `K` counts every wave the campaign could run, a
//! conservative overcount of the looks actually taken, so stopping early
//! never invalidates the bound.  The price is a modestly wider interval
//! (for `α = 0.05`, `K = 245`: `z ≈ 3.72` instead of `1.96`).

use crate::campaign::{Campaign, CampaignStats, TrialObservation, WILSON_Z95};
use crate::outcome::FaultOutcome;
use crate::record::TrialRecord;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Number of buckets in the residual-drift histogram: bucket 0 is "no
/// answer" (aborted trials, drift `NaN`), bucket 1 is drift ≤ 1e-16, then
/// one bucket per decade up to the ≥ 1e2 overflow bucket.
pub const DRIFT_BUCKETS: usize = 21;

/// A fixed-size histogram of how far returned answers drifted (see
/// [`TrialObservation::drift`]).  Logarithmic decade buckets: campaigns
/// care about "how many trials drifted past 1e-9", not about exact values.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DriftHistogram {
    buckets: [u64; DRIFT_BUCKETS],
}

impl DriftHistogram {
    /// The bucket a drift value falls into.
    pub fn bucket_of(drift: f64) -> usize {
        if !drift.is_finite() {
            return 0;
        }
        if drift <= 1e-16 {
            return 1;
        }
        if drift >= 1e2 {
            return DRIFT_BUCKETS - 1;
        }
        // Decades [1e-16, 1e2) map onto buckets 2..DRIFT_BUCKETS-1.
        let decade = drift.log10().floor() as i64;
        (2 + (decade + 16)) as usize
    }

    /// Records one drift value.
    pub fn record(&mut self, drift: f64) {
        self.buckets[Self::bucket_of(drift)] += 1;
    }

    /// Count in one bucket.
    pub fn count(&self, bucket: usize) -> u64 {
        self.buckets[bucket]
    }

    /// Total recorded values.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &DriftHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
    }

    /// Human-readable bucket label (`"no answer"`, `"<=1e-16"`,
    /// `"[1e-9,1e-8)"`, `">=1e2"`).
    pub fn label(bucket: usize) -> String {
        match bucket {
            0 => "no answer".to_string(),
            1 => "<=1e-16".to_string(),
            b if b == DRIFT_BUCKETS - 1 => ">=1e2".to_string(),
            b => {
                let lo = b as i64 - 2 - 16;
                format!("[1e{},1e{})", lo, lo + 1)
            }
        }
    }
}

/// One worker's streaming outcome accumulator.  The hot path — outcome
/// counts and the drift histogram — is lock-free (relaxed atomic adds);
/// only the *capture* of non-safe trial indices takes a mutex, and that
/// path runs at most `capture_limit` times per campaign (safe trials never
/// touch it).  Memory is a fixed few hundred bytes per worker, independent
/// of trial count.
#[derive(Debug)]
pub struct CampaignAccumulator {
    counts: [AtomicU64; FaultOutcome::ALL.len()],
    drift: [AtomicU64; DRIFT_BUCKETS],
    captured: std::sync::Mutex<Vec<usize>>,
    capture_limit: usize,
    /// Cheap lock-avoidance gate for the capture path: once at least
    /// `capture_limit` non-safe trials have been seen, later ones skip the
    /// mutex entirely.
    capture_count: AtomicUsize,
}

impl CampaignAccumulator {
    /// A zeroed accumulator that will capture at most `capture_limit`
    /// non-safe trial indices.
    pub fn new(capture_limit: usize) -> Self {
        CampaignAccumulator {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            drift: std::array::from_fn(|_| AtomicU64::new(0)),
            captured: std::sync::Mutex::new(Vec::new()),
            capture_limit,
            capture_count: AtomicUsize::new(0),
        }
    }

    /// Folds one trial's observation in.  Lock-free except when the outcome
    /// is non-safe and the capture budget is not yet exhausted.
    pub fn record(&self, trial: usize, observation: TrialObservation) {
        self.counts[outcome_index(observation.outcome)].fetch_add(1, Ordering::Relaxed);
        self.drift[DriftHistogram::bucket_of(observation.drift)].fetch_add(1, Ordering::Relaxed);
        if !observation.outcome.is_safe()
            && self.capture_count.fetch_add(1, Ordering::Relaxed) < self.capture_limit
        {
            let mut captured = self.captured.lock().expect("capture list poisoned");
            if captured.len() < self.capture_limit {
                captured.push(trial);
            }
        }
    }

    /// Reads the accumulated counts into a [`CampaignStats`] histogram and
    /// a [`DriftHistogram`].  Callers must have a happens-before edge on
    /// the writers (the wave barrier provides it).
    pub fn snapshot(&self) -> (CampaignStats, DriftHistogram) {
        let mut stats = CampaignStats::default();
        for (index, outcome) in FaultOutcome::ALL.into_iter().enumerate() {
            stats.add(outcome, self.counts[index].load(Ordering::Relaxed) as usize);
        }
        let mut drift = DriftHistogram::default();
        for (bucket, count) in self.drift.iter().enumerate() {
            drift.buckets[bucket] = count.load(Ordering::Relaxed);
        }
        (stats, drift)
    }

    /// The captured non-safe trial indices (at most `capture_limit`).
    pub fn captured(&self) -> Vec<usize> {
        self.captured.lock().expect("capture list poisoned").clone()
    }
}

/// Merges every accumulator's outcome counts (a stop-rule peek; the final
/// drain also merges drift and captures).
fn merged_stats(accumulators: &[CampaignAccumulator]) -> CampaignStats {
    let mut stats = CampaignStats::default();
    for accumulator in accumulators {
        let (s, _) = accumulator.snapshot();
        stats.merge(&s);
    }
    stats
}

fn outcome_index(outcome: FaultOutcome) -> usize {
    FaultOutcome::ALL
        .into_iter()
        .position(|o| o == outcome)
        .expect("FaultOutcome::ALL is exhaustive")
}

/// Adaptive early-stopping rule for a streamed campaign, evaluated at wave
/// boundaries on the **safety rate** (1 − silent-corruption rate) with a
/// spending-corrected Wilson bound (see the module docs for the validity
/// argument).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StopRule {
    /// Stop with [`StopDecision::TargetMet`] once the corrected Wilson
    /// *lower* bound on the safety rate reaches this target — the campaign
    /// has proven "at least this safe" and more trials add nothing.
    pub target_safety_lb: f64,
    /// Never evaluate the rule before this many trials have run (guards
    /// against tiny-sample stops in either direction).
    pub min_trials: usize,
    /// Total error-probability budget spent across all looks (Bonferroni).
    pub alpha: f64,
}

impl StopRule {
    /// A rule targeting the given safety-rate lower bound, with the
    /// defaults `min_trials = 1000` and `alpha = 0.05`.
    pub fn target(target_safety_lb: f64) -> Self {
        StopRule {
            target_safety_lb,
            min_trials: 1000,
            alpha: 0.05,
        }
    }
}

/// Why a streamed campaign stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopDecision {
    /// The corrected Wilson lower bound on the safety rate reached the
    /// target: the claim is proven, remaining trials were skipped.
    TargetMet,
    /// The corrected Wilson *upper* bound fell below the target: no number
    /// of further trials could rescue the claim, so the campaign aborted
    /// fast — the regression signal.
    Futile,
    /// All requested trials ran (no rule, or the rule never triggered).
    Exhausted,
}

/// How a streamed campaign is sharded and what it does along the way.
#[derive(Debug, Clone, Copy)]
pub struct StreamConfig {
    /// Trials per wave; the stop rule is evaluated at wave boundaries.
    pub batch: usize,
    /// Trials per pool job: large enough to amortise submission, small
    /// enough that jobs overlap on a few workers.
    pub trials_per_job: usize,
    /// At most this many non-safe trials are captured (and minimized into
    /// replayable [`TrialRecord`]s) across the whole campaign.
    pub capture_limit: usize,
    /// Early-stopping rule, if any.
    pub stop: Option<StopRule>,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            batch: 4096,
            trials_per_job: 16,
            capture_limit: 8,
            stop: None,
        }
    }
}

/// What a streamed campaign reports back.
#[derive(Debug, Clone)]
pub struct StreamReport {
    /// The merged outcome histogram over every trial that ran.
    pub stats: CampaignStats,
    /// The merged residual-drift histogram.
    pub drift: DriftHistogram,
    /// Why the campaign stopped.
    pub decision: StopDecision,
    /// Trials actually executed (`<= max` requested when a rule fired).
    pub trials_run: usize,
    /// Wave boundaries at which the stop rule was actually evaluated.
    pub looks: usize,
    /// Planned looks `K` the error budget was spent over.
    pub planned_looks: usize,
    /// The spending-corrected critical value used at each look (the plain
    /// Wilson 95 % `z` when no rule was set).
    pub look_z: f64,
    /// Corrected Wilson lower bound on the safety rate at stop time.
    pub safety_lb: f64,
    /// Trial indices of captured non-safe outcomes (sorted, at most
    /// `capture_limit`).
    pub captured: Vec<usize>,
    /// Minimized, replayable records of the captured failures (filled by
    /// [`Campaign::run_streaming`]; empty from raw [`run_stream`]).
    pub records: Vec<TrialRecord>,
}

/// Inverse standard-normal CDF `Φ⁻¹(p)` by Acklam's rational approximation
/// (relative error below 1.2e-9 over the open unit interval) — enough to
/// turn a Bonferroni-spent tail probability into a critical value without
/// an external stats dependency.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "normal_quantile needs 0 < p < 1, got {p}"
    );
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -normal_quantile(1.0 - p)
    }
}

/// Streams up to `trials` executions of `trial_fn` through the shared job
/// pool, folding observations into per-worker accumulators (see the module
/// docs).  `trial_fn(t)` must be a pure function of the trial index `t` —
/// that is what makes the totals independent of sharding.  Returns with
/// `records` empty; [`Campaign::run_streaming`] fills it.
pub fn run_stream<F>(trials: usize, config: &StreamConfig, trial_fn: F) -> StreamReport
where
    F: Fn(usize) -> TrialObservation + Send + Sync + 'static,
{
    let slots = abft_serve::workers();
    let trials_per_job = config.trials_per_job.max(1);
    let batch = config.batch.max(trials_per_job);
    let accumulators: Arc<Vec<CampaignAccumulator>> = Arc::new(
        (0..slots)
            .map(|_| CampaignAccumulator::new(config.capture_limit))
            .collect(),
    );
    let trial_fn = Arc::new(trial_fn);
    let planned_looks = trials.div_ceil(batch).max(1);
    let look_z = match config.stop {
        Some(rule) => normal_quantile(1.0 - rule.alpha / (2.0 * planned_looks as f64)),
        None => WILSON_Z95,
    };

    let mut dispatched = 0usize;
    let mut job_index = 0usize;
    let mut looks = 0usize;
    let mut decision = StopDecision::Exhausted;
    while dispatched < trials {
        let wave_end = (dispatched + batch).min(trials);
        let mut jobs = Vec::with_capacity(batch.div_ceil(trials_per_job));
        let mut lo = dispatched;
        while lo < wave_end {
            let hi = (lo + trials_per_job).min(wave_end);
            let accumulators = Arc::clone(&accumulators);
            let trial_fn = Arc::clone(&trial_fn);
            let slot = job_index % slots;
            jobs.push(move || {
                for trial in lo..hi {
                    accumulators[slot].record(trial, trial_fn(trial));
                }
            });
            job_index += 1;
            lo = hi;
        }
        abft_serve::submit_batch(jobs);
        dispatched = wave_end;

        if let Some(rule) = config.stop {
            if dispatched >= rule.min_trials {
                looks += 1;
                let stats = merged_stats(&accumulators);
                let safe = stats.trials() - stats.count(FaultOutcome::SilentCorruption);
                let (lb, ub) = CampaignStats::wilson_with_z(safe, stats.trials(), look_z);
                if lb >= rule.target_safety_lb {
                    decision = StopDecision::TargetMet;
                    break;
                }
                if ub < rule.target_safety_lb {
                    decision = StopDecision::Futile;
                    break;
                }
            }
        }
    }

    let mut stats = CampaignStats::default();
    let mut drift = DriftHistogram::default();
    let mut captured = Vec::new();
    for accumulator in accumulators.iter() {
        let (s, d) = accumulator.snapshot();
        stats.merge(&s);
        drift.merge(&d);
        captured.extend(accumulator.captured());
    }
    captured.sort_unstable();
    captured.truncate(config.capture_limit);
    let safe = stats.trials() - stats.count(FaultOutcome::SilentCorruption);
    let (safety_lb, _) = CampaignStats::wilson_with_z(safe, stats.trials(), look_z);
    StreamReport {
        trials_run: stats.trials(),
        stats,
        drift,
        decision,
        looks,
        planned_looks,
        look_z,
        safety_lb,
        captured,
        records: Vec::new(),
    }
}

impl Campaign {
    /// Runs this campaign through the streaming engine: up to
    /// `config().trials` trials sharded across the job pool in waves, with
    /// `stream.stop` evaluated at wave boundaries, and every captured
    /// non-safe trial minimized into a replayable [`TrialRecord`].
    pub fn run_streaming(&self, stream: &StreamConfig) -> StreamReport {
        let shared = Arc::new(self.clone());
        let worker = Arc::clone(&shared);
        let mut report = run_stream(self.config().trials, stream, move |trial| {
            worker.run_trial_observed(trial)
        });
        report.records = report
            .captured
            .iter()
            .map(|&trial| shared.minimize_trial(trial))
            .collect();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drift_histogram_buckets_cover_the_axis() {
        assert_eq!(DriftHistogram::bucket_of(f64::NAN), 0);
        assert_eq!(DriftHistogram::bucket_of(f64::INFINITY), 0);
        assert_eq!(DriftHistogram::bucket_of(0.0), 1);
        assert_eq!(DriftHistogram::bucket_of(1e-17), 1);
        assert_eq!(DriftHistogram::bucket_of(2e-16), 2);
        assert_eq!(DriftHistogram::bucket_of(5e-3), 15);
        assert_eq!(DriftHistogram::bucket_of(99.0), 19);
        assert_eq!(DriftHistogram::bucket_of(1e2), DRIFT_BUCKETS - 1);
        assert_eq!(DriftHistogram::bucket_of(1e300), DRIFT_BUCKETS - 1);
        assert_eq!(DriftHistogram::label(0), "no answer");
        assert_eq!(DriftHistogram::label(1), "<=1e-16");
        assert_eq!(DriftHistogram::label(15), "[1e-3,1e-2)");
        assert_eq!(DriftHistogram::label(DRIFT_BUCKETS - 1), ">=1e2");
        let mut h = DriftHistogram::default();
        h.record(5e-3);
        h.record(f64::NAN);
        let mut other = DriftHistogram::default();
        other.record(5e-3);
        h.merge(&other);
        assert_eq!(h.count(15), 2);
        assert_eq!(h.count(0), 1);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn normal_quantile_matches_known_critical_values() {
        assert!((normal_quantile(0.975) - 1.959_963_984_540_054).abs() < 1e-7);
        assert!((normal_quantile(0.995) - 2.575_829_303_548_901).abs() < 1e-7);
        assert!((normal_quantile(0.5)).abs() < 1e-12);
        // Symmetry and deep-tail sanity.
        assert!((normal_quantile(0.025) + normal_quantile(0.975)).abs() < 1e-7);
        let deep = normal_quantile(1.0 - 0.05 / (2.0 * 245.0));
        assert!(deep > 3.4 && deep < 4.0, "Bonferroni z for K=245: {deep}");
        // More looks always widens the interval.
        assert!(normal_quantile(1.0 - 0.025 / 100.0) > normal_quantile(1.0 - 0.025 / 10.0));
    }

    #[test]
    fn accumulator_counts_are_sharding_independent() {
        let observations: Vec<TrialObservation> = (0..1000)
            .map(|t| TrialObservation {
                outcome: FaultOutcome::ALL[t % FaultOutcome::ALL.len()],
                drift: if t % 7 == 0 {
                    f64::NAN
                } else {
                    1e-12 * t as f64
                },
            })
            .collect();
        let sequential = CampaignAccumulator::new(64);
        for (t, &obs) in observations.iter().enumerate() {
            sequential.record(t, obs);
        }
        for shards in [1usize, 2, 8] {
            let accumulators: Vec<CampaignAccumulator> =
                (0..shards).map(|_| CampaignAccumulator::new(64)).collect();
            for (t, &obs) in observations.iter().enumerate() {
                accumulators[t % shards].record(t, obs);
            }
            let mut stats = CampaignStats::default();
            let mut drift = DriftHistogram::default();
            for accumulator in &accumulators {
                let (s, d) = accumulator.snapshot();
                stats.merge(&s);
                drift.merge(&d);
            }
            let (expected_stats, expected_drift) = sequential.snapshot();
            assert_eq!(stats, expected_stats, "{shards} shards");
            assert_eq!(drift, expected_drift, "{shards} shards");
        }
    }

    #[test]
    fn capture_respects_the_limit_and_skips_safe_trials() {
        let accumulator = CampaignAccumulator::new(3);
        for t in 0..100 {
            let outcome = if t % 2 == 0 {
                FaultOutcome::SilentCorruption
            } else {
                FaultOutcome::Corrected
            };
            accumulator.record(
                t,
                TrialObservation {
                    outcome,
                    drift: 1.0,
                },
            );
        }
        let captured = accumulator.captured();
        assert_eq!(captured.len(), 3);
        assert!(captured.iter().all(|t| t % 2 == 0));
    }
}
