//! # abft-faultsim — fault injection campaigns
//!
//! The paper's claim is that the ABFT schemes protect the *whole* working set
//! of the solver from memory bit flips.  This crate validates that claim by
//! injecting faults (the software stand-in for the cosmic-ray upsets of §I)
//! into every protected region — independent bit flips, contiguous bursts,
//! and whole-chunk *erasures* of live solver state — and classifying what
//! happens:
//!
//! * [`FaultOutcome::Corrected`] — the fault was detected and repaired in
//!   place by the embedded ECC (a Detectable Correctable Error);
//! * [`FaultOutcome::DetectedRebuilt`] — the fault exceeded the embedded
//!   ECC but the lost chunk was rebuilt from the XOR parity tier and the
//!   solve completed with the right answer;
//! * [`FaultOutcome::DetectedAborted`] — the fault was detected but not
//!   repairable by either tier; the application is told instead of silently
//!   computing with bad data (a Detectable Uncorrectable Error);
//! * [`FaultOutcome::BoundsCaught`] — a range check (the cheap check used
//!   between full-check intervals, §VI-A-2) stopped an out-of-bounds access;
//! * [`FaultOutcome::Masked`] — the fault landed somewhere harmless (e.g. a
//!   reserved redundancy bit or an explicitly stored zero) and the solution
//!   is unaffected;
//! * [`FaultOutcome::SilentCorruption`] — the fault escaped detection and
//!   changed the answer: the failure mode ECC exists to prevent.
//!
//! Campaigns are deterministic for a given seed: every trial draws from its
//! own ChaCha stream keyed by (campaign seed, trial index), so the histogram
//! is identical for any worker count or dispatch order, and every rate comes
//! with a Wilson 95 % confidence interval
//! ([`CampaignStats::wilson_ci`]).  Every statistic in EXPERIMENTS.md can be
//! regenerated exactly.
//!
//! Three layers sit on top of the per-trial machinery:
//!
//! * [`engine`] — the streaming campaign engine: trials shard across the
//!   `abft-serve` job pool into lock-free per-worker accumulators
//!   (O(workers) memory, so a million-trial campaign is just wall-clock),
//!   with an adaptive [`StopRule`] whose sequential Wilson peeks stay valid
//!   under a Bonferroni spending correction.
//! * [`record`] — replayable failure capture: non-safe trials shrink through
//!   a deterministic minimizer into [`TrialRecord`]s, and a
//!   [`FailureCorpus`] serializes them for bit-for-bit
//!   [`Campaign::replay`].
//! * [`json`] — the dependency-free JSON reader/writer the corpus (and the
//!   bench crate) serialize with.

pub mod campaign;
pub mod engine;
pub mod flip;
pub mod json;
pub mod outcome;
pub mod record;

pub use campaign::{
    Campaign, CampaignConfig, CampaignStats, InjectionKind, TrialDraw, TrialObservation, WILSON_Z95,
};
pub use engine::{
    normal_quantile, CampaignAccumulator, DriftHistogram, StopDecision, StopRule, StreamConfig,
    StreamReport,
};
pub use flip::{FaultSpec, FaultTarget, SolverVectorTarget};
pub use outcome::FaultOutcome;
pub use record::{FailureCorpus, ReplayOutcome, TrialRecord};
