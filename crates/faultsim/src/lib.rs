//! # abft-faultsim — fault injection campaigns
//!
//! The paper's claim is that the ABFT schemes protect the *whole* working set
//! of the solver from memory bit flips.  This crate validates that claim by
//! injecting flips (the software stand-in for the cosmic-ray upsets of §I)
//! into every protected region and classifying what happens:
//!
//! * [`FaultOutcome::Corrected`] — the flip was detected and repaired
//!   (a Detectable Correctable Error);
//! * [`FaultOutcome::DetectedUncorrectable`] — the flip was detected but not
//!   repairable; the application is told instead of silently computing with
//!   bad data (a Detectable Uncorrectable Error);
//! * [`FaultOutcome::BoundsCaught`] — a range check (the cheap check used
//!   between full-check intervals, §VI-A-2) stopped an out-of-bounds access;
//! * [`FaultOutcome::Masked`] — the flip landed somewhere harmless (e.g. a
//!   reserved redundancy bit or an explicitly stored zero) and the solution
//!   is unaffected;
//! * [`FaultOutcome::SilentDataCorruption`] — the flip escaped detection and
//!   changed the answer: the failure mode ECC exists to prevent.
//!
//! Campaigns are deterministic for a given seed (ChaCha8 RNG), so every
//! statistic in EXPERIMENTS.md can be regenerated exactly.

pub mod campaign;
pub mod flip;
pub mod outcome;

pub use campaign::{Campaign, CampaignConfig, CampaignStats};
pub use flip::{FaultSpec, FaultTarget};
pub use outcome::FaultOutcome;
