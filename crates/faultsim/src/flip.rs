//! Fault specification: where and how bits are flipped.

use rand::Rng;

/// Which protected region receives the injected flips.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultTarget {
    /// The 64-bit values of the CSR matrix.
    MatrixValues,
    /// The (encoded) 32-bit column indices of the CSR matrix.
    MatrixColumnIndices,
    /// The (encoded) 32-bit row-pointer entries.
    RowPointer,
    /// A protected dense floating-point vector.
    DenseVector,
}

/// Which *live solver vector* a mid-iteration injection strikes.
///
/// Unlike [`FaultTarget::DenseVector`] (a vector at rest, scrubbed outside
/// any solve), these name the three vectors of the CG recurrence while the
/// solver is running; the fault lands between two iterations via the
/// `cg_with_poll` hook and the next kernel that reads the vector meets it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolverVectorTarget {
    /// The current iterate `x`.
    X,
    /// The current residual `r`.
    R,
    /// The current search direction `p`.
    P,
}

impl SolverVectorTarget {
    /// All live-vector targets.
    pub const ALL: [SolverVectorTarget; 3] = [
        SolverVectorTarget::X,
        SolverVectorTarget::R,
        SolverVectorTarget::P,
    ];

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            SolverVectorTarget::X => "iterate x",
            SolverVectorTarget::R => "residual r",
            SolverVectorTarget::P => "direction p",
        }
    }
}

impl FaultTarget {
    /// All targets.
    pub const ALL: [FaultTarget; 4] = [
        FaultTarget::MatrixValues,
        FaultTarget::MatrixColumnIndices,
        FaultTarget::RowPointer,
        FaultTarget::DenseVector,
    ];

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            FaultTarget::MatrixValues => "matrix values",
            FaultTarget::MatrixColumnIndices => "matrix column indices",
            FaultTarget::RowPointer => "row pointer",
            FaultTarget::DenseVector => "dense vector",
        }
    }

    /// Width in bits of one element of this region.
    pub fn element_bits(self) -> u32 {
        match self {
            FaultTarget::MatrixValues | FaultTarget::DenseVector => 64,
            FaultTarget::MatrixColumnIndices | FaultTarget::RowPointer => 32,
        }
    }
}

/// A concrete set of bit flips to inject into one region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    /// Target region.
    pub target: FaultTarget,
    /// `(element index, bit index)` pairs to flip.
    pub flips: Vec<(usize, u32)>,
}

impl FaultSpec {
    /// Draws `count` independent uniformly random flips over `elements`
    /// elements of `target`.  Flips may coincide (the paper's multi-bit-upset
    /// scenario includes that case).
    pub fn random(rng: &mut impl Rng, target: FaultTarget, elements: usize, count: usize) -> Self {
        assert!(elements > 0, "cannot inject into an empty region");
        let flips = (0..count)
            .map(|_| {
                (
                    rng.gen_range(0..elements),
                    rng.gen_range(0..target.element_bits()),
                )
            })
            .collect();
        FaultSpec { target, flips }
    }

    /// Draws a burst error: `length` consecutive bits flipped starting at a
    /// random position inside a random element (burst errors are the error
    /// class CRC32C is particularly good at, §IV).
    pub fn random_burst(
        rng: &mut impl Rng,
        target: FaultTarget,
        elements: usize,
        length: u32,
    ) -> Self {
        assert!(elements > 0, "cannot inject into an empty region");
        assert!(length >= 1 && length <= target.element_bits());
        let element = rng.gen_range(0..elements);
        let start = rng.gen_range(0..=target.element_bits() - length);
        let flips = (0..length)
            .map(|offset| (element, start + offset))
            .collect();
        FaultSpec { target, flips }
    }

    /// Draws an *erasure* of `span` consecutive elements: the span is chosen
    /// aligned to its own width and every element in it receives roughly half
    /// its bits as independent random flips — the flip-level model of losing
    /// a whole shard or codeword group (the contents are garbage, not a
    /// small perturbation of the original).
    ///
    /// # Panics
    /// Panics when `span` is zero or larger than the region.
    pub fn erase_span(
        rng: &mut impl Rng,
        target: FaultTarget,
        elements: usize,
        span: usize,
    ) -> Self {
        assert!(elements > 0, "cannot inject into an empty region");
        assert!(
            span >= 1 && span <= elements,
            "erasure span {span} outside 1..={elements}"
        );
        let start = rng.gen_range(0..elements / span) * span;
        let bits = target.element_bits();
        let mut flips = Vec::with_capacity(span * (bits as usize / 2));
        for element in start..start + span {
            for _ in 0..bits / 2 {
                flips.push((element, rng.gen_range(0..bits)));
            }
        }
        FaultSpec { target, flips }
    }

    /// Number of flips in this spec.
    pub fn weight(&self) -> usize {
        self.flips.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn random_flips_are_in_range_and_deterministic() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let spec = FaultSpec::random(&mut rng, FaultTarget::MatrixValues, 100, 5);
        assert_eq!(spec.weight(), 5);
        for &(element, bit) in &spec.flips {
            assert!(element < 100);
            assert!(bit < 64);
        }
        let mut rng2 = ChaCha8Rng::seed_from_u64(7);
        let spec2 = FaultSpec::random(&mut rng2, FaultTarget::MatrixValues, 100, 5);
        assert_eq!(spec, spec2);
    }

    #[test]
    fn burst_is_contiguous() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let spec = FaultSpec::random_burst(&mut rng, FaultTarget::RowPointer, 20, 6);
        assert_eq!(spec.weight(), 6);
        let element = spec.flips[0].0;
        for (i, &(e, bit)) in spec.flips.iter().enumerate() {
            assert_eq!(e, element);
            assert_eq!(bit, spec.flips[0].1 + i as u32);
            assert!(bit < 32);
        }
    }

    #[test]
    fn labels_and_widths() {
        assert_eq!(FaultTarget::ALL.len(), 4);
        assert_eq!(FaultTarget::MatrixValues.element_bits(), 64);
        assert_eq!(FaultTarget::RowPointer.element_bits(), 32);
        assert!(FaultTarget::DenseVector.label().contains("vector"));
    }

    #[test]
    fn erase_span_is_aligned_and_dense() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let spec = FaultSpec::erase_span(&mut rng, FaultTarget::RowPointer, 40, 4);
        // Half of 32 bits for each of the 4 elements in the span.
        assert_eq!(spec.weight(), 4 * 16);
        let start = spec.flips.iter().map(|&(e, _)| e).min().unwrap();
        assert_eq!(start % 4, 0, "span must be aligned to its width");
        for &(element, bit) in &spec.flips {
            assert!((start..start + 4).contains(&element));
            assert!(bit < 32);
        }
    }

    #[test]
    #[should_panic]
    fn empty_region_panics() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        FaultSpec::random(&mut rng, FaultTarget::MatrixValues, 0, 1);
    }
}
