//! Sparse matrix–vector products.
//!
//! The paper notes that over 98 % of TeaLeaf's runtime lives in three
//! kernels: the SpMV and two dot products of the CG iteration.  These are
//! the routines the ABFT schemes wrap, so the unprotected versions here are
//! both the baseline of every overhead figure and the reference the
//! protected versions are tested against.
//!
//! A serial and a Rayon-parallel version are provided; the parallel version
//! partitions by row, matching the OpenMP/CUDA one-thread-per-row structure
//! of the original TeaLeaf kernels.

use crate::CsrMatrix;
use rayon::prelude::*;

/// `y = A x`, serial.
///
/// # Panics
/// Panics if the dimensions of `x` or `y` do not match the matrix.
pub fn spmv_serial(a: &CsrMatrix, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), a.cols(), "spmv: x has wrong length");
    assert_eq!(y.len(), a.rows(), "spmv: y has wrong length");
    let values = a.values();
    let cols = a.col_indices();
    let row_ptr = a.row_pointer();
    for (row, yi) in y.iter_mut().enumerate() {
        let mut acc = 0.0;
        for k in row_ptr[row] as usize..row_ptr[row + 1] as usize {
            acc += values[k] * x[cols[k] as usize];
        }
        *yi = acc;
    }
}

/// `y = A x`, one Rayon task per chunk of rows.
pub fn spmv_parallel(a: &CsrMatrix, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), a.cols(), "spmv: x has wrong length");
    assert_eq!(y.len(), a.rows(), "spmv: y has wrong length");
    let values = a.values();
    let cols = a.col_indices();
    let row_ptr = a.row_pointer();
    y.par_iter_mut().enumerate().for_each(|(row, yi)| {
        let mut acc = 0.0;
        for k in row_ptr[row] as usize..row_ptr[row + 1] as usize {
            acc += values[k] * x[cols[k] as usize];
        }
        *yi = acc;
    });
}

/// Parallel dot product (used by the parallel CG configuration).
pub fn dot_parallel(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.par_iter().zip(b.par_iter()).map(|(x, y)| x * y).sum()
}

/// [`dot_parallel`] with a caller-owned per-chunk partial buffer, so solver
/// loops reuse one allocation across iterations.  Per-chunk sums are folded
/// in chunk order — bitwise identical to [`dot_parallel`] at the same chunk
/// count, and to [`blas_dot`](crate::vector::blas_dot) when the input is
/// below the parallel threshold.
pub fn dot_parallel_with(a: &[f64], b: &[f64], partials: &mut Vec<f64>) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    let len = a.len();
    let chunks = rayon::chunk_count(len);
    if chunks <= 1 {
        return crate::vector::blas_dot(a, b);
    }
    let chunk = len.div_ceil(chunks);
    if partials.len() < chunks {
        partials.resize(chunks, 0.0);
    }
    // `Vec<()>` never allocates: the unit states only set the chunk count.
    let mut states = vec![(); chunks];
    let ok: Result<(), std::convert::Infallible> =
        rayon::with_chunks_mut(&mut partials[..chunks], &mut states, |c, slot, _| {
            let start = c * chunk;
            let end = ((c + 1) * chunk).min(len);
            slot[0] = a[start..end]
                .iter()
                .zip(&b[start..end])
                .map(|(x, y)| x * y)
                .sum();
            Ok(())
        });
    match ok {
        Ok(()) => partials[..chunks].iter().sum(),
        Err(never) => match never {},
    }
}

/// Parallel AXPY: `y ← y + alpha x`.
pub fn axpy_parallel(y: &mut [f64], alpha: f64, x: &[f64]) {
    assert_eq!(y.len(), x.len(), "axpy: length mismatch");
    y.par_iter_mut().zip(x.par_iter()).for_each(|(yi, &xi)| {
        *yi += alpha * xi;
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::poisson_2d;
    use crate::vector::blas_dot;

    #[test]
    fn serial_and_parallel_agree() {
        let a = poisson_2d(17, 13);
        let x: Vec<f64> = (0..a.cols()).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut y1 = vec![0.0; a.rows()];
        let mut y2 = vec![0.0; a.rows()];
        spmv_serial(&a, &x, &mut y1);
        spmv_parallel(&a, &x, &mut y2);
        for (u, v) in y1.iter().zip(&y2) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn parallel_blas1_matches_serial() {
        let a: Vec<f64> = (0..1000).map(|i| (i as f64).cos()).collect();
        let b: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.5).sin()).collect();
        let serial = blas_dot(&a, &b);
        let parallel = dot_parallel(&a, &b);
        assert!((serial - parallel).abs() < 1e-9);

        let mut y1 = a.clone();
        let mut y2 = a.clone();
        crate::vector::blas_axpy(&mut y1, 1.5, &b);
        axpy_parallel(&mut y2, 1.5, &b);
        assert_eq!(y1, y2);
    }

    #[test]
    fn workspace_dot_is_bitwise_identical_to_the_allocating_path() {
        // Below the parallel threshold (serial fallback) and above it, with
        // the buffer reused across calls of different lengths.
        let mut partials = Vec::new();
        for n in [1000usize, 30_000, 9_000] {
            let a: Vec<f64> = (0..n).map(|i| (i as f64 * 0.61).sin()).collect();
            let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).cos()).collect();
            let reference = dot_parallel(&a, &b);
            let with_ws = dot_parallel_with(&a, &b, &mut partials);
            assert_eq!(with_ws.to_bits(), reference.to_bits(), "n={n}");
        }
    }

    #[test]
    #[should_panic]
    fn wrong_x_length_panics() {
        let a = poisson_2d(4, 4);
        let x = vec![0.0; 3];
        let mut y = vec![0.0; a.rows()];
        spmv_serial(&a, &x, &mut y);
    }

    #[test]
    #[should_panic]
    fn wrong_y_length_panics() {
        let a = poisson_2d(4, 4);
        let x = vec![0.0; a.cols()];
        let mut y = vec![0.0; 3];
        spmv_parallel(&a, &x, &mut y);
    }
}
