//! Streaming Matrix Market (`.mtx`) ingestion.
//!
//! Parses the NIST Matrix Market exchange format directly into [`CsrMatrix`]
//! storage without materialising an intermediate vector of `(row, col,
//! value)` triples: entries stream into structure-of-arrays buffers, a
//! per-row counting pass turns into the CSR row pointer by prefix sum, and a
//! stable counting-sort scatter places each entry (plus its symmetric
//! mirror) in its row.  A final per-row pass sorts columns and merges
//! duplicate coordinates by summation, so files with unsorted or repeated
//! entries load into canonical CSR form.
//!
//! Supported header combinations:
//!
//! * formats — `coordinate` (sparse triplets) and `array` (dense
//!   column-major; exact zeros are dropped while building the sparse form);
//! * fields — `real`, `integer`, and `pattern` (pattern entries get value
//!   `1.0`; `pattern` is only valid with `coordinate`);
//! * symmetries — `general` and `symmetric` (off-diagonal entries of a
//!   symmetric file are mirrored; `skew-symmetric` and `hermitian` are
//!   rejected, as is the `complex` field).
//!
//! Indices in the file are 1-based per the format specification and are
//! validated against the declared dimensions.

use crate::{CsrMatrix, SparseError};
use std::fmt;
use std::io::BufRead;
use std::path::Path;

/// Errors produced while reading a Matrix Market file.
#[derive(Debug)]
pub enum MatrixMarketError {
    /// The underlying reader failed.
    Io(std::io::Error),
    /// A line could not be parsed (1-based line number and description).
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
    /// The header names a format/field/symmetry combination this parser
    /// does not support (e.g. `complex` or `hermitian`).
    Unsupported(String),
    /// The parsed entries do not form a structurally valid matrix.
    Invalid(SparseError),
}

impl fmt::Display for MatrixMarketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixMarketError::Io(e) => write!(f, "matrix market: I/O error: {e}"),
            MatrixMarketError::Parse { line, message } => {
                write!(f, "matrix market: line {line}: {message}")
            }
            MatrixMarketError::Unsupported(what) => {
                write!(f, "matrix market: unsupported: {what}")
            }
            MatrixMarketError::Invalid(e) => write!(f, "matrix market: invalid matrix: {e}"),
        }
    }
}

impl std::error::Error for MatrixMarketError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MatrixMarketError::Io(e) => Some(e),
            MatrixMarketError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for MatrixMarketError {
    fn from(e: std::io::Error) -> Self {
        MatrixMarketError::Io(e)
    }
}

impl From<SparseError> for MatrixMarketError {
    fn from(e: SparseError) -> Self {
        MatrixMarketError::Invalid(e)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Coordinate,
    Array,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Field {
    Real,
    Integer,
    Pattern,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Symmetry {
    General,
    Symmetric,
}

struct Header {
    format: Format,
    field: Field,
    symmetry: Symmetry,
}

fn parse_header(line: &str) -> Result<Header, MatrixMarketError> {
    let tokens: Vec<String> = line.split_whitespace().map(str::to_lowercase).collect();
    if tokens.len() < 5 || tokens[0] != "%%matrixmarket" || tokens[1] != "matrix" {
        return Err(MatrixMarketError::Parse {
            line: 1,
            message: format!(
                "expected '%%MatrixMarket matrix <format> <field> <symmetry>' header, got {line:?}"
            ),
        });
    }
    let format = match tokens[2].as_str() {
        "coordinate" => Format::Coordinate,
        "array" => Format::Array,
        other => return Err(MatrixMarketError::Unsupported(format!("format {other:?}"))),
    };
    let field = match tokens[3].as_str() {
        "real" => Field::Real,
        "integer" => Field::Integer,
        "pattern" => Field::Pattern,
        other => return Err(MatrixMarketError::Unsupported(format!("field {other:?}"))),
    };
    let symmetry = match tokens[4].as_str() {
        "general" => Symmetry::General,
        "symmetric" => Symmetry::Symmetric,
        other => {
            return Err(MatrixMarketError::Unsupported(format!(
                "symmetry {other:?}"
            )))
        }
    };
    if format == Format::Array && field == Field::Pattern {
        return Err(MatrixMarketError::Unsupported(
            "array format with pattern field".into(),
        ));
    }
    Ok(Header {
        format,
        field,
        symmetry,
    })
}

/// Streaming accumulator: structure-of-arrays entry buffers plus the
/// per-row histogram that later becomes the row pointer.
struct Accumulator {
    rows: usize,
    cols: usize,
    symmetric: bool,
    entry_rows: Vec<u32>,
    entry_cols: Vec<u32>,
    entry_vals: Vec<f64>,
    row_counts: Vec<u32>,
}

impl Accumulator {
    fn new(rows: usize, cols: usize, symmetric: bool, capacity: usize) -> Self {
        Accumulator {
            rows,
            cols,
            symmetric,
            entry_rows: Vec::with_capacity(capacity),
            entry_cols: Vec::with_capacity(capacity),
            entry_vals: Vec::with_capacity(capacity),
            row_counts: vec![0u32; rows],
        }
    }

    /// Accepts one 0-based entry, counting its symmetric mirror too.
    fn push(&mut self, row: u32, col: u32, value: f64) {
        self.entry_rows.push(row);
        self.entry_cols.push(col);
        self.entry_vals.push(value);
        self.row_counts[row as usize] += 1;
        if self.symmetric && row != col {
            self.row_counts[col as usize] += 1;
        }
    }

    /// Prefix sum → scatter → per-row sort and duplicate merge.
    fn into_csr(self) -> Result<CsrMatrix, MatrixMarketError> {
        let total: usize = self.row_counts.iter().map(|&c| c as usize).sum();
        if total > u32::MAX as usize {
            return Err(MatrixMarketError::Invalid(SparseError::TooLarge(format!(
                "{total} entries after symmetric expansion"
            ))));
        }
        let mut row_pointer = Vec::with_capacity(self.rows + 1);
        row_pointer.push(0u32);
        let mut acc = 0u32;
        for &c in &self.row_counts {
            acc += c;
            row_pointer.push(acc);
        }
        // Stable scatter: input order within each row is preserved, so the
        // later duplicate merge sums file entries in file order.
        let mut cursors: Vec<u32> = row_pointer[..self.rows].to_vec();
        let mut col_indices = vec![0u32; total];
        let mut values = vec![0.0f64; total];
        let mut place = |r: u32, c: u32, v: f64, cursors: &mut [u32]| {
            let slot = cursors[r as usize] as usize;
            cursors[r as usize] += 1;
            col_indices[slot] = c;
            values[slot] = v;
        };
        for k in 0..self.entry_rows.len() {
            let (r, c, v) = (self.entry_rows[k], self.entry_cols[k], self.entry_vals[k]);
            place(r, c, v, &mut cursors);
            if self.symmetric && r != c {
                place(c, r, v, &mut cursors);
            }
        }

        // Canonicalise each row: sort by column via a reusable index
        // permutation, merging duplicate coordinates by summation.
        let mut out_cols = Vec::with_capacity(total);
        let mut out_vals = Vec::with_capacity(total);
        let mut out_ptr = Vec::with_capacity(self.rows + 1);
        out_ptr.push(0u32);
        let mut perm: Vec<u32> = Vec::new();
        for row in 0..self.rows {
            let start = row_pointer[row] as usize;
            let end = row_pointer[row + 1] as usize;
            let cols = &col_indices[start..end];
            let vals = &values[start..end];
            perm.clear();
            perm.extend(0..cols.len() as u32);
            perm.sort_by_key(|&i| cols[i as usize]);
            for &i in &perm {
                let (c, v) = (cols[i as usize], vals[i as usize]);
                match out_cols.last() {
                    Some(&last)
                        if out_cols.len() > *out_ptr.last().unwrap() as usize && last == c =>
                    {
                        *out_vals.last_mut().unwrap() += v;
                    }
                    _ => {
                        out_cols.push(c);
                        out_vals.push(v);
                    }
                }
            }
            out_ptr.push(out_cols.len() as u32);
        }
        Ok(CsrMatrix::try_new(
            self.rows, self.cols, out_vals, out_cols, out_ptr,
        )?)
    }
}

fn parse_usize(token: &str, line: usize, what: &str) -> Result<usize, MatrixMarketError> {
    token.parse().map_err(|_| MatrixMarketError::Parse {
        line,
        message: format!("invalid {what} {token:?}"),
    })
}

fn parse_value(token: &str, line: usize, field: Field) -> Result<f64, MatrixMarketError> {
    match field {
        Field::Pattern => unreachable!("pattern entries carry no value token"),
        Field::Integer => {
            token
                .parse::<i64>()
                .map(|v| v as f64)
                .map_err(|_| MatrixMarketError::Parse {
                    line,
                    message: format!("invalid integer value {token:?}"),
                })
        }
        Field::Real => token.parse().map_err(|_| MatrixMarketError::Parse {
            line,
            message: format!("invalid real value {token:?}"),
        }),
    }
}

/// Converts a 1-based file index into a validated 0-based index.
fn parse_index(
    token: &str,
    line: usize,
    limit: usize,
    what: &str,
) -> Result<u32, MatrixMarketError> {
    let raw = parse_usize(token, line, what)?;
    if raw == 0 || raw > limit {
        return Err(MatrixMarketError::Parse {
            line,
            message: format!("{what} {raw} out of range 1..={limit}"),
        });
    }
    Ok((raw - 1) as u32)
}

/// Parses Matrix Market data from any buffered reader.
pub fn parse_matrix_market<R: BufRead>(reader: R) -> Result<CsrMatrix, MatrixMarketError> {
    let mut lines = reader.lines();
    let header_line = lines.next().ok_or(MatrixMarketError::Parse {
        line: 1,
        message: "empty input".into(),
    })??;
    let header = parse_header(&header_line)?;

    let mut line_no = 1usize;
    let mut size: Option<(usize, usize, usize)> = None;
    let mut acc: Option<Accumulator> = None;
    // Array format state: entries stream in column-major order.
    let mut array_cursor = 0usize;
    let mut array_expected = 0usize;
    let mut declared = 0usize;
    let mut seen = 0usize;

    for l in lines {
        let l = l?;
        line_no += 1;
        let line = l.trim();
        if line.is_empty() || line.starts_with('%') {
            continue;
        }
        let mut tokens = line.split_whitespace();
        if size.is_none() {
            // The size line.
            let rows = parse_usize(tokens.next().unwrap_or(""), line_no, "row count")?;
            let cols = parse_usize(tokens.next().unwrap_or(""), line_no, "column count")?;
            if rows > u32::MAX as usize || cols > u32::MAX as usize {
                return Err(MatrixMarketError::Invalid(SparseError::TooLarge(format!(
                    "{rows} x {cols}"
                ))));
            }
            let nnz = match header.format {
                Format::Coordinate => {
                    parse_usize(tokens.next().unwrap_or(""), line_no, "entry count")?
                }
                Format::Array => {
                    if header.symmetry == Symmetry::Symmetric {
                        if rows != cols {
                            return Err(MatrixMarketError::Parse {
                                line: line_no,
                                message: format!(
                                    "symmetric array matrix must be square, got {rows} x {cols}"
                                ),
                            });
                        }
                        rows * (rows + 1) / 2
                    } else {
                        rows * cols
                    }
                }
            };
            if tokens.next().is_some() {
                return Err(MatrixMarketError::Parse {
                    line: line_no,
                    message: "trailing tokens on size line".into(),
                });
            }
            declared = nnz;
            array_expected = nnz;
            size = Some((rows, cols, nnz));
            acc = Some(Accumulator::new(
                rows,
                cols,
                header.symmetry == Symmetry::Symmetric,
                match header.format {
                    Format::Coordinate => nnz,
                    Format::Array => nnz, // upper bound; zeros are dropped
                },
            ));
            continue;
        }
        let (rows, cols, _) = size.unwrap();
        let acc = acc.as_mut().unwrap();
        match header.format {
            Format::Coordinate => {
                seen += 1;
                if seen > declared {
                    return Err(MatrixMarketError::Parse {
                        line: line_no,
                        message: format!("more than the declared {declared} entries"),
                    });
                }
                let r = parse_index(tokens.next().unwrap_or(""), line_no, rows, "row index")?;
                let c = parse_index(tokens.next().unwrap_or(""), line_no, cols, "column index")?;
                let v = match header.field {
                    Field::Pattern => 1.0,
                    field => parse_value(tokens.next().unwrap_or(""), line_no, field)?,
                };
                if tokens.next().is_some() {
                    return Err(MatrixMarketError::Parse {
                        line: line_no,
                        message: "trailing tokens on entry line".into(),
                    });
                }
                if header.symmetry == Symmetry::Symmetric && (c as usize) > (r as usize) {
                    return Err(MatrixMarketError::Parse {
                        line: line_no,
                        message: format!(
                            "symmetric file stores the lower triangle only, got ({}, {})",
                            r + 1,
                            c + 1
                        ),
                    });
                }
                acc.push(r, c, v);
            }
            Format::Array => {
                // Dense values, one or more per line, column-major; for the
                // symmetric symmetry the lower triangle of each column.
                for token in std::iter::once(tokens.next().ok_or(MatrixMarketError::Parse {
                    line: line_no,
                    message: "empty data line".into(),
                })?)
                .chain(tokens)
                {
                    if array_cursor >= array_expected {
                        return Err(MatrixMarketError::Parse {
                            line: line_no,
                            message: format!("more than the expected {array_expected} values"),
                        });
                    }
                    let v = parse_value(token, line_no, header.field)?;
                    let (r, c) = match header.symmetry {
                        Symmetry::General => {
                            ((array_cursor % rows) as u32, (array_cursor / rows) as u32)
                        }
                        Symmetry::Symmetric => lower_triangle_coords(array_cursor, rows),
                    };
                    array_cursor += 1;
                    if v != 0.0 {
                        acc.push(r, c, v);
                    }
                }
            }
        }
    }

    let Some((_, _, _)) = size else {
        return Err(MatrixMarketError::Parse {
            line: line_no,
            message: "missing size line".into(),
        });
    };
    match header.format {
        Format::Coordinate if seen != declared => {
            return Err(MatrixMarketError::Parse {
                line: line_no,
                message: format!("expected {declared} entries, found {seen}"),
            });
        }
        Format::Array if array_cursor != array_expected => {
            return Err(MatrixMarketError::Parse {
                line: line_no,
                message: format!("expected {array_expected} values, found {array_cursor}"),
            });
        }
        _ => {}
    }
    acc.unwrap().into_csr()
}

/// Maps a linear position in a column-major lower-triangle walk (diagonal
/// included) of an `n × n` matrix to its `(row, col)` coordinates.
fn lower_triangle_coords(k: usize, n: usize) -> (u32, u32) {
    // Column c contributes n - c entries; walk columns until k fits.
    let mut c = 0usize;
    let mut k = k;
    while k >= n - c {
        k -= n - c;
        c += 1;
    }
    ((c + k) as u32, c as u32)
}

/// Parses Matrix Market data from an in-memory string.
pub fn parse_matrix_market_str(data: &str) -> Result<CsrMatrix, MatrixMarketError> {
    parse_matrix_market(data.as_bytes())
}

/// Loads a `.mtx` file from disk.
pub fn load_matrix_market(path: impl AsRef<Path>) -> Result<CsrMatrix, MatrixMarketError> {
    let file = std::fs::File::open(path)?;
    parse_matrix_market(std::io::BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_general_coordinate_file() {
        let m = parse_matrix_market_str(
            "%%MatrixMarket matrix coordinate real general\n\
             % a comment\n\
             \n\
             3 4 5\n\
             1 1 2.5\n\
             3 4 -1.0\n\
             2 2 1e2\n\
             1 3 0.5\n\
             3 1 7.0\n",
        )
        .unwrap();
        assert_eq!((m.rows(), m.cols(), m.nnz()), (3, 4, 5));
        assert_eq!(m.get(0, 0), 2.5);
        assert_eq!(m.get(0, 2), 0.5);
        assert_eq!(m.get(1, 1), 100.0);
        assert_eq!(m.get(2, 0), 7.0);
        assert_eq!(m.get(2, 3), -1.0);
        // Columns are sorted within each row.
        assert_eq!(m.col_indices(), &[0, 2, 1, 0, 3]);
    }

    #[test]
    fn mirrors_symmetric_files() {
        let m = parse_matrix_market_str(
            "%%MatrixMarket matrix coordinate real symmetric\n\
             3 3 4\n\
             1 1 2.0\n\
             2 1 -1.0\n\
             3 3 4.0\n\
             3 2 5.0\n",
        )
        .unwrap();
        assert_eq!(m.nnz(), 6); // two off-diagonals mirrored
        assert_eq!(m.get(0, 1), -1.0);
        assert_eq!(m.get(1, 0), -1.0);
        assert_eq!(m.get(2, 1), 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert!(m.is_symmetric(0.0));
    }

    #[test]
    fn pattern_entries_get_unit_values() {
        let m = parse_matrix_market_str(
            "%%MatrixMarket matrix coordinate pattern general\n\
             2 2 3\n\
             1 1\n\
             2 1\n\
             2 2\n",
        )
        .unwrap();
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(1, 0), 1.0);
        assert_eq!(m.get(1, 1), 1.0);
        assert_eq!(m.get(0, 1), 0.0);
    }

    #[test]
    fn integer_field_and_duplicate_merge() {
        let m = parse_matrix_market_str(
            "%%MatrixMarket matrix coordinate integer general\n\
             2 2 3\n\
             1 1 2\n\
             1 1 3\n\
             2 2 -4\n",
        )
        .unwrap();
        assert_eq!(m.nnz(), 2, "duplicates merge by summation");
        assert_eq!(m.get(0, 0), 5.0);
        assert_eq!(m.get(1, 1), -4.0);
    }

    #[test]
    fn parses_dense_array_files() {
        // Column-major: column 1 is (1, 0), column 2 is (2, 3).
        let m = parse_matrix_market_str(
            "%%MatrixMarket matrix array real general\n\
             2 2\n\
             1.0\n\
             0.0\n\
             2.0\n\
             3.0\n",
        )
        .unwrap();
        assert_eq!(m.nnz(), 3, "exact zeros are dropped");
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 1), 3.0);
    }

    #[test]
    fn parses_symmetric_array_files() {
        // Lower triangle, column-major: (1,1) (2,1) (3,1) then (2,2) (3,2)
        // then (3,3).
        let m = parse_matrix_market_str(
            "%%MatrixMarket matrix array real symmetric\n\
             3 3\n\
             4.0 -1.0 -2.0\n\
             5.0 -3.0\n\
             6.0\n",
        )
        .unwrap();
        assert_eq!(m.nnz(), 9);
        assert!(m.is_symmetric(0.0));
        assert_eq!(m.get(0, 0), 4.0);
        assert_eq!(m.get(2, 0), -2.0);
        assert_eq!(m.get(0, 2), -2.0);
        assert_eq!(m.get(2, 1), -3.0);
        assert_eq!(m.get(2, 2), 6.0);
    }

    #[test]
    fn rejects_malformed_input() {
        // Unsupported field.
        assert!(matches!(
            parse_matrix_market_str("%%MatrixMarket matrix coordinate complex general\n1 1 1\n"),
            Err(MatrixMarketError::Unsupported(_))
        ));
        // Unsupported symmetry.
        assert!(matches!(
            parse_matrix_market_str("%%MatrixMarket matrix coordinate real hermitian\n"),
            Err(MatrixMarketError::Unsupported(_))
        ));
        // Bad header.
        assert!(parse_matrix_market_str("not a header\n").is_err());
        // Out-of-range index.
        let e = parse_matrix_market_str(
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n",
        );
        assert!(
            matches!(e, Err(MatrixMarketError::Parse { line: 3, .. })),
            "{e:?}"
        );
        // 0 is not a valid 1-based index.
        assert!(parse_matrix_market_str(
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n"
        )
        .is_err());
        // Entry count mismatch (too few).
        assert!(parse_matrix_market_str(
            "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n"
        )
        .is_err());
        // Entry count mismatch (too many).
        assert!(parse_matrix_market_str(
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1.0\n2 2 1.0\n"
        )
        .is_err());
        // Upper-triangle entry in a symmetric file.
        assert!(parse_matrix_market_str(
            "%%MatrixMarket matrix coordinate real symmetric\n2 2 1\n1 2 1.0\n"
        )
        .is_err());
        // Pattern array is not a thing.
        assert!(matches!(
            parse_matrix_market_str("%%MatrixMarket matrix array pattern general\n2 2\n"),
            Err(MatrixMarketError::Unsupported(_))
        ));
    }

    #[test]
    fn handles_empty_rows_and_skewed_lengths() {
        // Row 2 is empty; row 1 is long.
        let m = parse_matrix_market_str(
            "%%MatrixMarket matrix coordinate real general\n\
             3 5 6\n\
             1 5 5.0\n\
             1 1 1.0\n\
             1 3 3.0\n\
             1 2 2.0\n\
             1 4 4.0\n\
             3 1 9.0\n",
        )
        .unwrap();
        assert_eq!(m.row_range(0).len(), 5);
        assert_eq!(m.row_range(1).len(), 0);
        assert_eq!(m.row_range(2).len(), 1);
        assert_eq!(m.col_indices()[..5], [0, 1, 2, 3, 4]);
    }

    #[test]
    fn lower_triangle_walk_is_column_major() {
        let coords: Vec<(u32, u32)> = (0..6).map(|k| lower_triangle_coords(k, 3)).collect();
        assert_eq!(coords, vec![(0, 0), (1, 0), (2, 0), (1, 1), (2, 1), (2, 2)]);
    }
}
