//! Dense `f64` vectors.
//!
//! [`Vector`] is a thin wrapper over `Vec<f64>` that carries the BLAS-1
//! operations needed by the CG family of solvers.  It is the unprotected
//! counterpart of `abft_core::ProtectedVector`; both implement the same
//! access pattern so that solver code can be written once against the
//! `VectorStorage`-style traits in `abft-solvers`.

use std::ops::{Index, IndexMut};

/// A dense double-precision vector.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Vector {
    data: Vec<f64>,
}

impl Vector {
    /// Creates a zero-filled vector of length `n`.
    pub fn zeros(n: usize) -> Self {
        Vector { data: vec![0.0; n] }
    }

    /// Creates a vector filled with `value`.
    pub fn filled(n: usize, value: f64) -> Self {
        Vector {
            data: vec![value; n],
        }
    }

    /// Wraps an existing buffer.
    pub fn from_vec(data: Vec<f64>) -> Self {
        Vector { data }
    }

    /// Builds a vector from a function of the index.
    pub fn from_fn(n: usize, f: impl FnMut(usize) -> f64) -> Self {
        Vector {
            data: (0..n).map(f).collect(),
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the vector has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the underlying storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the underlying storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the vector and returns its buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Sets every element to `value`.
    pub fn fill(&mut self, value: f64) {
        self.data.fill(value);
    }

    /// Copies the contents of `other` into `self`.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn copy_from(&mut self, other: &Vector) {
        assert_eq!(self.len(), other.len(), "copy_from: length mismatch");
        self.data.copy_from_slice(&other.data);
    }

    /// Dot product `self · other`.
    pub fn dot(&self, other: &Vector) -> f64 {
        blas_dot(&self.data, &other.data)
    }

    /// `self ← self + alpha * other` (AXPY).
    pub fn axpy(&mut self, alpha: f64, other: &Vector) {
        blas_axpy(&mut self.data, alpha, &other.data);
    }

    /// `self ← other + alpha * self` (the "xpay" update CG uses for the
    /// search direction).
    pub fn xpay(&mut self, alpha: f64, other: &Vector) {
        assert_eq!(self.len(), other.len(), "xpay: length mismatch");
        for (s, &o) in self.data.iter_mut().zip(&other.data) {
            *s = o + alpha * *s;
        }
    }

    /// Multiplies every element by `alpha`.
    pub fn scale(&mut self, alpha: f64) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Euclidean norm.
    pub fn norm2(&self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Maximum absolute element.
    pub fn norm_inf(&self) -> f64 {
        self.data.iter().fold(0.0f64, |acc, &v| acc.max(v.abs()))
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }
}

impl Index<usize> for Vector {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        &self.data[i]
    }
}

impl IndexMut<usize> for Vector {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.data[i]
    }
}

impl From<Vec<f64>> for Vector {
    fn from(data: Vec<f64>) -> Self {
        Vector { data }
    }
}

impl FromIterator<f64> for Vector {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        Vector {
            data: iter.into_iter().collect(),
        }
    }
}

/// Free-function dot product over raw slices (shared with the protected path).
#[inline]
pub fn blas_dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Free-function AXPY over raw slices: `y ← y + alpha * x`.
#[inline]
pub fn blas_axpy(y: &mut [f64], alpha: f64, x: &[f64]) {
    assert_eq!(y.len(), x.len(), "axpy: length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Vector::zeros(4).as_slice(), &[0.0; 4]);
        assert_eq!(Vector::filled(3, 2.5).as_slice(), &[2.5, 2.5, 2.5]);
        assert_eq!(
            Vector::from_fn(4, |i| i as f64 * 2.0).as_slice(),
            &[0.0, 2.0, 4.0, 6.0]
        );
        let v: Vector = vec![1.0, 2.0].into();
        assert_eq!(v.len(), 2);
        assert!(!v.is_empty());
        assert!(Vector::zeros(0).is_empty());
        let w: Vector = [3.0, 4.0].into_iter().collect();
        assert_eq!(w.into_vec(), vec![3.0, 4.0]);
    }

    #[test]
    fn dot_and_norms() {
        let a = Vector::from_vec(vec![1.0, 2.0, 3.0]);
        let b = Vector::from_vec(vec![4.0, -5.0, 6.0]);
        assert_eq!(a.dot(&b), 4.0 - 10.0 + 18.0);
        assert!((a.norm2() - 14.0f64.sqrt()).abs() < 1e-15);
        assert_eq!(b.norm_inf(), 6.0);
        assert_eq!(a.sum(), 6.0);
    }

    #[test]
    fn axpy_xpay_scale() {
        let mut y = Vector::from_vec(vec![1.0, 1.0, 1.0]);
        let x = Vector::from_vec(vec![1.0, 2.0, 3.0]);
        y.axpy(2.0, &x);
        assert_eq!(y.as_slice(), &[3.0, 5.0, 7.0]);
        y.xpay(0.5, &x);
        assert_eq!(y.as_slice(), &[2.5, 4.5, 6.5]);
        y.scale(2.0);
        assert_eq!(y.as_slice(), &[5.0, 9.0, 13.0]);
        y.fill(0.0);
        assert_eq!(y.norm2(), 0.0);
    }

    #[test]
    fn copy_and_index() {
        let mut a = Vector::zeros(3);
        let b = Vector::from_vec(vec![7.0, 8.0, 9.0]);
        a.copy_from(&b);
        assert_eq!(a[1], 8.0);
        a[1] = -1.0;
        assert_eq!(a.as_slice(), &[7.0, -1.0, 9.0]);
        assert_eq!(a.as_mut_slice().len(), 3);
    }

    #[test]
    #[should_panic]
    fn mismatched_dot_panics() {
        let _ = Vector::zeros(2).dot(&Vector::zeros(3));
    }

    #[test]
    #[should_panic]
    fn mismatched_copy_panics() {
        Vector::zeros(2).copy_from(&Vector::zeros(3));
    }
}
