//! Sparse matrix generators.
//!
//! The main generator is the **five-point-stencil** operator on a regular 2-D
//! grid — the structure TeaLeaf assembles every time-step for its implicit
//! heat-conduction solve (§V-A of the paper: each row has at most five
//! non-zeros, one per stencil point).  A plain Poisson operator, a
//! symmetric-positive-definite random matrix and a tridiagonal matrix are
//! provided for tests and for exercising the ABFT schemes on structures that
//! are *not* five rows wide.

use crate::{CooMatrix, CsrMatrix};

/// The standard 2-D Poisson (negative Laplacian) operator on an `nx × ny`
/// grid with Dirichlet boundaries: diagonal 4, off-diagonals −1 for the four
/// neighbours.  Symmetric positive definite, `nx·ny` unknowns.
pub fn poisson_2d(nx: usize, ny: usize) -> CsrMatrix {
    five_point_stencil(nx, ny, |_, _| (4.0, -1.0, -1.0, -1.0, -1.0))
}

/// [`poisson_2d`] padded to at least four stored entries per row
/// ([`pad_rows_to_min_entries`]) — the canonical test/benchmark operator of
/// this repository, assembled in one place so every experiment, benchmark,
/// and example protects exactly the same matrix.  Four entries per row is
/// the floor the CRC32C element scheme needs to spread its 32-bit checksum
/// over 8 spare bits per element.
pub fn poisson_2d_padded(nx: usize, ny: usize) -> CsrMatrix {
    pad_rows_to_min_entries(&poisson_2d(nx, ny), 4)
}

/// A general five-point-stencil operator: for each grid point `(i, j)` the
/// callback returns `(centre, west, east, south, north)` coefficients.
/// Entries that would fall outside the grid are dropped (Dirichlet
/// truncation), exactly like TeaLeaf's interior-chunk assembly.
pub fn five_point_stencil(
    nx: usize,
    ny: usize,
    mut coeff: impl FnMut(usize, usize) -> (f64, f64, f64, f64, f64),
) -> CsrMatrix {
    let n = nx * ny;
    let mut coo = CooMatrix::with_capacity(n, n, 5 * n);
    for j in 0..ny {
        for i in 0..nx {
            let row = j * nx + i;
            let (c, w, e, s, nth) = coeff(i, j);
            if j > 0 {
                coo.push(row, row - nx, s);
            }
            if i > 0 {
                coo.push(row, row - 1, w);
            }
            coo.push(row, row, c);
            if i + 1 < nx {
                coo.push(row, row + 1, e);
            }
            if j + 1 < ny {
                coo.push(row, row + nx, nth);
            }
        }
    }
    coo.to_csr()
        .expect("stencil assembly is structurally valid")
}

/// Pads every row of `matrix` to at least `min_entries` stored entries by
/// adding explicit zero-valued entries at unused columns.
///
/// The CRC32C element-protection scheme of the ABFT layer distributes its
/// 32-bit checksum over 8 spare bits per element and therefore needs at least
/// four entries per row.  TeaLeaf's five-point-stencil assembly always stores
/// five entries per row; for general matrices (e.g. the plain Poisson
/// operator whose corner rows only have three neighbours) this helper
/// restores that property without changing the operator.
///
/// # Panics
/// Panics if the matrix has fewer columns than `min_entries`.
pub fn pad_rows_to_min_entries(matrix: &CsrMatrix, min_entries: usize) -> CsrMatrix {
    assert!(
        matrix.cols() >= min_entries,
        "cannot pad rows of a matrix with fewer than {min_entries} columns"
    );
    let mut coo =
        CooMatrix::with_capacity(matrix.rows(), matrix.cols(), matrix.nnz() + matrix.rows());
    for row in 0..matrix.rows() {
        let existing: Vec<u32> = matrix.row_entries(row).map(|(c, _)| c).collect();
        for (c, v) in matrix.row_entries(row) {
            coo.push(row, c as usize, v);
        }
        let mut missing = min_entries.saturating_sub(existing.len());
        let mut candidate = 0usize;
        while missing > 0 {
            if !existing.contains(&(candidate as u32)) {
                coo.push(row, candidate, 0.0);
                missing -= 1;
            }
            candidate += 1;
        }
    }
    coo.to_csr().expect("padding preserves validity")
}

/// Symmetric positive-definite tridiagonal matrix with the given diagonal and
/// off-diagonal values.
pub fn tridiagonal(n: usize, diag: f64, off: f64) -> CsrMatrix {
    let mut coo = CooMatrix::with_capacity(n, n, 3 * n);
    for i in 0..n {
        if i > 0 {
            coo.push(i, i - 1, off);
        }
        coo.push(i, i, diag);
        if i + 1 < n {
            coo.push(i, i + 1, off);
        }
    }
    coo.to_csr().expect("tridiagonal assembly is valid")
}

/// A random sparse symmetric diagonally-dominant matrix, useful for property
/// tests: `extra` off-diagonal entries are scattered with a simple
/// multiplicative-congruential generator (deterministic for a given seed),
/// then the diagonal is set to the absolute row sum plus one so the matrix is
/// strictly diagonally dominant (hence SPD).
pub fn random_spd(n: usize, extra: usize, seed: u64) -> CsrMatrix {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut coo = CooMatrix::with_capacity(n, n, 2 * extra + n);
    let mut off_diagonal = vec![0.0f64; n];
    let mut pairs = std::collections::BTreeSet::new();
    for _ in 0..extra {
        let i = (next() % n as u64) as usize;
        let j = (next() % n as u64) as usize;
        if i == j || !pairs.insert((i.min(j), i.max(j))) {
            continue;
        }
        let v = ((next() % 1000) as f64 / 1000.0) - 0.5;
        coo.push(i, j, v);
        coo.push(j, i, v);
        off_diagonal[i] += v.abs();
        off_diagonal[j] += v.abs();
    }
    for (i, &o) in off_diagonal.iter().enumerate() {
        coo.push(i, i, o + 1.0);
    }
    coo.to_csr().expect("random SPD assembly is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Vector;

    #[test]
    fn poisson_structure() {
        let a = poisson_2d(3, 3);
        assert_eq!(a.rows(), 9);
        assert_eq!(a.cols(), 9);
        // Corner rows have 3 entries, edge rows 4, the centre row 5.
        assert_eq!(a.row_range(0).len(), 3);
        assert_eq!(a.row_range(1).len(), 4);
        assert_eq!(a.row_range(4).len(), 5);
        assert_eq!(a.nnz(), 9 + 2 * (2 * 3 * 2)); // diag + two neighbours per interior edge
        assert!(a.is_symmetric(0.0));
        assert_eq!(a.get(4, 4), 4.0);
        assert_eq!(a.get(4, 3), -1.0);
        assert_eq!(a.get(4, 7), -1.0);
        assert_eq!(a.get(4, 0), 0.0);
    }

    #[test]
    fn poisson_row_width_is_at_most_five() {
        let a = poisson_2d(8, 5);
        for row in 0..a.rows() {
            let w = a.row_range(row).len();
            assert!((3..=5).contains(&w));
        }
    }

    #[test]
    fn stencil_callback_receives_grid_coordinates() {
        let a = five_point_stencil(4, 3, |i, j| ((i + j) as f64 + 1.0, 0.5, 0.5, 0.5, 0.5));
        assert_eq!(a.get(0, 0), 1.0); // (0,0)
        assert_eq!(a.get(5, 5), 3.0); // (1,1)
        assert_eq!(a.get(11, 11), 6.0); // (3,2)
    }

    #[test]
    fn tridiagonal_spmv() {
        let a = tridiagonal(5, 2.0, -1.0);
        assert!(a.is_symmetric(0.0));
        let x = Vector::filled(5, 1.0);
        let mut y = Vector::zeros(5);
        a.spmv(&x, &mut y);
        assert_eq!(y.as_slice(), &[1.0, 0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn random_spd_is_symmetric_and_dominant() {
        let a = random_spd(40, 120, 42);
        assert!(a.is_symmetric(1e-12));
        for row in 0..a.rows() {
            let diag = a.get(row, row);
            let off: f64 = a
                .row_entries(row)
                .filter(|&(c, _)| c as usize != row)
                .map(|(_, v)| v.abs())
                .sum();
            assert!(diag > off, "row {row} not diagonally dominant");
        }
    }

    #[test]
    fn random_spd_is_deterministic_for_a_seed() {
        let a = random_spd(20, 50, 7);
        let b = random_spd(20, 50, 7);
        assert_eq!(a, b);
        let c = random_spd(20, 50, 8);
        assert_ne!(a, c);
    }
}
