//! Level-1 BLAS helpers shared by the solvers.
//!
//! These free functions operate on raw `&[f64]` slices so that both the
//! unprotected [`crate::Vector`] and the protected vector of `abft-core`
//! (which exposes its masked payload as a slice after decoding) can reuse
//! them.  Serial versions live here; parallel versions are in
//! [`crate::spmv`].

/// `y ← alpha * x + beta * y` (general vector update).
pub fn axpby(y: &mut [f64], alpha: f64, x: &[f64], beta: f64) {
    assert_eq!(y.len(), x.len(), "axpby: length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi = alpha * xi + beta * *yi;
    }
}

/// `z ← x - y` elementwise.
pub fn sub_into(z: &mut [f64], x: &[f64], y: &[f64]) {
    assert_eq!(z.len(), x.len());
    assert_eq!(z.len(), y.len());
    for ((zi, &xi), &yi) in z.iter_mut().zip(x).zip(y) {
        *zi = xi - yi;
    }
}

/// `z ← x ⊘ y` elementwise division (used by Jacobi preconditioning with a
/// diagonal stored as a vector).
pub fn div_into(z: &mut [f64], x: &[f64], y: &[f64]) {
    assert_eq!(z.len(), x.len());
    assert_eq!(z.len(), y.len());
    for ((zi, &xi), &yi) in z.iter_mut().zip(x).zip(y) {
        *zi = xi / yi;
    }
}

/// Sum of squared differences — convergence diagnostics.
pub fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Relative L2 error `‖a − b‖ / ‖b‖` (0 when both are zero).
pub fn relative_error(a: &[f64], b: &[f64]) -> f64 {
    let denom: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
    let num = squared_distance(a, b).sqrt();
    if denom == 0.0 {
        num
    } else {
        num / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axpby_general_update() {
        let mut y = vec![1.0, 2.0, 3.0];
        axpby(&mut y, 2.0, &[1.0, 1.0, 1.0], 0.5);
        assert_eq!(y, vec![2.5, 3.0, 3.5]);
    }

    #[test]
    fn sub_and_div() {
        let mut z = vec![0.0; 3];
        sub_into(&mut z, &[5.0, 6.0, 7.0], &[1.0, 2.0, 3.0]);
        assert_eq!(z, vec![4.0, 4.0, 4.0]);
        let mut q = vec![0.0; 3];
        div_into(&mut q, &z, &[2.0, 4.0, 8.0]);
        assert_eq!(q, vec![2.0, 1.0, 0.5]);
    }

    #[test]
    fn distances() {
        assert_eq!(squared_distance(&[1.0, 2.0], &[1.0, 4.0]), 4.0);
        assert!((relative_error(&[1.0, 0.0], &[0.0, 0.0]) - 1.0).abs() < 1e-15);
        assert!(relative_error(&[2.0, 0.0], &[2.0, 0.0]) < 1e-15);
        assert!((relative_error(&[2.2, 0.0], &[2.0, 0.0]) - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn axpby_length_mismatch_panics() {
        axpby(&mut [0.0], 1.0, &[0.0, 1.0], 1.0);
    }
}
