//! Coordinate-format (COO) sparse matrices.
//!
//! COO is the natural assembly format: entries are pushed in any order as
//! `(row, col, value)` triplets and converted to CSR once assembly is
//! complete.  The paper's earlier work ([McIntosh-Smith et al.]) protected
//! COO as well as CSR; here COO serves as the builder for CSR and as a
//! secondary format for tests.

use crate::{CsrMatrix, SparseError};

/// A sparse matrix under assembly, stored as coordinate triplets.
#[derive(Debug, Clone, Default)]
pub struct CooMatrix {
    rows: usize,
    cols: usize,
    entries: Vec<(u32, u32, f64)>,
}

impl CooMatrix {
    /// Creates an empty `rows × cols` matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        CooMatrix {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Creates an empty matrix with capacity for `nnz` entries.
    pub fn with_capacity(rows: usize, cols: usize, nnz: usize) -> Self {
        CooMatrix {
            rows,
            cols,
            entries: Vec::with_capacity(nnz),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored triplets (duplicates not yet merged).
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Adds `value` at `(row, col)`.  Duplicate coordinates are summed when
    /// the matrix is converted to CSR.
    ///
    /// # Panics
    /// Panics if the coordinates are out of bounds.
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.rows, "row {row} out of bounds ({})", self.rows);
        assert!(col < self.cols, "col {col} out of bounds ({})", self.cols);
        self.entries.push((row as u32, col as u32, value));
    }

    /// Converts to CSR, sorting by row then column and summing duplicates.
    pub fn to_csr(&self) -> Result<CsrMatrix, SparseError> {
        let mut entries = self.entries.clone();
        entries.sort_unstable_by_key(|&(r, c, _)| (r, c));

        let mut values = Vec::with_capacity(entries.len());
        let mut col_indices = Vec::with_capacity(entries.len());
        let mut row_pointer = vec![0u32; self.rows + 1];

        let mut iter = entries.into_iter().peekable();
        while let Some((r, c, mut v)) = iter.next() {
            while let Some(&(nr, nc, nv)) = iter.peek() {
                if nr == r && nc == c {
                    v += nv;
                    iter.next();
                } else {
                    break;
                }
            }
            values.push(v);
            col_indices.push(c);
            row_pointer[r as usize + 1] += 1;
        }
        for i in 0..self.rows {
            row_pointer[i + 1] += row_pointer[i];
        }
        CsrMatrix::try_new(self.rows, self.cols, values, col_indices, row_pointer)
    }

    /// Iterates the stored triplets.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.entries
            .iter()
            .map(|&(r, c, v)| (r as usize, c as usize, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembly_and_conversion() {
        let mut coo = CooMatrix::with_capacity(3, 3, 5);
        coo.push(2, 2, 4.0);
        coo.push(0, 0, 4.0);
        coo.push(1, 1, 4.0);
        coo.push(0, 1, 1.0);
        coo.push(1, 0, 1.0);
        assert_eq!(coo.nnz(), 5);
        assert_eq!(coo.rows(), 3);
        assert_eq!(coo.cols(), 3);

        let csr = coo.to_csr().unwrap();
        assert_eq!(csr.nnz(), 5);
        assert_eq!(csr.get(0, 0), 4.0);
        assert_eq!(csr.get(0, 1), 1.0);
        assert_eq!(csr.get(1, 0), 1.0);
        assert_eq!(csr.get(2, 2), 4.0);
        assert_eq!(csr.get(2, 0), 0.0);
    }

    #[test]
    fn duplicates_are_summed() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(0, 0, 2.5);
        coo.push(1, 1, 1.0);
        let csr = coo.to_csr().unwrap();
        assert_eq!(csr.nnz(), 2);
        assert_eq!(csr.get(0, 0), 3.5);
    }

    #[test]
    fn empty_rows_are_allowed() {
        let mut coo = CooMatrix::new(4, 4);
        coo.push(0, 0, 1.0);
        coo.push(3, 3, 2.0);
        let csr = coo.to_csr().unwrap();
        assert_eq!(csr.row_pointer(), &[0, 1, 1, 1, 2]);
    }

    #[test]
    fn iter_returns_pushed_triplets() {
        let mut coo = CooMatrix::new(2, 3);
        coo.push(1, 2, 5.0);
        let triplets: Vec<_> = coo.iter().collect();
        assert_eq!(triplets, vec![(1, 2, 5.0)]);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_push_panics() {
        CooMatrix::new(2, 2).push(2, 0, 1.0);
    }

    #[test]
    fn empty_matrix_converts() {
        let coo = CooMatrix::new(3, 3);
        let csr = coo.to_csr().unwrap();
        assert_eq!(csr.nnz(), 0);
        assert_eq!(csr.row_pointer(), &[0, 0, 0, 0]);
    }
}
