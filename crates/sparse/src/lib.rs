//! # abft-sparse — sparse linear algebra substrate
//!
//! This crate provides the unprotected sparse-matrix and dense-vector
//! building blocks that the ABFT schemes of the paper wrap: the Compressed
//! Sparse Row (CSR) format with 32-bit indices, a coordinate (COO) builder
//! format, dense `f64` vectors with the BLAS-1 kernels an iterative solver
//! needs, sparse matrix–vector products (serial and Rayon-parallel), and
//! matrix generators for the five-point-stencil systems TeaLeaf assembles.
//!
//! Everything here is *also* the baseline against which the protected
//! structures of `abft-core` are benchmarked (the 0 % overhead reference of
//! Figures 4–9).

pub mod blas1;
pub mod builders;
pub mod coo;
pub mod csr;
pub mod matrix_market;
pub mod spmv;
pub mod vector;

pub use coo::CooMatrix;
pub use csr::CsrMatrix;
pub use matrix_market::{load_matrix_market, parse_matrix_market_str, MatrixMarketError};
pub use vector::Vector;

/// Errors produced when constructing or validating sparse matrices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparseError {
    /// A column index was out of range for the matrix width.
    ColumnOutOfBounds { row: usize, col: u32, cols: usize },
    /// The row-pointer array is not monotonically non-decreasing or has the
    /// wrong length / final value.
    MalformedRowPointer(String),
    /// Array lengths are inconsistent (values vs column indices).
    LengthMismatch { values: usize, columns: usize },
    /// The matrix dimensions exceed what 32-bit indices can address.
    TooLarge(String),
}

impl std::fmt::Display for SparseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SparseError::ColumnOutOfBounds { row, col, cols } => write!(
                f,
                "column index {col} out of bounds in row {row} (matrix has {cols} columns)"
            ),
            SparseError::MalformedRowPointer(msg) => write!(f, "malformed row pointer: {msg}"),
            SparseError::LengthMismatch { values, columns } => write!(
                f,
                "values/columns length mismatch: {values} values vs {columns} column indices"
            ),
            SparseError::TooLarge(msg) => write!(f, "matrix too large for 32-bit indices: {msg}"),
        }
    }
}

impl std::error::Error for SparseError {}
