//! Compressed Sparse Row matrices with 32-bit indices.
//!
//! The CSR layout is exactly the one described in §V-B of the paper: an
//! `m × n` matrix is stored as
//!
//! * `values` — the `NNZ` non-zero `f64` entries in row-major order (the
//!   paper's *v* vector),
//! * `col_indices` — the `NNZ` 32-bit column indices (the *y* vector), and
//! * `row_pointer` — `m + 1` 32-bit offsets into `values`, one per row plus
//!   a final entry equal to `NNZ` (the *x* vector).
//!
//! Keeping the indices at 32 bits is what gives the ABFT schemes their spare
//! bits: any matrix with fewer than 2³¹ columns leaves the top bit(s) of each
//! index unused, and those bits are where `abft-core` hides the redundancy.

use crate::{SparseError, Vector};

/// A sparse matrix in CSR format with `u32` indices and `f64` values.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    values: Vec<f64>,
    col_indices: Vec<u32>,
    row_pointer: Vec<u32>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from raw parts, validating the structural
    /// invariants (monotone row pointer, in-range column indices, matching
    /// lengths, 32-bit addressability).
    pub fn try_new(
        rows: usize,
        cols: usize,
        values: Vec<f64>,
        col_indices: Vec<u32>,
        row_pointer: Vec<u32>,
    ) -> Result<Self, SparseError> {
        if cols > u32::MAX as usize || rows > u32::MAX as usize {
            return Err(SparseError::TooLarge(format!("{rows} x {cols}")));
        }
        if values.len() > u32::MAX as usize {
            return Err(SparseError::TooLarge(format!("{} non-zeros", values.len())));
        }
        if values.len() != col_indices.len() {
            return Err(SparseError::LengthMismatch {
                values: values.len(),
                columns: col_indices.len(),
            });
        }
        if row_pointer.len() != rows + 1 {
            return Err(SparseError::MalformedRowPointer(format!(
                "expected {} entries, got {}",
                rows + 1,
                row_pointer.len()
            )));
        }
        if row_pointer.first().copied().unwrap_or(0) != 0 {
            return Err(SparseError::MalformedRowPointer(
                "first entry must be 0".into(),
            ));
        }
        if *row_pointer.last().unwrap() as usize != values.len() {
            return Err(SparseError::MalformedRowPointer(format!(
                "last entry {} does not equal NNZ {}",
                row_pointer.last().unwrap(),
                values.len()
            )));
        }
        if row_pointer.windows(2).any(|w| w[0] > w[1]) {
            return Err(SparseError::MalformedRowPointer(
                "entries must be non-decreasing".into(),
            ));
        }
        for (row, range) in row_pointer.windows(2).enumerate() {
            for &c in &col_indices[range[0] as usize..range[1] as usize] {
                if c as usize >= cols {
                    return Err(SparseError::ColumnOutOfBounds { row, col: c, cols });
                }
            }
        }
        Ok(CsrMatrix {
            rows,
            cols,
            values,
            col_indices,
            row_pointer,
        })
    }

    /// Builds a CSR matrix from raw parts without validation.
    ///
    /// # Panics
    /// Debug builds assert the same invariants `try_new` checks.
    pub fn from_raw(
        rows: usize,
        cols: usize,
        values: Vec<f64>,
        col_indices: Vec<u32>,
        row_pointer: Vec<u32>,
    ) -> Self {
        debug_assert!(Self::try_new(
            rows,
            cols,
            values.clone(),
            col_indices.clone(),
            row_pointer.clone()
        )
        .is_ok());
        CsrMatrix {
            rows,
            cols,
            values,
            col_indices,
            row_pointer,
        }
    }

    /// An `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        CsrMatrix {
            rows: n,
            cols: n,
            values: vec![1.0; n],
            col_indices: (0..n as u32).collect(),
            row_pointer: (0..=n as u32).collect(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zero entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The non-zero values (the paper's *v* vector).
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The column indices (the paper's *y* vector).
    #[inline]
    pub fn col_indices(&self) -> &[u32] {
        &self.col_indices
    }

    /// The row pointer (the paper's *x* vector).
    #[inline]
    pub fn row_pointer(&self) -> &[u32] {
        &self.row_pointer
    }

    /// Mutable access to the values (used by matrix assembly).
    #[inline]
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// The half-open range of non-zero positions belonging to `row`.
    #[inline]
    pub fn row_range(&self, row: usize) -> std::ops::Range<usize> {
        self.row_pointer[row] as usize..self.row_pointer[row + 1] as usize
    }

    /// Iterates `(column, value)` pairs of one row.
    pub fn row_entries(&self, row: usize) -> impl Iterator<Item = (u32, f64)> + '_ {
        let range = self.row_range(row);
        self.col_indices[range.clone()]
            .iter()
            .copied()
            .zip(self.values[range].iter().copied())
    }

    /// Looks up entry `(row, col)`, returning 0.0 when it is not stored.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        self.row_entries(row)
            .find(|&(c, _)| c as usize == col)
            .map(|(_, v)| v)
            .unwrap_or(0.0)
    }

    /// Dense matrix–vector product `y = A x` (serial).  See [`crate::spmv`]
    /// for the parallel version and for operating on raw slices.
    pub fn spmv(&self, x: &Vector, y: &mut Vector) {
        crate::spmv::spmv_serial(self, x.as_slice(), y.as_mut_slice());
    }

    /// Extracts the diagonal as a vector (zero where no diagonal entry is
    /// stored); used by the Jacobi-preconditioned solvers.
    pub fn diagonal(&self) -> Vector {
        let mut d = Vector::zeros(self.rows.min(self.cols));
        for row in 0..d.len() {
            d[row] = self.get(row, row);
        }
        d
    }

    /// True when the matrix is structurally and numerically symmetric to
    /// within `tol` (only intended for test-sized matrices).
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for row in 0..self.rows {
            for (col, v) in self.row_entries(row) {
                if (self.get(col as usize, row) - v).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Consumes the matrix and returns `(rows, cols, values, col_indices,
    /// row_pointer)`.
    pub fn into_raw(self) -> (usize, usize, Vec<f64>, Vec<u32>, Vec<u32>) {
        (
            self.rows,
            self.cols,
            self.values,
            self.col_indices,
            self.row_pointer,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 3x3 example:
    /// [ 4 1 0 ]
    /// [ 1 4 1 ]
    /// [ 0 1 4 ]
    fn tridiag3() -> CsrMatrix {
        CsrMatrix::try_new(
            3,
            3,
            vec![4.0, 1.0, 1.0, 4.0, 1.0, 1.0, 4.0],
            vec![0, 1, 0, 1, 2, 1, 2],
            vec![0, 2, 5, 7],
        )
        .unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let m = tridiag3();
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.nnz(), 7);
        assert_eq!(m.get(0, 0), 4.0);
        assert_eq!(m.get(0, 2), 0.0);
        assert_eq!(m.get(2, 1), 1.0);
        assert_eq!(m.row_range(1), 2..5);
        let row1: Vec<_> = m.row_entries(1).collect();
        assert_eq!(row1, vec![(0, 1.0), (1, 4.0), (2, 1.0)]);
        assert_eq!(m.diagonal().as_slice(), &[4.0, 4.0, 4.0]);
        assert!(m.is_symmetric(0.0));
    }

    #[test]
    fn identity_matrix() {
        let id = CsrMatrix::identity(4);
        assert_eq!(id.nnz(), 4);
        let x = Vector::from_vec(vec![1.0, 2.0, 3.0, 4.0]);
        let mut y = Vector::zeros(4);
        id.spmv(&x, &mut y);
        assert_eq!(y, x);
    }

    #[test]
    fn spmv_known_answer() {
        let m = tridiag3();
        let x = Vector::from_vec(vec![1.0, 2.0, 3.0]);
        let mut y = Vector::zeros(3);
        m.spmv(&x, &mut y);
        assert_eq!(y.as_slice(), &[6.0, 12.0, 14.0]);
    }

    #[test]
    fn validation_rejects_bad_structures() {
        // Length mismatch
        assert!(matches!(
            CsrMatrix::try_new(1, 1, vec![1.0], vec![0, 0], vec![0, 1]),
            Err(SparseError::LengthMismatch { .. })
        ));
        // Row pointer wrong length
        assert!(matches!(
            CsrMatrix::try_new(2, 2, vec![1.0], vec![0], vec![0, 1]),
            Err(SparseError::MalformedRowPointer(_))
        ));
        // Row pointer not starting at zero
        assert!(matches!(
            CsrMatrix::try_new(1, 2, vec![1.0], vec![0], vec![1, 1]),
            Err(SparseError::MalformedRowPointer(_))
        ));
        // Row pointer last != nnz
        assert!(matches!(
            CsrMatrix::try_new(1, 2, vec![1.0], vec![0], vec![0, 2]),
            Err(SparseError::MalformedRowPointer(_))
        ));
        // Decreasing row pointer
        assert!(matches!(
            CsrMatrix::try_new(2, 2, vec![1.0, 1.0], vec![0, 1], vec![0, 2, 2, 2]),
            Err(SparseError::MalformedRowPointer(_))
        ));
        // Column out of bounds
        assert!(matches!(
            CsrMatrix::try_new(1, 2, vec![1.0], vec![5], vec![0, 1]),
            Err(SparseError::ColumnOutOfBounds { .. })
        ));
    }

    #[test]
    fn error_display_messages() {
        let e = CsrMatrix::try_new(1, 2, vec![1.0], vec![5], vec![0, 1]).unwrap_err();
        assert!(e.to_string().contains("out of bounds"));
        let e = CsrMatrix::try_new(1, 1, vec![1.0], vec![0, 0], vec![0, 1]).unwrap_err();
        assert!(e.to_string().contains("mismatch"));
    }

    #[test]
    fn into_raw_roundtrip() {
        let m = tridiag3();
        let (r, c, v, ci, rp) = m.clone().into_raw();
        let rebuilt = CsrMatrix::try_new(r, c, v, ci, rp).unwrap();
        assert_eq!(rebuilt, m);
    }

    #[test]
    fn non_symmetric_detected() {
        let m = CsrMatrix::try_new(2, 2, vec![1.0, 2.0], vec![1, 1], vec![0, 1, 2]).unwrap();
        assert!(!m.is_symmetric(1e-12));
        let rect = CsrMatrix::try_new(1, 2, vec![1.0], vec![0], vec![0, 1]).unwrap();
        assert!(!rect.is_symmetric(1e-12));
    }
}
