//! Detached job submission over the sharded runtime.
//!
//! [`submit`] hands a closure to the shared worker pool
//! ([`rayon::spawn`]) and returns a [`Ticket`] the caller can block on for
//! the result.  Panics inside the job are captured and re-thrown at
//! [`Ticket::wait`], so a crashing job cannot take a pool worker (or a
//! sibling job) down with it.
//!
//! Jobs run with the pool's worker flag set, so protected kernels invoked
//! inside a job inline their parallel regions serially — results are
//! bitwise independent of how many workers the pool happens to have, which
//! is what makes the serving layer's determinism guarantees possible.
//!
//! **Caveat:** never block on a [`Ticket`] from *inside* a pool job.  A
//! waiting job occupies its worker, and if every worker waits on tickets
//! whose jobs are still queued behind them, the pool deadlocks.  Submit
//! from ordinary threads (the queue's `drain`, a test, `main`) and wait
//! there.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};

struct Slot<T> {
    result: Mutex<Option<std::thread::Result<T>>>,
    ready: Condvar,
}

/// A claim on the result of a job submitted with [`submit`].
pub struct Ticket<T> {
    slot: Arc<Slot<T>>,
}

impl<T> std::fmt::Debug for Ticket<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket").finish_non_exhaustive()
    }
}

impl<T> Ticket<T> {
    /// Blocks until the job completes and returns its result.
    ///
    /// If the job panicked, the panic is resumed on the calling thread —
    /// the same contract as `std::thread::JoinHandle::join().unwrap()`.
    pub fn wait(self) -> T {
        let mut guard = self.slot.result.lock().expect("ticket slot poisoned");
        while guard.is_none() {
            guard = self.slot.ready.wait(guard).expect("ticket slot poisoned");
        }
        match guard.take().expect("checked above") {
            Ok(value) => value,
            Err(payload) => resume_unwind(payload),
        }
    }

    /// Returns the result if the job has already completed, without
    /// blocking; `None` while it is still running.
    pub fn try_wait(&self) -> Option<std::thread::Result<T>> {
        self.slot
            .result
            .lock()
            .expect("ticket slot poisoned")
            .take()
    }
}

/// Submits a job to the shared worker pool and returns a [`Ticket`] for
/// its result.  The job starts as soon as a worker frees up; submission
/// never blocks.
pub fn submit<T, F>(job: F) -> Ticket<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let slot = Arc::new(Slot {
        result: Mutex::new(None),
        ready: Condvar::new(),
    });
    let shared = Arc::clone(&slot);
    rayon::spawn(move || {
        let outcome = catch_unwind(AssertUnwindSafe(job));
        *shared.result.lock().expect("ticket slot poisoned") = Some(outcome);
        shared.ready.notify_all();
    });
    Ticket { slot }
}

/// The number of execution lanes the shared pool currently targets — the
/// natural shard count for per-worker accumulators (e.g. the streaming fault
/// campaigns stripe their outcome counters `job % workers()`).  Respects
/// `rayon::set_worker_limit`, so tests can pin it.
pub fn workers() -> usize {
    rayon::effective_workers().max(1)
}

/// Submits one *wave* of jobs and blocks until every job in the wave has
/// completed, returning the results in submission order.  This is the batch
/// boundary the streaming campaign engine evaluates its stop rule at: after
/// `submit_batch` returns, every outcome of the wave is visible (the
/// [`Ticket`] handshake's mutex release/acquire orders the jobs' relaxed
/// counter updates before the caller's reads), so a sequential-test peek at
/// the running counts is race-free.  A panicking job resurfaces here, like
/// [`Ticket::wait`].  Never call this from *inside* a pool job — waiting on
/// pool work from a pool worker can deadlock.
pub fn submit_batch<T, F, I>(jobs: I) -> Vec<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
    I: IntoIterator<Item = F>,
{
    let tickets: Vec<Ticket<T>> = jobs.into_iter().map(submit).collect();
    tickets.into_iter().map(Ticket::wait).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn submit_batch_preserves_submission_order_and_barriers() {
        let results = submit_batch((0..64).map(|i| move || i * 3));
        assert_eq!(results, (0..64).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn submitted_jobs_run_and_deliver_results() {
        let tickets: Vec<Ticket<usize>> = (0..32).map(|i| submit(move || i * i)).collect();
        let results: Vec<usize> = tickets.into_iter().map(Ticket::wait).collect();
        assert_eq!(results, (0..32).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn jobs_overlap_rather_than_serialise() {
        // With at least two pool workers, two jobs that each wait for the
        // other's side effect can only finish if they run concurrently.
        let flag = Arc::new(AtomicUsize::new(0));
        let a = {
            let flag = Arc::clone(&flag);
            submit(move || {
                flag.fetch_add(1, Ordering::SeqCst);
                while flag.load(Ordering::SeqCst) < 2 {
                    std::thread::yield_now();
                }
            })
        };
        let b = {
            let flag = Arc::clone(&flag);
            submit(move || {
                flag.fetch_add(1, Ordering::SeqCst);
                while flag.load(Ordering::SeqCst) < 2 {
                    std::thread::yield_now();
                }
            })
        };
        a.wait();
        b.wait();
    }

    #[test]
    fn panics_resurface_at_wait_not_in_the_pool() {
        let ticket: Ticket<()> = submit(|| panic!("job exploded"));
        let err = catch_unwind(AssertUnwindSafe(|| ticket.wait())).unwrap_err();
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "job exploded");
        // The pool survives: the next job still runs.
        assert_eq!(submit(|| 7usize).wait(), 7);
    }

    #[test]
    fn try_wait_is_non_blocking() {
        let gate = Arc::new(AtomicUsize::new(0));
        let ticket = {
            let gate = Arc::clone(&gate);
            submit(move || {
                while gate.load(Ordering::SeqCst) == 0 {
                    std::thread::yield_now();
                }
                42usize
            })
        };
        assert!(ticket.try_wait().is_none());
        gate.store(1, Ordering::SeqCst);
        loop {
            if let Some(result) = ticket.try_wait() {
                assert_eq!(result.unwrap(), 42);
                break;
            }
            std::thread::yield_now();
        }
    }
}
