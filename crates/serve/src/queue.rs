//! The multi-tenant solve queue.
//!
//! A [`SolveQueue`] accepts solve jobs against registered (already
//! encoded) protected matrices, batches jobs that share a matrix and a
//! solver configuration into multi-RHS panels of up to
//! [`MAX_PANEL_WIDTH`] columns, and dispatches each panel as one detached
//! job on the shared worker pool.  Inside a panel the block-CG engine
//! ([`block_cg_panel`]) verifies each matrix codeword group **once per
//! iteration** no matter how many tenants ride the panel, so the per-job
//! matrix verify cost shrinks as `1/k` — the serving-layer payoff of the
//! paper's embedded-ECC design.
//!
//! ## Isolation
//!
//! Every job gets its own [`FaultLog`].  Vector-side checks and faults
//! land only in the owning job's log; the shared matrix traversal is
//! recorded once in a scratch log and its per-iteration delta is
//! attributed to every column that rode that iteration — each tenant's
//! snapshot reads exactly as if it had solved alone.  A detected but
//! uncorrectable fault in one tenant's data poisons only that tenant's
//! job ([`Termination::Fault`]); the other columns keep iterating.
//!
//! ## Determinism
//!
//! Panel composition never changes results: each column's arithmetic is
//! bitwise identical to a standalone solve, and jobs run with the pool's
//! worker flag set so nested kernels inline serially.  Submitting the
//! same jobs in a different order, or running with a different worker
//! limit, yields bitwise-identical solutions and identical per-tenant
//! fault snapshots.
//!
//! ## Preconditioned jobs
//!
//! A job carrying a preconditioner choice ([`JobSpec::with_preconditioner`])
//! runs the flexible inner-outer FT-PCG solver instead of plain CG.  Such
//! jobs batch by (matrix, config, preconditioner kind **and** reliability
//! policy): the panel factors the preconditioner once and every column
//! reuses the factors, but each column's solve is sequential and
//! standalone-equivalent — bitwise identical to
//! [`SolveSpec`](abft_solvers::SolveSpec) against the same encoded matrix,
//! at any worker count.
//!
//! ## Graceful degradation
//!
//! With a non-zero [`SolveQueue::with_retry_budget`], a job whose column is
//! poisoned by an unrecoverable fault is not surfaced immediately: its fault
//! accounting is folded into the tenant's log right away, and the job is
//! requeued as a fresh **single-RHS** job (its own panel, so a flaky tenant
//! cannot poison neighbours twice) with exponential backoff measured in
//! drains — attempt `k` becomes eligible `2^k` drains after it faulted.  The
//! same [`JobId`], cancellation token and submission instant carry over, so
//! deadlines keep burning across attempts.  Neighbouring columns of the
//! faulted panel are untouched: their solutions and fault snapshots are
//! bit-for-bit those of a fault-free drain.

use crate::pool::{submit, Ticket};
use abft_core::{
    AnyProtectedMatrix, EccScheme, FaultLog, FaultLogSnapshot, ProtectedMatrix, ProtectionConfig,
    StorageTier, MAX_PANEL_WIDTH,
};
use abft_solvers::backends::{FullyProtected, MatrixProtected};
use abft_solvers::{
    block_cg_panel, ft_pcg, FaultContext, LinearOperator, PrecondKind, Preconditioner,
    ReliabilityPolicy, SolveStatus, SolverConfig, SolverError, Termination,
};
use abft_sparse::CsrMatrix;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Handle to a matrix registered with a [`SolveQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MatrixId(usize);

/// Handle to a submitted job, in submission order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(usize);

impl JobId {
    /// Position of this job in submission order.
    pub fn index(self) -> usize {
        self.0
    }
}

/// One solve request: which tenant, which matrix, which right-hand side,
/// and the knobs bounding how long the queue may work on it.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Tenant the job (and its fault accounting) belongs to.
    pub tenant: String,
    /// Matrix to solve against, from [`SolveQueue::register`].
    pub matrix: MatrixId,
    /// Right-hand side, plain values.
    pub rhs: Vec<f64>,
    /// Stopping criteria.  Jobs are only batched together when their
    /// configs agree, so the panel honours every member's criteria.
    pub config: SolverConfig,
    /// Wall-clock budget measured from submission; checked at iteration
    /// boundaries ([`Termination::DeadlineExpired`]).
    pub deadline: Option<Duration>,
    /// Per-job iteration budget below the config-wide cap
    /// ([`Termination::IterationBudget`]).
    pub budget: Option<usize>,
    /// Optional preconditioner: the job runs the flexible inner-outer
    /// FT-PCG solver instead of plain CG, with the inner apply in the tier
    /// the [`ReliabilityPolicy`] selects.  Jobs batch together only when
    /// their preconditioner choice (kind *and* policy) agrees, so a panel
    /// factors its preconditioner once and every column reuses it.
    pub precond: Option<(PrecondKind, ReliabilityPolicy)>,
}

impl JobSpec {
    /// A job with default stopping criteria and no deadline or budget.
    pub fn new(tenant: impl Into<String>, matrix: MatrixId, rhs: Vec<f64>) -> Self {
        JobSpec {
            tenant: tenant.into(),
            matrix,
            rhs,
            config: SolverConfig::default(),
            deadline: None,
            budget: None,
            precond: None,
        }
    }

    /// Builder-style setter for the stopping criteria.
    pub fn with_config(mut self, config: SolverConfig) -> Self {
        self.config = config;
        self
    }

    /// Builder-style setter for the wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Builder-style setter for the iteration budget.
    pub fn with_budget(mut self, budget: usize) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Builder-style setter for the preconditioner: run this job through
    /// the flexible FT-PCG solver with `kind` built in the tier `policy`
    /// selects ([`ReliabilityPolicy::Selective`] = unchecked inner apply,
    /// [`ReliabilityPolicy::Uniform`] = protected factors).
    pub fn with_preconditioner(mut self, kind: PrecondKind, policy: ReliabilityPolicy) -> Self {
        self.precond = Some((kind, policy));
        self
    }
}

/// Cancellation handle returned by [`SolveQueue::submit`].
#[derive(Debug, Clone)]
pub struct JobHandle {
    id: JobId,
    cancel: Arc<AtomicBool>,
}

impl JobHandle {
    /// The job's id (its position in submission order).
    pub fn id(&self) -> JobId {
        self.id
    }

    /// Requests cooperative cancellation.  The solver observes the token
    /// at its next iteration boundary and stops that job (and only that
    /// job) with [`Termination::Cancelled`]; the partial solution is still
    /// decoded and returned.
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }
}

/// What the queue produced for one job.
#[derive(Debug)]
pub struct JobOutcome {
    /// The job this outcome answers.
    pub id: JobId,
    /// Tenant the job belonged to.
    pub tenant: String,
    /// Decoded solution — the converged answer, or the best partial
    /// iterate for a cancelled / deadline-expired / budget-capped job.
    /// `None` when the job was poisoned by a fault.
    pub solution: Option<Vec<f64>>,
    /// Residual history and iteration count.
    pub status: SolveStatus,
    /// Why the job stopped.
    pub termination: Termination,
    /// The fault that poisoned the job, when `termination` is
    /// [`Termination::Fault`].
    pub error: Option<SolverError>,
    /// This job's integrity-check activity: its own vector-side checks
    /// plus its attributed share of the panel's matrix traversals (the
    /// same totals a standalone solve would report).
    pub faults: FaultLogSnapshot,
    /// Width of the panel the job was batched into.
    pub panel_width: usize,
    /// How many earlier attempts of this job faulted and were requeued
    /// under the queue's retry budget (`0` = answered on the first try).
    pub attempts: u32,
}

struct PendingJob {
    id: JobId,
    spec: JobSpec,
    cancel: Arc<AtomicBool>,
    submitted: Instant,
    /// Completed attempts that ended in an unrecoverable fault.
    attempts: u32,
    /// Drain counter value at which this job becomes eligible — the
    /// exponential-backoff clock, measured in drains rather than wall time
    /// so retry schedules are deterministic.
    earliest_drain: u64,
    /// Requeued jobs run in a panel of their own: a column that already
    /// faulted once must not share a traversal with healthy tenants.
    solo: bool,
}

/// Per-column input to a panel solve, detached from the queue so the
/// closure owns everything it touches.
struct PanelColumn {
    id: JobId,
    tenant: String,
    rhs: Vec<f64>,
    budget: Option<usize>,
    cancel: Arc<AtomicBool>,
    deadline: Option<Duration>,
    submitted: Instant,
    attempts: u32,
}

struct ColumnResult {
    id: JobId,
    tenant: String,
    solution: Option<Vec<f64>>,
    status: SolveStatus,
    termination: Termination,
    error: Option<SolverError>,
    faults: FaultLogSnapshot,
    panel_width: usize,
    attempts: u32,
    /// The original right-hand side, handed back only for faulted columns
    /// so the queue can requeue the job without keeping a second copy.
    rhs: Option<Vec<f64>>,
}

/// Panel grouping key: (matrix id, config hash halves, preconditioner
/// discriminant, solo marker) — jobs share a panel iff their keys are
/// equal.
type PanelKey = (usize, usize, u64, u64, u64);

/// Stable discriminant of a job's preconditioner choice for panel keys:
/// `0` = unpreconditioned, otherwise [`PrecondKind::key`] shifted to make
/// room for the reliability-policy bit (kind keys start at 1, so every
/// preconditioned job maps to a non-zero value).
fn precond_key(precond: Option<(PrecondKind, ReliabilityPolicy)>) -> u64 {
    match precond {
        None => 0,
        Some((kind, policy)) => {
            let policy_bit = match policy {
                ReliabilityPolicy::Uniform => 0,
                ReliabilityPolicy::Selective => 1,
            };
            (kind.key() << 1) | policy_bit
        }
    }
}

/// The serving front door: register matrices once, submit jobs from many
/// tenants, drain them in batched panels.
pub struct SolveQueue {
    matrices: Vec<Arc<AnyProtectedMatrix>>,
    pending: Vec<PendingJob>,
    next_job: usize,
    max_width: usize,
    tenant_logs: HashMap<String, FaultLog>,
    matrix_activity: FaultLog,
    /// Drains performed so far — the clock the retry backoff counts in.
    drain_count: u64,
    /// Fault retries allowed per job; `0` surfaces faults immediately.
    retry_budget: u32,
}

impl std::fmt::Debug for SolveQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolveQueue")
            .field("matrices", &self.matrices.len())
            .field("pending", &self.pending.len())
            .field("max_width", &self.max_width)
            .finish()
    }
}

impl SolveQueue {
    /// Creates a queue batching up to `max_width` jobs per panel (clamped
    /// to `1..=`[`MAX_PANEL_WIDTH`]).
    pub fn new(max_width: usize) -> Self {
        SolveQueue {
            matrices: Vec::new(),
            pending: Vec::new(),
            next_job: 0,
            max_width: max_width.clamp(1, MAX_PANEL_WIDTH),
            tenant_logs: HashMap::new(),
            matrix_activity: FaultLog::new(),
            drain_count: 0,
            retry_budget: 0,
        }
    }

    /// Builder-style setter for the per-job fault retry budget.
    ///
    /// With `budget > 0`, a job poisoned by an unrecoverable fault is
    /// requeued (up to `budget` times) as a solo single-RHS job instead of
    /// being returned — see the module-level *Graceful degradation* notes.
    /// The default of `0` keeps the historical fail-fast behaviour.
    pub fn with_retry_budget(mut self, budget: u32) -> Self {
        self.retry_budget = budget;
        self
    }

    /// The panel width cap this queue batches to.
    pub fn max_width(&self) -> usize {
        self.max_width
    }

    /// Fault retries allowed per job before an outcome is surfaced.
    pub fn retry_budget(&self) -> u32 {
        self.retry_budget
    }

    /// Registers a protected matrix for subsequent jobs.
    ///
    /// This is the one registration door: it accepts any concrete tier
    /// (a [`ProtectedCsr`](abft_core::ProtectedCsr), a
    /// [`ProtectedCoo`](abft_core::ProtectedCoo), a
    /// [`ProtectedBlockedCsr`](abft_core::ProtectedBlockedCsr)), an
    /// [`AnyProtectedMatrix`], or an already-shared
    /// `Arc<AnyProtectedMatrix>` handle.  Callers encode with
    /// [`AnyProtectedMatrix::encode`] (the step the historical
    /// `register_matrix` / `register_matrix_tiered` pair folded in) and
    /// hand the result over.
    pub fn register(&mut self, matrix: impl Into<Arc<AnyProtectedMatrix>>) -> MatrixId {
        self.matrices.push(matrix.into());
        MatrixId(self.matrices.len() - 1)
    }

    /// Encodes and registers a matrix for subsequent jobs (CSR storage).
    #[deprecated(
        since = "0.6.0",
        note = "encode with AnyProtectedMatrix::encode and pass the result to the one-stop SolveQueue::register"
    )]
    pub fn register_matrix(
        &mut self,
        matrix: &CsrMatrix,
        protection: &ProtectionConfig,
    ) -> Result<MatrixId, abft_core::AbftError> {
        let encoded = AnyProtectedMatrix::encode(matrix, protection, StorageTier::Csr)?;
        Ok(self.register(encoded))
    }

    /// Encodes and registers a matrix into an explicit storage tier.
    #[deprecated(
        since = "0.6.0",
        note = "encode with AnyProtectedMatrix::encode and pass the result to the one-stop SolveQueue::register"
    )]
    pub fn register_matrix_tiered(
        &mut self,
        matrix: &CsrMatrix,
        protection: &ProtectionConfig,
        tier: StorageTier,
    ) -> Result<MatrixId, abft_core::AbftError> {
        let encoded = AnyProtectedMatrix::encode(matrix, protection, tier)?;
        Ok(self.register(encoded))
    }

    /// Registers an already-encoded protected matrix of any storage tier.
    #[deprecated(since = "0.6.0", note = "SolveQueue::register accepts the same inputs")]
    pub fn register_encoded(&mut self, matrix: impl Into<AnyProtectedMatrix>) -> MatrixId {
        self.register(matrix.into())
    }

    /// Queues a job; it runs at the next [`SolveQueue::drain`].
    ///
    /// # Panics
    /// Panics if the matrix id is unknown or the right-hand side length
    /// does not match the matrix.
    pub fn submit(&mut self, spec: JobSpec) -> JobHandle {
        let matrix = self
            .matrices
            .get(spec.matrix.0)
            .expect("submit: unknown matrix id");
        assert_eq!(
            spec.rhs.len(),
            matrix.rows(),
            "submit: rhs length does not match the matrix"
        );
        let id = JobId(self.next_job);
        self.next_job += 1;
        let cancel = Arc::new(AtomicBool::new(false));
        self.pending.push(PendingJob {
            id,
            spec,
            cancel: Arc::clone(&cancel),
            submitted: Instant::now(),
            attempts: 0,
            earliest_drain: 0,
            solo: false,
        });
        JobHandle { id, cancel }
    }

    /// Number of jobs waiting for the next drain.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Everything this tenant's jobs have observed across drains.
    pub fn tenant_snapshot(&self, tenant: &str) -> FaultLogSnapshot {
        self.tenant_logs
            .get(tenant)
            .map(FaultLog::snapshot)
            .unwrap_or_default()
    }

    /// The *physical* matrix verification work performed across all drains.
    ///
    /// Tenant snapshots replicate each panel's matrix-check delta into every
    /// live column so per-tenant accounting matches a standalone solve; this
    /// counter instead records each panel traversal once, so it is the number
    /// to watch when measuring how batching amortises verify cost — with
    /// width-`k` panels it grows at roughly `1/k` of the sum of the tenants'
    /// matrix-region checks.
    pub fn matrix_activity(&self) -> FaultLogSnapshot {
        self.matrix_activity.snapshot()
    }

    /// Runs every eligible pending job and returns the outcomes in
    /// submission order.
    ///
    /// Admission: jobs are grouped by (matrix, solver config) in
    /// submission order and each group is split into panels of at most
    /// [`SolveQueue::max_width`] columns; each panel is one detached pool
    /// job, so distinct panels overlap on the worker pool while each
    /// panel's columns share their matrix traversals.  Requeued retries
    /// form solo panels and only become eligible once their backoff clock
    /// (`2^attempts` drains) has elapsed — keep draining until
    /// [`SolveQueue::pending`] reaches zero to flush them.
    pub fn drain(&mut self) -> Vec<JobOutcome> {
        self.drain_count += 1;
        let now = self.drain_count;
        let (ready, deferred): (Vec<PendingJob>, Vec<PendingJob>) =
            std::mem::take(&mut self.pending)
                .into_iter()
                .partition(|job| job.earliest_drain <= now);
        self.pending = deferred;
        if ready.is_empty() {
            return Vec::new();
        }

        // Group by (matrix, config); preserve submission order within and
        // across groups (first-seen order) so batching is reproducible.
        // Requeued retries carry a per-job `solo` marker that makes their
        // key unique: a column that already faulted gets its own panel.
        let mut groups: Vec<(PanelKey, Vec<PendingJob>)> = Vec::new();
        let mut retry_meta: HashMap<usize, RetryMeta> = HashMap::new();
        for job in ready {
            if self.retry_budget > 0 {
                retry_meta.insert(
                    job.id.0,
                    RetryMeta {
                        matrix: job.spec.matrix,
                        config: job.spec.config,
                        deadline: job.spec.deadline,
                        budget: job.spec.budget,
                        precond: job.spec.precond,
                        cancel: Arc::clone(&job.cancel),
                        submitted: job.submitted,
                    },
                );
            }
            let key = (
                job.spec.matrix.0,
                job.spec.config.max_iterations,
                job.spec.config.tolerance.to_bits(),
                precond_key(job.spec.precond),
                if job.solo { job.id.0 as u64 + 1 } else { 0 },
            );
            match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, members)) => members.push(job),
                None => groups.push((key, vec![job])),
            }
        }

        let mut tickets: Vec<Ticket<(Vec<ColumnResult>, FaultLogSnapshot)>> = Vec::new();
        for (_, members) in groups {
            let matrix = Arc::clone(&self.matrices[members[0].spec.matrix.0]);
            let config = members[0].spec.config;
            let precond = members[0].spec.precond;
            let mut members = members.into_iter().peekable();
            while members.peek().is_some() {
                let panel: Vec<PanelColumn> = members
                    .by_ref()
                    .take(self.max_width)
                    .map(|job| PanelColumn {
                        id: job.id,
                        tenant: job.spec.tenant,
                        rhs: job.spec.rhs,
                        budget: job.spec.budget,
                        cancel: job.cancel,
                        deadline: job.spec.deadline,
                        submitted: job.submitted,
                        attempts: job.attempts,
                    })
                    .collect();
                let matrix = Arc::clone(&matrix);
                tickets.push(submit(move || solve_panel(&matrix, config, precond, panel)));
            }
        }

        let mut results: Vec<ColumnResult> = tickets
            .into_iter()
            .flat_map(|ticket| {
                let (cols, matrix_checks) = ticket.wait();
                self.matrix_activity.absorb(&matrix_checks);
                cols
            })
            .collect();
        results.sort_by_key(|c| c.id);

        let mut outcomes = Vec::new();
        for mut col in results {
            // Fault accounting lands in the tenant's log right away, even
            // when the job is requeued instead of answered — degradation
            // must not hide detected faults from the tenant's history.
            self.tenant_logs
                .entry(col.tenant.clone())
                .or_default()
                .absorb(&col.faults);
            let retry = col.termination == Termination::Fault
                && col.attempts < self.retry_budget
                && col.rhs.is_some();
            if retry {
                let meta = retry_meta
                    .remove(&col.id.0)
                    .expect("drain: faulted column missing retry metadata");
                self.pending.push(PendingJob {
                    id: col.id,
                    spec: JobSpec {
                        tenant: col.tenant,
                        matrix: meta.matrix,
                        rhs: col.rhs.take().expect("drain: retry without rhs"),
                        config: meta.config,
                        deadline: meta.deadline,
                        budget: meta.budget,
                        precond: meta.precond,
                    },
                    cancel: meta.cancel,
                    submitted: meta.submitted,
                    attempts: col.attempts + 1,
                    earliest_drain: now + (1u64 << col.attempts.min(16)),
                    solo: true,
                });
                continue;
            }
            outcomes.push(JobOutcome {
                id: col.id,
                tenant: col.tenant,
                solution: col.solution,
                status: col.status,
                termination: col.termination,
                error: col.error,
                faults: col.faults,
                panel_width: col.panel_width,
                attempts: col.attempts,
            });
        }
        outcomes
    }
}

/// Everything needed to reconstruct a faulted job's [`JobSpec`] at requeue
/// time (the right-hand side rides back in the [`ColumnResult`]).
struct RetryMeta {
    matrix: MatrixId,
    config: SolverConfig,
    deadline: Option<Duration>,
    budget: Option<usize>,
    precond: Option<(PrecondKind, ReliabilityPolicy)>,
    cancel: Arc<AtomicBool>,
    submitted: Instant,
}

/// Solves one panel on whichever backend tier the matrix was encoded for.
/// Returns the per-column results plus the panel's physical matrix-check
/// activity (recorded once per traversal, not once per tenant).
fn solve_panel(
    matrix: &AnyProtectedMatrix,
    config: SolverConfig,
    precond: Option<(PrecondKind, ReliabilityPolicy)>,
    columns: Vec<PanelColumn>,
) -> (Vec<ColumnResult>, FaultLogSnapshot) {
    if let Some((kind, policy)) = precond {
        return run_precond_panel(matrix, config, kind, policy, columns);
    }
    if matrix.config().vectors != EccScheme::None {
        run_panel(&FullyProtected::new(matrix), config, columns)
    } else {
        run_panel(&MatrixProtected::new(matrix), config, columns)
    }
}

/// The preconditioned panel body: the preconditioner is factored **once**
/// (the batching payoff for FT-PCG jobs) and each column then runs the
/// full inner-outer [`ft_pcg`] sequentially — arithmetic and fault
/// accounting are bit-for-bit those of a standalone preconditioned solve,
/// regardless of panel composition or the pool's worker count.
///
/// Cancellation and deadlines are observed once, before a column's solve
/// starts (the sequential FT-PCG loop has no per-iteration poll hook);
/// per-job iteration budgets are honoured by capping the column's
/// iteration limit.  All matrix traversals land in the owning column's
/// log, exactly as standalone — preconditioned panels share no traversal,
/// so they contribute nothing to [`SolveQueue::matrix_activity`].
fn run_precond_panel(
    matrix: &AnyProtectedMatrix,
    config: SolverConfig,
    kind: PrecondKind,
    policy: ReliabilityPolicy,
    columns: Vec<PanelColumn>,
) -> (Vec<ColumnResult>, FaultLogSnapshot) {
    let width = columns.len();
    let plain = matrix.to_csr();
    let scheme = matrix.config().elements;
    let backend = matrix.config().crc_backend;
    let built = kind.build(&plain, policy.tier(), scheme, backend);

    let results = columns
        .into_iter()
        .map(|col| {
            let log = FaultLog::new();
            let idle = SolveStatus {
                converged: false,
                iterations: 0,
                initial_residual: 0.0,
                final_residual: 0.0,
            };
            let precond = match &built {
                Ok(p) => p.as_ref(),
                Err(e) => {
                    let error = Some(e.clone());
                    return ColumnResult {
                        id: col.id,
                        tenant: col.tenant,
                        solution: None,
                        status: idle,
                        termination: Termination::Fault,
                        error,
                        faults: log.snapshot(),
                        panel_width: width,
                        attempts: col.attempts,
                        rhs: Some(col.rhs),
                    };
                }
            };
            if col.cancel.load(Ordering::Relaxed) {
                return ColumnResult {
                    id: col.id,
                    tenant: col.tenant,
                    solution: Some(vec![0.0; plain.rows()]),
                    status: idle,
                    termination: Termination::Cancelled,
                    error: None,
                    faults: log.snapshot(),
                    panel_width: width,
                    attempts: col.attempts,
                    rhs: None,
                };
            }
            if col
                .deadline
                .is_some_and(|limit| col.submitted.elapsed() >= limit)
            {
                return ColumnResult {
                    id: col.id,
                    tenant: col.tenant,
                    solution: Some(vec![0.0; plain.rows()]),
                    status: idle,
                    termination: Termination::DeadlineExpired,
                    error: None,
                    faults: log.snapshot(),
                    panel_width: width,
                    attempts: col.attempts,
                    rhs: None,
                };
            }

            let mut cfg = config;
            if let Some(budget) = col.budget {
                cfg.max_iterations = cfg.max_iterations.min(budget);
            }
            let outcome = if matrix.config().vectors != EccScheme::None {
                precond_column(&FullyProtected::new(matrix), &col.rhs, precond, &cfg, &log)
            } else {
                precond_column(&MatrixProtected::new(matrix), &col.rhs, precond, &cfg, &log)
            };
            match outcome {
                Ok((solution, status)) => {
                    let termination = if status.converged {
                        Termination::Converged
                    } else if status.iterations < cfg.max_iterations {
                        Termination::Stalled
                    } else {
                        Termination::IterationBudget
                    };
                    ColumnResult {
                        id: col.id,
                        tenant: col.tenant,
                        solution: Some(solution),
                        status,
                        termination,
                        error: None,
                        faults: log.snapshot(),
                        panel_width: width,
                        attempts: col.attempts,
                        rhs: None,
                    }
                }
                Err(e) => ColumnResult {
                    id: col.id,
                    tenant: col.tenant,
                    solution: None,
                    status: idle,
                    termination: Termination::Fault,
                    error: Some(e),
                    faults: log.snapshot(),
                    panel_width: width,
                    attempts: col.attempts,
                    rhs: Some(col.rhs),
                },
            }
        })
        .collect();
    (results, FaultLogSnapshot::default())
}

/// One column's standalone-equivalent FT-PCG solve: own context, own
/// reduction scope, own decode — bitwise the same as
/// [`SolveSpec::solve`](abft_solvers::SolveSpec::solve) against the same
/// encoded matrix.
fn precond_column<Op: LinearOperator>(
    op: &Op,
    rhs: &[f64],
    precond: &dyn Preconditioner,
    config: &SolverConfig,
    log: &FaultLog,
) -> Result<(Vec<f64>, SolveStatus), SolverError> {
    let base = FaultContext::with_log(log);
    let ctx = base.scoped_to(op.reduction_workspace());
    let b = op.vector_from(rhs);
    let (mut x, status) = ft_pcg(op, &b, precond, config, &ctx)?;
    let solution = op.finish(&mut x, &ctx)?;
    Ok((solution, status))
}

/// The generic panel body: per-column fault contexts, a scratch matrix
/// log with per-iteration attribution, cooperative cancellation/deadline
/// polling, and a per-column `finish`.
fn run_panel<Op: LinearOperator>(
    op: &Op,
    config: SolverConfig,
    columns: Vec<PanelColumn>,
) -> (Vec<ColumnResult>, FaultLogSnapshot) {
    let width = columns.len();
    let logs: Vec<FaultLog> = (0..width).map(|_| FaultLog::new()).collect();
    let base: Vec<FaultContext> = logs.iter().map(FaultContext::with_log).collect();
    let ctxs: Vec<FaultContext> = base
        .iter()
        .map(|ctx| ctx.scoped_to(op.reduction_workspace()))
        .collect();
    let ctx_refs: Vec<&FaultContext> = ctxs.iter().collect();
    let matrix_log = FaultLog::new();
    let matrix_ctx = FaultContext::with_log(&matrix_log);

    let bs: Vec<Op::Vector> = columns.iter().map(|c| op.vector_from(&c.rhs)).collect();
    let b_refs: Vec<&Op::Vector> = bs.iter().collect();
    let budgets: Vec<Option<usize>> = columns.iter().map(|c| c.budget).collect();

    let block = block_cg_panel(
        op,
        &b_refs,
        &config,
        &ctx_refs,
        &matrix_ctx,
        true,
        &budgets,
        |j, _iteration| {
            let col = &columns[j];
            if col.cancel.load(Ordering::Relaxed) {
                return Some(Termination::Cancelled);
            }
            if col
                .deadline
                .is_some_and(|limit| col.submitted.elapsed() >= limit)
            {
                return Some(Termination::DeadlineExpired);
            }
            None
        },
    );

    let results = block
        .into_iter()
        .zip(columns)
        .enumerate()
        .map(|(j, (mut col, spec))| {
            let (solution, termination, error) = if col.termination == Termination::Fault {
                (None, Termination::Fault, col.error.take())
            } else {
                // Decode (and end-of-solve verify / scrub) with the owning
                // column's context, so the finish activity is attributed to
                // this tenant exactly as in a standalone solve.
                match op.finish(&mut col.solution, &ctxs[j]) {
                    Ok(plain) => (Some(plain), col.termination, None),
                    Err(e) => (None, Termination::Fault, Some(e)),
                }
            };
            let rhs = (termination == Termination::Fault).then_some(spec.rhs);
            ColumnResult {
                id: spec.id,
                tenant: spec.tenant,
                solution,
                status: col.status,
                termination,
                error,
                faults: logs[j].snapshot(),
                panel_width: width,
                attempts: spec.attempts,
                rhs,
            }
        })
        .collect();
    (results, matrix_log.snapshot())
}
