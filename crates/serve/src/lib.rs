//! # abft-serve — multi-tenant serving front door
//!
//! The serving layer on top of the protected solver stack: many concurrent
//! solve jobs from different tenants, batched into multi-RHS panels so
//! jobs that share a matrix also share its integrity verification.
//!
//! Two pieces:
//!
//! * [`pool`] — detached job submission over the sharded worker runtime:
//!   [`submit`] returns a [`Ticket`] to block on; panics are captured and
//!   re-thrown at the caller, never inside the pool.
//! * [`queue`] — the [`SolveQueue`]: register encoded matrices, submit
//!   [`JobSpec`]s, [`drain`](SolveQueue::drain) them as width-`k` panels
//!   through the block-CG engine.  Per-tenant fault isolation, cooperative
//!   cancellation, deadlines and iteration budgets are part of the job
//!   contract ([`JobOutcome`]).
//!
//! The core property inherited from the kernels below: batching changes
//! *cost*, never *answers*.  Each panel column is bitwise identical to a
//! standalone solve, while the matrix verify cost per job drops as `1/k`.

#![deny(missing_docs)]

pub mod pool;
pub mod queue;

pub use pool::{submit, submit_batch, workers, Ticket};
pub use queue::{JobHandle, JobId, JobOutcome, JobSpec, MatrixId, SolveQueue};
