//! # abft-ecc — software error detecting and correcting codes
//!
//! This crate implements the error detecting / correcting codes used by the
//! Application-Based Fault Tolerance (ABFT) schemes of
//! *"Application-Based Fault Tolerance Techniques for Fully Protecting Sparse
//! Matrix Solvers"* (Pawelczak et al., IEEE CLUSTER 2017):
//!
//! * [`sed`] — **S**ingle **E**rror **D**etection: a single parity bit,
//!   minimum Hamming distance 2, detects any odd number of bit flips.
//! * [`secded`] — **S**ingle **E**rror **C**orrection, **D**ouble **E**rror
//!   **D**etection extended Hamming codes.  The two concrete variants used in
//!   the paper are SECDED64 (72,64) and SECDED128 (137,128); the
//!   implementation is generic over data width so the odd-sized codewords the
//!   protected CSR structures need (88-bit CSR elements, 56/112-bit
//!   row-pointer groups, 118-bit dense-vector pairs) reuse the same machinery.
//! * [`crc32c`] — the CRC-32C (Castagnoli) cyclic redundancy check with three
//!   interchangeable backends: a naive bitwise reference, a slicing-by-16
//!   table implementation, and the hardware `crc32` instruction on x86-64
//!   (SSE4.2) and AArch64 when available.
//! * [`correction`] — error *correction* on top of CRC32C: because CRC32C has
//!   minimum Hamming distance 6 for codewords between 178 and 5243 bits, a
//!   single or double bit flip can be located and repaired by trial
//!   re-encoding (the paper's nECmED discussion, §IV).
//! * [`analysis`] — code-capability analysis helpers used by the tests and
//!   the `experiments --crc-capability` harness: syndrome uniqueness checks,
//!   detection exhaustiveness over bounded error weights.
//! * [`verify`] — batched, SIMD-accelerated verify-only kernels with
//!   runtime ISA dispatch (SSE2/AVX2 resolved once into a function-pointer
//!   table, portable scalar reference kept): the check-throughput layer the
//!   hot SpMV and BLAS-1 consumers run on.
//!
//! The crate is `no_std`-friendly in spirit (no allocation in the hot paths)
//! but uses `std` for feature detection and the analysis helpers.

#![deny(missing_docs)]

pub mod analysis;
pub mod bitops;
pub mod correction;
pub mod crc32c;
pub mod secded;
pub mod sed;
pub mod verify;

pub use correction::{correct_crc32c_single, correct_crc32c_up_to_two};
pub use crc32c::{Crc32c, Crc32cBackend};
pub use secded::{
    DecodeOutcome, Secded, SECDED_112, SECDED_118, SECDED_128, SECDED_176, SECDED_56, SECDED_64,
    SECDED_88,
};
pub use sed::{parity_u128, parity_u32, parity_u64, parity_words};

/// Classification of what an integrity check found, mirroring the DCE / DUE /
/// SDC terminology of the paper's introduction.
///
/// * `Clean` — the codeword verified correctly.
/// * `Corrected` — an error was detected *and* repaired in place
///   (a Detectable Correctable Error).
/// * `Detected` — an error was detected but could not be repaired
///   (a Detectable Uncorrectable Error); the application must decide how to
///   recover (e.g. checkpoint-restart, or for CG simply re-assembling the
///   matrix).
///
/// Silent data corruptions by definition never produce a report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CheckOutcome {
    /// No error detected.
    Clean,
    /// An error was detected and corrected; the payload is the number of bits
    /// repaired.
    Corrected(u32),
    /// An error was detected but is uncorrectable with the scheme in use.
    Detected,
}

impl CheckOutcome {
    /// Returns `true` when the data is usable after the check (either it was
    /// clean or it has been repaired).
    #[inline]
    pub fn is_usable(self) -> bool {
        !matches!(self, CheckOutcome::Detected)
    }

    /// Returns `true` when any error (correctable or not) was observed.
    #[inline]
    pub fn is_error(self) -> bool {
        !matches!(self, CheckOutcome::Clean)
    }
}
