//! Batched, SIMD-accelerated verify-only ECC kernels with runtime ISA
//! dispatch.
//!
//! The full-protection scheme makes every SpMV and every vector read pay an
//! integrity check, so check throughput *is* solver throughput.  The
//! verify-only predicates ([`crate::Secded::verify`], SED parity) already
//! avoid the correction machinery; this module removes the remaining scalar
//! bit-twiddling by verifying **2–4 codewords per step**:
//!
//! * every codeword layout the hot kernels touch is reduced to *"XOR a
//!   handful of table lookups and compare with zero"* through a **flattened
//!   full-codeword syndrome table** built at compile time (one `u32` per
//!   `(byte position, byte value)` pair, stored redundancy folded in — see
//!   the private `tables` module), so a 72-bit vector codeword is clean iff the XOR of
//!   8 lookups is zero, with no shifts, masks, or popcounts left at runtime;
//! * on x86-64 with AVX2 the lookups become one 8-lane `vpgatherdd` per
//!   codeword and the zero-tests are merged across a batch of 2–4 codewords;
//!   SED parity folds 4 words per step with plain vertical XORs (SSE2 folds
//!   2);
//! * the implementation is selected **once**, at first use, into a
//!   process-wide function-pointer table (a `OnceLock` function table) from
//!   `is_x86_feature_detected!` — feature detection never runs inside a
//!   kernel loop.
//!
//! The portable scalar implementations live in [`scalar`] and remain the
//! reference: they run on every architecture, the dispatched kernels must be
//! bit-for-bit equivalent to them (pinned by differential tests across
//! random lengths and injected faults), and benchmarks compare against them
//! for the pre/post points of `BENCH_ecc.json`.
//!
//! # Forcing the scalar path
//!
//! Setting the environment variable **`ABFT_ECC_FORCE_SCALAR=1`** (any
//! non-empty value other than `0`) before the first ECC operation pins the
//! dispatch to the scalar implementations *and* disables the hardware CRC32C
//! instruction, so tests and benchmarks can exercise the portable fallback
//! on hosts that do have the fast paths.  The variable is read once, when
//! the dispatch table is first resolved; changing it afterwards has no
//! effect.
//!
//! # What is *not* here
//!
//! Correction stays scalar: a failing batch only tells the caller "not
//! clean", and the caller re-walks the batch with the correcting per-group
//! decode to locate, repair and attribute the fault.  Faults are rare by
//! assumption, so the batched predicates are the common case and the scalar
//! decode is the cold path.

use crate::secded::data_bit_position;
use std::sync::OnceLock;

/// Instruction set selected by the runtime dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Isa {
    /// Portable scalar reference implementations.
    Scalar,
    /// SSE2: 2-lane parity folds; table kernels batch 4 codewords per step
    /// for instruction-level parallelism (x86-64 baseline, no gather).
    Sse2,
    /// AVX2: 4-lane parity folds and 8-lane `vpgatherdd` syndrome lookups.
    Avx2,
}

impl Isa {
    /// Label for benchmark output (`BENCH_ecc.json` records the detected
    /// ISA so numbers from different hosts are never compared blindly).
    pub fn label(self) -> &'static str {
        match self {
            Isa::Scalar => "scalar",
            Isa::Sse2 => "sse2",
            Isa::Avx2 => "avx2",
        }
    }
}

/// The resolved kernel table: one function pointer per batched predicate.
struct Kernels {
    isa: Isa,
    sed_words: fn(&[u64]) -> bool,
    sed_elements: fn(&[f64], &[u32]) -> bool,
    secded64_words: fn(&[u64]) -> bool,
    secded128_words: fn(&[u64]) -> bool,
    secded88_elements: fn(&[f64], &[u32]) -> bool,
}

static KERNELS: OnceLock<Kernels> = OnceLock::new();

/// `true` when `ABFT_ECC_FORCE_SCALAR` requests the portable path.
///
/// The environment variable is read **once** per process, through this
/// shared cache — the verify dispatch table and the CRC hardware probe
/// both consult it, so the two can never resolve to inconsistent states
/// no matter which is touched first or whether the variable changes
/// mid-process.
pub fn force_scalar_requested() -> bool {
    static FORCED: OnceLock<bool> = OnceLock::new();
    *FORCED.get_or_init(|| match std::env::var("ABFT_ECC_FORCE_SCALAR") {
        Ok(v) => !v.is_empty() && v != "0",
        Err(_) => false,
    })
}

fn resolve() -> Kernels {
    if force_scalar_requested() {
        return scalar_kernels();
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return Kernels {
                isa: Isa::Avx2,
                sed_words: avx2::sed_words_clean,
                sed_elements: avx2::sed_elements_clean,
                secded64_words: avx2::secded64_words_clean,
                secded128_words: avx2::secded128_words_clean,
                secded88_elements: avx2::secded88_elements_clean,
            };
        }
        if std::arch::is_x86_feature_detected!("sse2") {
            return Kernels {
                isa: Isa::Sse2,
                sed_words: sse2::sed_words_clean,
                sed_elements: sse2::sed_elements_clean,
                // x86 without AVX2 has no usable gather; the table kernels
                // batch 4 codewords per step in scalar registers instead.
                secded64_words: batched::secded64_words_clean,
                secded128_words: batched::secded128_words_clean,
                secded88_elements: batched::secded88_elements_clean,
            };
        }
    }
    scalar_kernels()
}

fn scalar_kernels() -> Kernels {
    Kernels {
        isa: Isa::Scalar,
        sed_words: scalar::sed_words_clean,
        sed_elements: scalar::sed_elements_clean,
        secded64_words: scalar::secded64_words_clean,
        secded128_words: scalar::secded128_words_clean,
        secded88_elements: scalar::secded88_elements_clean,
    }
}

#[inline]
fn kernels() -> &'static Kernels {
    KERNELS.get_or_init(resolve)
}

/// The ISA the dispatch resolved to (resolving it on first call).
pub fn detected_isa() -> Isa {
    kernels().isa
}

/// Batched SED check: `true` iff every word has even parity.
///
/// This is the whole-run predicate behind the SED fast paths: a clean run —
/// the overwhelmingly common case — is certified in one pass and the caller
/// never touches per-element parity; a failing run is re-walked by the
/// caller's scalar loop to find and report the offending index.
///
/// ```
/// use abft_ecc::verify::sed_words_clean;
/// // Even-parity words pass, one flipped bit fails the whole run.
/// let clean = [0b11u64, 0b1010, 0];
/// assert!(sed_words_clean(&clean));
/// let mut bad = clean;
/// bad[1] ^= 1 << 40;
/// assert!(!sed_words_clean(&bad));
/// ```
#[inline]
pub fn sed_words_clean(words: &[u64]) -> bool {
    (kernels().sed_words)(words)
}

/// Batched SED check of CSR elements: `true` iff every `(value, encoded
/// column)` pair has even combined parity (the 96-bit element codeword of
/// Fig. 1).  `values` and `cols` must have equal lengths.
#[inline]
pub fn sed_elements_clean(values: &[f64], cols: &[u32]) -> bool {
    debug_assert_eq!(values.len(), cols.len());
    (kernels().sed_elements)(values, cols)
}

/// Batched verify of SECDED64 dense-vector codewords: `true` iff every word
/// is a clean 72-bit vector codeword (56-bit payload in the high bits, 7
/// redundancy bits + 1 zero bit in the low byte).
#[inline]
pub fn secded64_words_clean(words: &[u64]) -> bool {
    (kernels().secded64_words)(words)
}

/// Batched verify of SECDED128 dense-vector codewords: `true` iff every
/// consecutive **pair** of words is a clean 126-bit vector codeword
/// (2 × 59-bit payload, 8 redundancy bits split 5 + 3 across the two
/// reserved low-bit fields).  `words.len()` must be even (protected-vector
/// storage is always padded to whole groups).
#[inline]
pub fn secded128_words_clean(words: &[u64]) -> bool {
    debug_assert_eq!(words.len() % 2, 0);
    (kernels().secded128_words)(words)
}

/// Batched verify of SECDED88 CSR elements: `true` iff every `(value,
/// encoded column)` pair is a clean 96-bit element codeword (64-bit value +
/// 24-bit column payload, 8 redundancy bits in the column's top byte).
/// `values` and `cols` must have equal lengths.
#[inline]
pub fn secded88_elements_clean(values: &[f64], cols: &[u32]) -> bool {
    debug_assert_eq!(values.len(), cols.len());
    (kernels().secded88_elements)(values, cols)
}

/// Compile-time construction of the flattened full-codeword syndrome
/// tables.
///
/// Every verify-only check in this crate is linear over GF(2): the codeword
/// is clean iff the XOR of a per-bit *column* over all set raw bits is zero,
/// where the column of
///
/// * a payload bit `j` is its Hamming codeword position ORed with the
///   overall-parity contribution,
/// * a stored check bit `j` is `1 << j` (it cancels the computed check bit)
///   ORed with the overall-parity contribution,
/// * the stored parity bit is the overall-parity contribution alone,
/// * a must-be-zero spare bit is a **sentinel** bit no real column uses, so
///   any stray flip there fails the check, and
/// * a bit outside the codeword is zero.
///
/// Folding eight adjacent bits at a time yields one 256-entry `u32` table
/// per byte position; the tables for one layout are flattened into a single
/// array so a SIMD gather can index them as `position * 256 + byte`.
mod tables {
    use super::data_bit_position;

    /// Column bit set for spare bits that the layout defines to be zero.
    pub(super) const SENTINEL: u32 = 1 << 31;

    /// Role of one raw storage bit in a codeword layout.
    #[derive(Clone, Copy)]
    enum Role {
        /// Payload bit `j` of the underlying Hamming code.
        Payload(usize),
        /// Stored Hamming check bit `j`.
        Check(u32),
        /// Stored overall-parity bit.
        Parity,
        /// Spare bit defined to be zero.
        Zero,
    }

    const fn column(role: Role, check_bits: u32) -> u32 {
        match role {
            Role::Payload(j) => data_bit_position(j) as u32 | (1 << check_bits),
            Role::Check(j) => (1 << j) | (1 << check_bits),
            Role::Parity => 1 << check_bits,
            Role::Zero => SENTINEL,
        }
    }

    /// Folds per-bit columns into the flattened per-byte lookup table.
    const fn fill<const BITS: usize, const SIZE: usize>(
        roles: [Role; BITS],
        check_bits: u32,
    ) -> [u32; SIZE] {
        assert!(SIZE == (BITS / 8) * 256);
        let mut table = [0u32; SIZE];
        let mut p = 0;
        while p < BITS / 8 {
            let mut b = 1usize;
            while b < 256 {
                // table[p][b] = table[p][b without its lowest set bit]
                //             ^ column(lowest set bit)
                let low = b & b.wrapping_neg();
                let bit = low.trailing_zeros() as usize;
                table[p * 256 + b] =
                    table[p * 256 + (b ^ low)] ^ column(roles[p * 8 + bit], check_bits);
                b += 1;
            }
            p += 1;
        }
        table
    }

    /// SECDED64 dense-vector codeword: one `u64` = 56-bit payload above an
    /// 8-bit reserved field (bits 0–5 check bits, bit 6 parity, bit 7 zero).
    const fn vec64_roles() -> [Role; 64] {
        let mut roles = [Role::Zero; 64];
        let mut j = 0;
        while j < 6 {
            roles[j] = Role::Check(j as u32);
            j += 1;
        }
        roles[6] = Role::Parity;
        // roles[7] stays Zero (the 8th reserved bit is defined to be zero).
        let mut b = 8;
        while b < 64 {
            roles[b] = Role::Payload(b - 8);
            b += 1;
        }
        roles
    }

    /// SECDED128 dense-vector codeword: two `u64`s = 2 × 59-bit payload
    /// above 5-bit reserved fields; redundancy bits 0–4 in word 0, bits 5–7
    /// (checks 5–6 + parity) in word 1, word-1 spare bits 3–4 zero.
    const fn vec128_roles() -> [Role; 128] {
        let mut roles = [Role::Zero; 128];
        let mut j = 0;
        while j < 5 {
            roles[j] = Role::Check(j as u32);
            j += 1;
        }
        let mut b = 5;
        while b < 64 {
            roles[b] = Role::Payload(b - 5);
            b += 1;
        }
        roles[64] = Role::Check(5);
        roles[65] = Role::Check(6);
        roles[66] = Role::Parity;
        // roles[67], roles[68] stay Zero.
        let mut b = 69;
        while b < 128 {
            roles[b] = Role::Payload(59 + (b - 69));
            b += 1;
        }
        roles
    }

    /// SECDED88 CSR element codeword: a 64-bit value (payload bits 0–63)
    /// followed by a 32-bit column index (payload bits 64–87 in the low 24
    /// bits, checks 0–6 + parity in the top byte).
    const fn elem88_roles() -> [Role; 96] {
        let mut roles = [Role::Zero; 96];
        let mut b = 0;
        while b < 64 {
            roles[b] = Role::Payload(b);
            b += 1;
        }
        while b < 88 {
            roles[b] = Role::Payload(b);
            b += 1;
        }
        let mut j = 0;
        while j < 7 {
            roles[88 + j] = Role::Check(j as u32);
            j += 1;
        }
        roles[95] = Role::Parity;
        roles
    }

    /// Flattened table for the SECDED64 vector codeword (8 byte positions).
    pub(super) static VEC64: [u32; 8 * 256] = fill(vec64_roles(), 6);
    /// Flattened table for the SECDED128 vector codeword (16 byte positions).
    pub(super) static VEC128: [u32; 16 * 256] = fill(vec128_roles(), 7);
    /// Flattened table for the SECDED88 element codeword (12 byte positions:
    /// 8 value bytes then 4 column bytes).
    pub(super) static ELEM88: [u32; 12 * 256] = fill(elem88_roles(), 7);
}

/// Full-codeword syndrome of one SECDED64 vector word: zero iff clean.
#[inline(always)]
fn vec64_syndrome(w: u64) -> u32 {
    let t = &tables::VEC64;
    let mut s = 0u32;
    let mut i = 0;
    while i < 8 {
        s ^= t[i * 256 + ((w >> (i * 8)) & 0xFF) as usize];
        i += 1;
    }
    s
}

/// Full-codeword syndrome of one SECDED128 vector pair: zero iff clean.
#[inline(always)]
fn vec128_syndrome(w0: u64, w1: u64) -> u32 {
    let t = &tables::VEC128;
    let mut s = 0u32;
    let mut i = 0;
    while i < 8 {
        s ^= t[i * 256 + ((w0 >> (i * 8)) & 0xFF) as usize];
        s ^= t[(8 + i) * 256 + ((w1 >> (i * 8)) & 0xFF) as usize];
        i += 1;
    }
    s
}

/// Full-codeword syndrome of one SECDED88 CSR element: zero iff clean.
#[inline(always)]
fn elem88_syndrome(value: f64, col: u32) -> u32 {
    let t = &tables::ELEM88;
    let v = value.to_bits();
    let mut s = 0u32;
    let mut i = 0;
    while i < 8 {
        s ^= t[i * 256 + ((v >> (i * 8)) & 0xFF) as usize];
        i += 1;
    }
    let mut i = 0;
    while i < 4 {
        s ^= t[(8 + i) * 256 + ((col >> (i * 8)) & 0xFF) as usize];
        i += 1;
    }
    s
}

/// Portable scalar reference implementations.
///
/// These are the semantics the dispatched kernels must reproduce exactly;
/// the differential tests compare every other implementation against them,
/// and `BENCH_ecc.json`'s *pre* points time them.
pub mod scalar {
    use super::*;

    /// Scalar [`super::sed_words_clean`].
    pub fn sed_words_clean(words: &[u64]) -> bool {
        // XOR-folding the whole run costs one op per word and detects any
        // odd number of per-word parity failures; it cannot certify a run
        // clean (two bad words cancel), so fold a *per-word* parity bit
        // into an accumulator instead.
        let mut acc = 0u64;
        for &w in words {
            acc |= fold_parity(w);
        }
        acc & 1 == 0
    }

    /// Parity of `w` folded into bit 0 (no popcount: the baseline ISA of
    /// the scalar tier may lack one).
    #[inline(always)]
    fn fold_parity(w: u64) -> u64 {
        let mut v = w;
        v ^= v >> 32;
        v ^= v >> 16;
        v ^= v >> 8;
        v ^= v >> 4;
        v ^= v >> 2;
        v ^= v >> 1;
        v & 1
    }

    /// Scalar [`super::sed_elements_clean`].
    pub fn sed_elements_clean(values: &[f64], cols: &[u32]) -> bool {
        let mut acc = 0u64;
        for (&v, &c) in values.iter().zip(cols) {
            acc |= fold_parity(v.to_bits() ^ c as u64);
        }
        acc & 1 == 0
    }

    /// Scalar [`super::secded64_words_clean`].
    pub fn secded64_words_clean(words: &[u64]) -> bool {
        let mut acc = 0u32;
        for &w in words {
            acc |= vec64_syndrome(w);
        }
        acc == 0
    }

    /// Scalar [`super::secded128_words_clean`].
    pub fn secded128_words_clean(words: &[u64]) -> bool {
        let mut acc = 0u32;
        for pair in words.chunks_exact(2) {
            acc |= vec128_syndrome(pair[0], pair[1]);
        }
        acc == 0
    }

    /// Scalar [`super::secded88_elements_clean`].
    pub fn secded88_elements_clean(values: &[f64], cols: &[u32]) -> bool {
        let mut acc = 0u32;
        for (&v, &c) in values.iter().zip(cols) {
            acc |= elem88_syndrome(v, c);
        }
        acc == 0
    }
}

/// Four-codewords-per-step table kernels for x86 tiers without gather
/// (SSE2): the lookups stay scalar but four independent syndrome chains run
/// concurrently, so the loads pipeline instead of serialising.
mod batched {
    use super::*;

    pub(super) fn secded64_words_clean(words: &[u64]) -> bool {
        let mut chunks = words.chunks_exact(4);
        let (mut a, mut b, mut c, mut d) = (0u32, 0u32, 0u32, 0u32);
        for q in &mut chunks {
            a |= vec64_syndrome(q[0]);
            b |= vec64_syndrome(q[1]);
            c |= vec64_syndrome(q[2]);
            d |= vec64_syndrome(q[3]);
        }
        for &w in chunks.remainder() {
            a |= vec64_syndrome(w);
        }
        (a | b | c | d) == 0
    }

    pub(super) fn secded128_words_clean(words: &[u64]) -> bool {
        let mut chunks = words.chunks_exact(4);
        let (mut a, mut b) = (0u32, 0u32);
        for q in &mut chunks {
            a |= vec128_syndrome(q[0], q[1]);
            b |= vec128_syndrome(q[2], q[3]);
        }
        let rem = chunks.remainder();
        if rem.len() == 2 {
            a |= vec128_syndrome(rem[0], rem[1]);
        }
        (a | b) == 0
    }

    pub(super) fn secded88_elements_clean(values: &[f64], cols: &[u32]) -> bool {
        let n = values.len().min(cols.len());
        let (mut a, mut b, mut c, mut d) = (0u32, 0u32, 0u32, 0u32);
        let mut k = 0;
        while k + 4 <= n {
            a |= elem88_syndrome(values[k], cols[k]);
            b |= elem88_syndrome(values[k + 1], cols[k + 1]);
            c |= elem88_syndrome(values[k + 2], cols[k + 2]);
            d |= elem88_syndrome(values[k + 3], cols[k + 3]);
            k += 4;
        }
        while k < n {
            a |= elem88_syndrome(values[k], cols[k]);
            k += 1;
        }
        (a | b | c | d) == 0
    }
}

/// SSE2 kernels: two 64-bit lanes per step for the parity folds.
#[cfg(target_arch = "x86_64")]
mod sse2 {
    /// 2-lane SED parity scan.
    pub(super) fn sed_words_clean(words: &[u64]) -> bool {
        // SAFETY: only installed in the dispatch table when SSE2 is
        // detected (SSE2 is baseline x86-64, but keep the contract uniform).
        unsafe { sed_words_clean_impl(words) }
    }

    #[target_feature(enable = "sse2")]
    unsafe fn sed_words_clean_impl(words: &[u64]) -> bool {
        use std::arch::x86_64::*;
        let mut chunks = words.chunks_exact(2);
        let mut acc = _mm_setzero_si128();
        for pair in &mut chunks {
            let mut v = _mm_loadu_si128(pair.as_ptr() as *const __m128i);
            v = _mm_xor_si128(v, _mm_srli_epi64::<32>(v));
            v = _mm_xor_si128(v, _mm_srli_epi64::<16>(v));
            v = _mm_xor_si128(v, _mm_srli_epi64::<8>(v));
            v = _mm_xor_si128(v, _mm_srli_epi64::<4>(v));
            v = _mm_xor_si128(v, _mm_srli_epi64::<2>(v));
            v = _mm_xor_si128(v, _mm_srli_epi64::<1>(v));
            acc = _mm_or_si128(acc, v);
        }
        let lanes = _mm_or_si128(acc, _mm_srli_si128::<8>(acc));
        let mut bad = (_mm_cvtsi128_si64(lanes) & 1) != 0;
        for &w in chunks.remainder() {
            bad |= (w.count_ones() & 1) != 0;
        }
        !bad
    }

    /// 2-lane SED element-parity scan (value bits XOR zero-extended column).
    pub(super) fn sed_elements_clean(values: &[f64], cols: &[u32]) -> bool {
        // SAFETY: installed only when SSE2 is detected.
        unsafe { sed_elements_clean_impl(values, cols) }
    }

    #[target_feature(enable = "sse2")]
    unsafe fn sed_elements_clean_impl(values: &[f64], cols: &[u32]) -> bool {
        use std::arch::x86_64::*;
        let n = values.len().min(cols.len());
        let mut acc = _mm_setzero_si128();
        let mut k = 0;
        while k + 2 <= n {
            let v = _mm_loadu_si128(values.as_ptr().add(k) as *const __m128i);
            // Zero-extend the two columns into 64-bit lanes.
            let c = _mm_set_epi64x(cols[k + 1] as i64, cols[k] as i64);
            let mut x = _mm_xor_si128(v, c);
            x = _mm_xor_si128(x, _mm_srli_epi64::<32>(x));
            x = _mm_xor_si128(x, _mm_srli_epi64::<16>(x));
            x = _mm_xor_si128(x, _mm_srli_epi64::<8>(x));
            x = _mm_xor_si128(x, _mm_srli_epi64::<4>(x));
            x = _mm_xor_si128(x, _mm_srli_epi64::<2>(x));
            x = _mm_xor_si128(x, _mm_srli_epi64::<1>(x));
            acc = _mm_or_si128(acc, x);
            k += 2;
        }
        let lanes = _mm_or_si128(acc, _mm_srli_si128::<8>(acc));
        let mut bad = (_mm_cvtsi128_si64(lanes) & 1) != 0;
        while k < n {
            bad |= ((values[k].to_bits().count_ones() + cols[k].count_ones()) & 1) != 0;
            k += 1;
        }
        !bad
    }
}

/// AVX2 kernels: 4-lane parity folds and 8-lane gathered syndrome lookups.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::tables;

    /// 4-lane SED parity scan.
    pub(super) fn sed_words_clean(words: &[u64]) -> bool {
        // SAFETY: installed in the dispatch table only when AVX2 is
        // detected at runtime.
        unsafe { sed_words_clean_impl(words) }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn sed_words_clean_impl(words: &[u64]) -> bool {
        use std::arch::x86_64::*;
        let mut chunks = words.chunks_exact(4);
        let mut acc = _mm256_setzero_si256();
        for quad in &mut chunks {
            let mut v = _mm256_loadu_si256(quad.as_ptr() as *const __m256i);
            v = _mm256_xor_si256(v, _mm256_srli_epi64::<32>(v));
            v = _mm256_xor_si256(v, _mm256_srli_epi64::<16>(v));
            v = _mm256_xor_si256(v, _mm256_srli_epi64::<8>(v));
            v = _mm256_xor_si256(v, _mm256_srli_epi64::<4>(v));
            v = _mm256_xor_si256(v, _mm256_srli_epi64::<2>(v));
            v = _mm256_xor_si256(v, _mm256_srli_epi64::<1>(v));
            acc = _mm256_or_si256(acc, v);
        }
        let ones = _mm256_set1_epi64x(1);
        let bad_mask = _mm256_and_si256(acc, ones);
        let mut bad = _mm256_testz_si256(bad_mask, bad_mask) == 0;
        for &w in chunks.remainder() {
            bad |= (w.count_ones() & 1) != 0;
        }
        !bad
    }

    /// 4-lane SED element-parity scan.
    pub(super) fn sed_elements_clean(values: &[f64], cols: &[u32]) -> bool {
        // SAFETY: installed only when AVX2 is detected.
        unsafe { sed_elements_clean_impl(values, cols) }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn sed_elements_clean_impl(values: &[f64], cols: &[u32]) -> bool {
        use std::arch::x86_64::*;
        let n = values.len().min(cols.len());
        let mut acc = _mm256_setzero_si256();
        let mut k = 0;
        while k + 4 <= n {
            let v = _mm256_loadu_si256(values.as_ptr().add(k) as *const __m256i);
            let c32 = _mm_loadu_si128(cols.as_ptr().add(k) as *const __m128i);
            let c = _mm256_cvtepu32_epi64(c32);
            let mut x = _mm256_xor_si256(v, c);
            x = _mm256_xor_si256(x, _mm256_srli_epi64::<32>(x));
            x = _mm256_xor_si256(x, _mm256_srli_epi64::<16>(x));
            x = _mm256_xor_si256(x, _mm256_srli_epi64::<8>(x));
            x = _mm256_xor_si256(x, _mm256_srli_epi64::<4>(x));
            x = _mm256_xor_si256(x, _mm256_srli_epi64::<2>(x));
            x = _mm256_xor_si256(x, _mm256_srli_epi64::<1>(x));
            acc = _mm256_or_si256(acc, x);
            k += 4;
        }
        let ones = _mm256_set1_epi64x(1);
        let bad_mask = _mm256_and_si256(acc, ones);
        let mut bad = _mm256_testz_si256(bad_mask, bad_mask) == 0;
        while k < n {
            bad |= ((values[k].to_bits().count_ones() + cols[k].count_ones()) & 1) != 0;
            k += 1;
        }
        !bad
    }

    /// Gathers the 8 per-byte-position table entries of one 64-bit storage
    /// word: lane `i` reads `table[i * 256 + byte_i(w) + base_lane * 256]`.
    ///
    /// Returns the 8 lanes un-reduced so callers can XOR several gathers
    /// before the horizontal fold.
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn gather8(
        table: &'static [u32],
        w: u64,
        offsets: std::arch::x86_64::__m256i,
    ) -> std::arch::x86_64::__m256i {
        use std::arch::x86_64::*;
        // The 8 bytes of `w`, zero-extended to 32-bit lanes.
        let bytes = _mm_set_epi64x(0, w as i64);
        let idx = _mm256_add_epi32(_mm256_cvtepu8_epi32(bytes), offsets);
        _mm256_i32gather_epi32::<4>(table.as_ptr() as *const i32, idx)
    }

    /// XOR-reduce 8 × u32 lanes to one u32.
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn xor_reduce(v: std::arch::x86_64::__m256i) -> u32 {
        use std::arch::x86_64::*;
        let lo = _mm256_castsi256_si128(v);
        let hi = _mm256_extracti128_si256::<1>(v);
        let x = _mm_xor_si128(lo, hi);
        let x = _mm_xor_si128(x, _mm_srli_si128::<8>(x));
        let x = _mm_xor_si128(x, _mm_srli_si128::<4>(x));
        _mm_cvtsi128_si32(x) as u32
    }

    /// Byte-position offsets 0, 256, 512, … for lanes 0–7 of a gather.
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn lane_offsets(base: i32) -> std::arch::x86_64::__m256i {
        use std::arch::x86_64::*;
        _mm256_add_epi32(
            _mm256_set1_epi32(base * 256),
            _mm256_setr_epi32(0, 256, 512, 768, 1024, 1280, 1536, 1792),
        )
    }

    pub(super) fn secded64_words_clean(words: &[u64]) -> bool {
        // SAFETY: installed only when AVX2 is detected.
        unsafe { secded64_words_clean_impl(words) }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn secded64_words_clean_impl(words: &[u64]) -> bool {
        use std::arch::x86_64::*;
        let table = &tables::VEC64[..];
        let offsets = lane_offsets(0);
        let mut chunks = words.chunks_exact(4);
        let mut acc = _mm256_setzero_si256();
        for quad in &mut chunks {
            // Four independent gathers per step: the syndromes of four
            // codewords are in flight at once and only the combined lanes
            // are tested.
            let s0 = gather8(table, quad[0], offsets);
            let s1 = gather8(table, quad[1], offsets);
            let s2 = gather8(table, quad[2], offsets);
            let s3 = gather8(table, quad[3], offsets);
            // Lanes of distinct words must not cancel each other: a clean
            // batch has every *individual* syndrome zero, so fold each
            // word's lanes and OR the results.  XOR within one word's lanes
            // is the reduction; OR across words preserves failures.
            let r01 = _mm256_or_si256(xor_pairwise(s0), xor_pairwise(s1));
            let r23 = _mm256_or_si256(xor_pairwise(s2), xor_pairwise(s3));
            acc = _mm256_or_si256(acc, _mm256_or_si256(r01, r23));
        }
        let mut bad = _mm256_testz_si256(acc, acc) == 0;
        for &w in chunks.remainder() {
            bad |= super::vec64_syndrome(w) != 0;
        }
        !bad
    }

    /// Reduces one word's 8 syndrome lanes by XOR into every lane (so an OR
    /// with other words' reductions keeps per-word failures visible).
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn xor_pairwise(v: std::arch::x86_64::__m256i) -> std::arch::x86_64::__m256i {
        use std::arch::x86_64::*;
        let swapped = _mm256_permute4x64_epi64::<0b01_00_11_10>(v);
        let x = _mm256_xor_si256(v, swapped);
        let x = _mm256_xor_si256(x, _mm256_shuffle_epi32::<0b01_00_11_10>(x));
        _mm256_xor_si256(x, _mm256_shuffle_epi32::<0b10_11_00_01>(x))
    }

    pub(super) fn secded128_words_clean(words: &[u64]) -> bool {
        // SAFETY: installed only when AVX2 is detected.
        unsafe { secded128_words_clean_impl(words) }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn secded128_words_clean_impl(words: &[u64]) -> bool {
        use std::arch::x86_64::*;
        let table = &tables::VEC128[..];
        let off_lo = lane_offsets(0);
        let off_hi = lane_offsets(8);
        let mut chunks = words.chunks_exact(4);
        let mut acc = _mm256_setzero_si256();
        for quad in &mut chunks {
            // Two codeword pairs per step; lanes of one pair XOR together
            // (both gathers belong to the same codeword), pairs OR.
            let p0 = _mm256_xor_si256(
                gather8(table, quad[0], off_lo),
                gather8(table, quad[1], off_hi),
            );
            let p1 = _mm256_xor_si256(
                gather8(table, quad[2], off_lo),
                gather8(table, quad[3], off_hi),
            );
            acc = _mm256_or_si256(acc, _mm256_or_si256(xor_pairwise(p0), xor_pairwise(p1)));
        }
        let mut bad = _mm256_testz_si256(acc, acc) == 0;
        let rem = chunks.remainder();
        if rem.len() == 2 {
            bad |= super::vec128_syndrome(rem[0], rem[1]) != 0;
        }
        !bad
    }

    pub(super) fn secded88_elements_clean(values: &[f64], cols: &[u32]) -> bool {
        // SAFETY: installed only when AVX2 is detected.
        unsafe { secded88_elements_clean_impl(values, cols) }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn secded88_elements_clean_impl(values: &[f64], cols: &[u32]) -> bool {
        use std::arch::x86_64::*;
        let table = &tables::ELEM88[..];
        let off_val = lane_offsets(0);
        // Column bytes live at byte positions 8–11; process two elements'
        // columns per 8-lane gather (lanes 0–3 element k, lanes 4–7
        // element k+1).
        let off_col = _mm256_add_epi32(
            _mm256_set1_epi32(8 * 256),
            _mm256_setr_epi32(0, 256, 512, 768, 0, 256, 512, 768),
        );
        let n = values.len().min(cols.len());
        let mut acc = _mm256_setzero_si256();
        let mut k = 0;
        while k + 2 <= n {
            let s0 = gather8(table, values[k].to_bits(), off_val);
            let s1 = gather8(table, values[k + 1].to_bits(), off_val);
            // Both columns' bytes in one gather.
            let col_bytes = _mm_set_epi64x(0, (cols[k] as u64 | (cols[k + 1] as u64) << 32) as i64);
            let cidx = _mm256_add_epi32(_mm256_cvtepu8_epi32(col_bytes), off_col);
            let sc = _mm256_i32gather_epi32::<4>(table.as_ptr() as *const i32, cidx);
            // Element k owns lanes 0–3 of `sc`, element k+1 lanes 4–7;
            // XOR-fold each element's value lanes down and combine with its
            // column lanes, then OR the two elements' residues.
            let c0 = _mm256_castsi256_si128(sc);
            let c1 = _mm256_extracti128_si256::<1>(sc);
            let r0 = xor_reduce(s0) ^ xor_reduce128(c0);
            let r1 = xor_reduce(s1) ^ xor_reduce128(c1);
            acc = _mm256_or_si256(acc, _mm256_set1_epi32((r0 | r1) as i32));
            k += 2;
        }
        let mut bad = _mm256_testz_si256(acc, acc) == 0;
        while k < n {
            bad |= super::elem88_syndrome(values[k], cols[k]) != 0;
            k += 1;
        }
        !bad
    }

    /// XOR-reduce 4 × u32 lanes to one u32.
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn xor_reduce128(v: std::arch::x86_64::__m128i) -> u32 {
        use std::arch::x86_64::*;
        let x = _mm_xor_si128(v, _mm_srli_si128::<8>(v));
        let x = _mm_xor_si128(x, _mm_srli_si128::<4>(x));
        _mm_cvtsi128_si32(x) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitops::low_mask;
    use crate::secded::{SECDED_118, SECDED_56, SECDED_88};

    /// Deterministic pattern generator.
    fn xorshift(x: &mut u64) -> u64 {
        *x ^= *x << 13;
        *x ^= *x >> 7;
        *x ^= *x << 17;
        *x
    }

    /// Encodes a clean SECDED64 vector word from raw payload bits.
    fn encode_vec64(payload56: u64) -> u64 {
        let payload = payload56 & low_mask(56);
        let red = SECDED_56.encode(&[payload]) as u64;
        (payload << 8) | red
    }

    /// Encodes a clean SECDED128 vector pair from raw payload bits.
    fn encode_vec128(p0: u64, p1: u64) -> (u64, u64) {
        let b0 = p0 & low_mask(59);
        let b1 = p1 & low_mask(59);
        let payload = [b0 | (b1 << 59), b1 >> 5];
        let red = SECDED_118.encode(&payload) as u64;
        ((b0 << 5) | (red & 0x1F), (b1 << 5) | ((red >> 5) & 0x07))
    }

    /// Encodes a clean SECDED88 element (value untouched, redundancy in the
    /// column's top byte).
    fn encode_elem88(value: f64, col24: u32) -> (f64, u32) {
        let col = col24 & 0x00FF_FFFF;
        let payload = [value.to_bits(), col as u64];
        let red = SECDED_88.encode(&payload) as u32;
        (value, col | (red << 24))
    }

    type WordImpl = (&'static str, fn(&[u64]) -> bool);
    type ElementImpl = (&'static str, fn(&[f64], &[u32]) -> bool);

    /// All implementations that must agree for a given predicate.
    fn word_impls(which: &str) -> Vec<WordImpl> {
        let mut impls: Vec<WordImpl> = Vec::new();
        match which {
            "sed" => {
                impls.push(("dispatch", sed_words_clean as fn(&[u64]) -> bool));
                impls.push(("scalar", scalar::sed_words_clean));
                #[cfg(target_arch = "x86_64")]
                {
                    impls.push(("sse2", sse2::sed_words_clean));
                    if std::arch::is_x86_feature_detected!("avx2") {
                        impls.push(("avx2", avx2::sed_words_clean));
                    }
                }
            }
            "secded64" => {
                impls.push(("dispatch", secded64_words_clean as fn(&[u64]) -> bool));
                impls.push(("scalar", scalar::secded64_words_clean));
                impls.push(("batched", batched::secded64_words_clean));
                #[cfg(target_arch = "x86_64")]
                if std::arch::is_x86_feature_detected!("avx2") {
                    impls.push(("avx2", avx2::secded64_words_clean));
                }
            }
            "secded128" => {
                impls.push(("dispatch", secded128_words_clean as fn(&[u64]) -> bool));
                impls.push(("scalar", scalar::secded128_words_clean));
                impls.push(("batched", batched::secded128_words_clean));
                #[cfg(target_arch = "x86_64")]
                if std::arch::is_x86_feature_detected!("avx2") {
                    impls.push(("avx2", avx2::secded128_words_clean));
                }
            }
            other => panic!("unknown predicate {other}"),
        }
        impls
    }

    fn element_impls() -> Vec<ElementImpl> {
        let mut impls: Vec<ElementImpl> = vec![
            ("dispatch", secded88_elements_clean),
            ("scalar", scalar::secded88_elements_clean),
            ("batched", batched::secded88_elements_clean),
        ];
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            impls.push(("avx2", avx2::secded88_elements_clean));
        }
        impls
    }

    #[test]
    fn vec64_syndrome_matches_group_verify() {
        let mut x = 0x1234_5678u64;
        for _ in 0..200 {
            let w = encode_vec64(xorshift(&mut x));
            assert_eq!(vec64_syndrome(w), 0, "clean word {w:#x}");
            for bit in 0..64 {
                let bad = w ^ (1u64 << bit);
                let expect = bad & 0x80 == 0 && SECDED_56.verify(&[bad >> 8], (bad & 0x7F) as u16);
                assert_eq!(vec64_syndrome(bad) == 0, expect, "bit {bit} of {w:#x}");
            }
        }
    }

    #[test]
    fn vec128_syndrome_matches_group_verify() {
        let mut x = 0xDEAD_BEEFu64;
        for _ in 0..100 {
            let (w0, w1) = encode_vec128(xorshift(&mut x), xorshift(&mut x));
            assert_eq!(vec128_syndrome(w0, w1), 0);
            for bit in 0..128 {
                let (mut b0, mut b1) = (w0, w1);
                if bit < 64 {
                    b0 ^= 1u64 << bit;
                } else {
                    b1 ^= 1u64 << (bit - 64);
                }
                let payload = [(b0 >> 5) | (b1 >> 5) << 59, (b1 >> 5) >> 5];
                let stored = ((b0 & 0x1F) | ((b1 & 0x07) << 5)) as u16;
                let expect = b1 & 0x18 == 0 && SECDED_118.verify(&payload, stored);
                assert_eq!(vec128_syndrome(b0, b1) == 0, expect, "bit {bit}");
            }
        }
    }

    #[test]
    fn elem88_syndrome_matches_code_verify() {
        let mut x = 0xABCDu64;
        for _ in 0..100 {
            let value = f64::from_bits(xorshift(&mut x));
            let (v, c) = encode_elem88(value, xorshift(&mut x) as u32);
            assert_eq!(elem88_syndrome(v, c), 0);
            for bit in 0..96 {
                let (mut vb, mut cb) = (v.to_bits(), c);
                if bit < 64 {
                    vb ^= 1u64 << bit;
                } else {
                    cb ^= 1u32 << (bit - 64);
                }
                let payload = [vb, (cb & 0x00FF_FFFF) as u64];
                let expect = SECDED_88.verify(&payload, (cb >> 24) as u16);
                assert_eq!(
                    elem88_syndrome(f64::from_bits(vb), cb) == 0,
                    expect,
                    "bit {bit}"
                );
            }
        }
    }

    #[test]
    fn all_word_impls_agree_on_random_runs_and_faults() {
        let mut x = 7u64;
        for which in ["sed", "secded64", "secded128"] {
            let impls = word_impls(which);
            for len in [0usize, 1, 2, 3, 4, 5, 7, 8, 15, 31, 64, 127] {
                let len = if which == "secded128" { len & !1 } else { len };
                let mut words: Vec<u64> = (0..len)
                    .map(|_| match which {
                        "sed" => {
                            let p = xorshift(&mut x) & !1;
                            p | (p.count_ones() as u64 & 1)
                        }
                        "secded64" => encode_vec64(xorshift(&mut x)),
                        _ => 0,
                    })
                    .collect();
                if which == "secded128" {
                    for pair in words.chunks_exact_mut(2) {
                        let (w0, w1) = encode_vec128(xorshift(&mut x), xorshift(&mut x));
                        pair[0] = w0;
                        pair[1] = w1;
                    }
                }
                for (name, f) in &impls {
                    assert!(f(&words), "{which}/{name} clean len={len}");
                }
                if len == 0 {
                    continue;
                }
                // Single- and double-bit faults anywhere must produce the
                // same verdict from every implementation.
                for trial in 0..20 {
                    let mut bad = words.clone();
                    let i = (xorshift(&mut x) as usize) % len;
                    bad[i] ^= 1u64 << (xorshift(&mut x) % 64);
                    if trial % 2 == 0 {
                        let j = (xorshift(&mut x) as usize) % len;
                        bad[j] ^= 1u64 << (xorshift(&mut x) % 64);
                    }
                    let reference = impls[1].1(&bad);
                    for (name, f) in &impls {
                        assert_eq!(f(&bad), reference, "{which}/{name} len={len} trial={trial}");
                    }
                }
            }
        }
    }

    #[test]
    fn all_element_impls_agree_on_random_runs_and_faults() {
        let impls = element_impls();
        let mut x = 99u64;
        for len in [0usize, 1, 2, 3, 5, 8, 13, 64, 129] {
            let mut values = Vec::new();
            let mut cols = Vec::new();
            for _ in 0..len {
                let (v, c) =
                    encode_elem88(f64::from_bits(xorshift(&mut x)), xorshift(&mut x) as u32);
                values.push(v);
                cols.push(c);
            }
            for (name, f) in &impls {
                assert!(f(&values, &cols), "{name} clean len={len}");
            }
            if len == 0 {
                continue;
            }
            for trial in 0..20 {
                let mut bv = values.clone();
                let mut bc = cols.clone();
                let i = (xorshift(&mut x) as usize) % len;
                let bit = xorshift(&mut x) % 96;
                if bit < 64 {
                    bv[i] = f64::from_bits(bv[i].to_bits() ^ (1u64 << bit));
                } else {
                    bc[i] ^= 1u32 << (bit - 64);
                }
                if trial % 2 == 0 {
                    let j = (xorshift(&mut x) as usize) % len;
                    bv[j] = f64::from_bits(bv[j].to_bits() ^ (1u64 << (xorshift(&mut x) % 64)));
                }
                let reference = impls[1].1(&bv, &bc);
                for (name, f) in &impls {
                    assert_eq!(f(&bv, &bc), reference, "{name} len={len} trial={trial}");
                }
            }
        }
    }

    #[test]
    fn sed_element_impls_agree() {
        let mut impls: Vec<ElementImpl> = vec![
            ("dispatch", sed_elements_clean),
            ("scalar", scalar::sed_elements_clean),
        ];
        #[cfg(target_arch = "x86_64")]
        {
            impls.push(("sse2", sse2::sed_elements_clean));
            if std::arch::is_x86_feature_detected!("avx2") {
                impls.push(("avx2", avx2::sed_elements_clean));
            }
        }
        let mut x = 3u64;
        for len in [0usize, 1, 2, 3, 4, 5, 9, 33, 100] {
            let mut values = Vec::new();
            let mut cols = Vec::new();
            for _ in 0..len {
                // Even combined parity: fold the value's parity into the
                // column's top bit.
                let v = xorshift(&mut x);
                let c = (xorshift(&mut x) as u32) & 0x7FFF_FFFF;
                let p = (v.count_ones() + c.count_ones()) & 1;
                values.push(f64::from_bits(v));
                cols.push(c | (p << 31));
            }
            for (name, f) in &impls {
                assert!(f(&values, &cols), "{name} clean len={len}");
            }
            if len == 0 {
                continue;
            }
            for _ in 0..10 {
                let mut bv = values.clone();
                let i = (xorshift(&mut x) as usize) % len;
                bv[i] = f64::from_bits(bv[i].to_bits() ^ (1u64 << (xorshift(&mut x) % 64)));
                for (name, f) in &impls {
                    assert!(!f(&bv, &cols), "{name} fault undetected len={len}");
                }
            }
        }
    }

    #[test]
    fn dispatch_reports_an_isa() {
        let isa = detected_isa();
        assert!(!isa.label().is_empty());
        // The dispatch is memoised: repeated calls return the same ISA.
        assert_eq!(detected_isa(), isa);
    }
}
