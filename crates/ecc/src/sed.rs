//! Single Error Detection (SED) — parity codes.
//!
//! SED is the cheapest code considered by the paper (§IV): a single parity
//! bit added to the payload gives a minimum Hamming distance of 2, which
//! detects every odd number of bit flips (and in particular every single
//! flip) but corrects nothing and misses every even number of flips.
//!
//! The ABFT schemes store the parity bit inside the protected structure
//! itself (the top bit of a CSR column index, the top bit of a row-pointer
//! entry, or the least-significant mantissa bit of an `f64`), so the
//! functions here simply compute parities; the embedding is done by
//! `abft-core`.

/// Parity (XOR-reduction) of a 32-bit word: `1` if the number of set bits is
/// odd, `0` otherwise.
#[inline]
pub fn parity_u32(x: u32) -> u32 {
    x.count_ones() & 1
}

/// Parity of a 64-bit word.
#[inline]
pub fn parity_u64(x: u64) -> u32 {
    x.count_ones() & 1
}

/// Parity of a 128-bit word.
#[inline]
pub fn parity_u128(x: u128) -> u32 {
    x.count_ones() & 1
}

/// Parity of an arbitrary word slice (the XOR of all bits).
#[inline]
pub fn parity_words(words: &[u64]) -> u32 {
    let folded = words.iter().fold(0u64, |acc, w| acc ^ w);
    parity_u64(folded)
}

/// Parity of a 96-bit CSR element formed from a 64-bit value pattern and a
/// 32-bit column index (the layout of Figure 1(a) in the paper).
#[inline]
pub fn parity_csr_element(value_bits: u64, col_index: u32) -> u32 {
    parity_u64(value_bits) ^ parity_u32(col_index)
}

/// Computes the even-parity bit for `data`: returned bit makes the total
/// parity of `data` plus the bit equal to zero.
#[inline]
pub fn even_parity_bit_u64(data: u64) -> u32 {
    parity_u64(data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parity_small_values() {
        assert_eq!(parity_u32(0), 0);
        assert_eq!(parity_u32(1), 1);
        assert_eq!(parity_u32(0b11), 0);
        assert_eq!(parity_u32(u32::MAX), 0);
        assert_eq!(parity_u64(0b111), 1);
        assert_eq!(parity_u64(u64::MAX), 0);
        assert_eq!(parity_u128(1u128 << 100), 1);
    }

    #[test]
    fn parity_words_matches_scalar() {
        let words = [0xDEAD_BEEF_u64, 0x1234_5678_9ABC_DEF0, 0x1];
        let expected = parity_u64(words[0]) ^ parity_u64(words[1]) ^ parity_u64(words[2]);
        assert_eq!(parity_words(&words), expected);
        assert_eq!(parity_words(&[]), 0);
    }

    #[test]
    fn csr_element_parity_combines_both_fields() {
        assert_eq!(parity_csr_element(0, 0), 0);
        assert_eq!(parity_csr_element(1, 0), 1);
        assert_eq!(parity_csr_element(0, 1), 1);
        assert_eq!(parity_csr_element(1, 1), 0);
        let v = 0x3FF0_0000_0000_0001_u64; // some double pattern
        let c = 12345u32;
        assert_eq!(parity_csr_element(v, c), parity_u64(v) ^ parity_u32(c));
    }

    #[test]
    fn single_flip_always_changes_parity() {
        let data = 0xA5A5_5A5A_0F0F_F0F0_u64;
        let p = parity_u64(data);
        for bit in 0..64 {
            let flipped = data ^ (1u64 << bit);
            assert_ne!(parity_u64(flipped), p, "flip at bit {bit} went undetected");
        }
    }

    #[test]
    fn double_flip_is_invisible_to_parity() {
        let data = 0x0123_4567_89AB_CDEF_u64;
        let p = parity_u64(data);
        let flipped = data ^ 0b101; // two flips
        assert_eq!(parity_u64(flipped), p);
    }

    #[test]
    fn even_parity_bit_zeroes_total_parity() {
        for data in [0u64, 1, 0xFFFF, u64::MAX, 0x8000_0000_0000_0001] {
            let p = even_parity_bit_u64(data);
            assert_eq!(parity_u64(data) ^ p, 0);
        }
    }
}
