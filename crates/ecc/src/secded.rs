//! SECDED — Single Error Correction, Double Error Detection extended Hamming
//! codes (§IV of the paper).
//!
//! The implementation is a classic extended Hamming code: `r` check bits sit
//! (conceptually) at the power-of-two positions of the codeword and an
//! overall parity bit covers the whole codeword.  A single bit flip is
//! located by the syndrome and repaired; two flips are detected but not
//! correctable; three or more flips may alias (which is exactly the SDC risk
//! the paper discusses).
//!
//! The code is generic over the data width (up to 128 bits), because the
//! ABFT layouts need several odd widths besides the textbook 64/128:
//!
//! | constant | data bits | redundancy bits | used for |
//! |---|---|---|---|
//! | [`SECDED_64`]  | 64  | 8 | one `f64` of a dense vector (8 mantissa LSBs reused) |
//! | [`SECDED_128`] | 128 | 9 | two `f64`s of a dense vector (5 mantissa LSBs each) |
//! | [`SECDED_88`]  | 88  | 8 | a CSR element: 64-bit value + 24-bit column index |
//! | [`SECDED_56`]  | 56  | 7 | two row-pointer entries (28 payload bits each) |
//! | [`SECDED_112`] | 112 | 8 | four row-pointer entries (28 payload bits each) |
//! | [`SECDED_118`] | 118 | 8 | two `f64`s with 5 LSBs masked (59 payload bits each) |
//! | [`SECDED_176`] | 176 | 9 | a pair of CSR elements (value + 24-bit index, twice) |
//!
//! The check bits and the overall parity are computed together through a
//! compile-time byte-wise **syndrome table**: entry `table[p][b]` is the XOR
//! of the codeword-position columns of every set bit of byte value `b` at
//! byte position `p`, with the overall-parity contribution folded into one
//! extra table bit.  A full check of an 88-bit codeword is then 11 table
//! lookups and XORs — no per-bit popcounts — which keeps the cost low even
//! on targets whose baseline ISA lacks a popcount instruction (the SpMV
//! inner loop runs one of these per matrix element).

use crate::bitops;

/// Maximum number of 64-bit words a SECDED payload may span.
pub const MAX_WORDS: usize = 3;
/// Maximum number of Hamming check bits (excluding the overall parity bit).
pub const MAX_CHECKS: usize = 8;

/// Result of a SECDED integrity check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeOutcome {
    /// The codeword is consistent.
    NoError,
    /// A single flipped data bit was located (payload bit index); when using
    /// [`Secded::check_and_correct`] it has already been repaired.
    CorrectedData(usize),
    /// A single flip was located in the redundancy bits themselves; the data
    /// is intact but the stored redundancy should be re-encoded.
    CorrectedRedundancy,
    /// Two (or an even number > 0 of) bit flips were detected; the codeword
    /// cannot be repaired.
    Uncorrectable,
}

impl DecodeOutcome {
    /// True when the data can be used (clean or repaired).
    #[inline]
    pub fn data_ok(self) -> bool {
        !matches!(self, DecodeOutcome::Uncorrectable)
    }

    /// True when any error was observed.
    #[inline]
    pub fn is_error(self) -> bool {
        !matches!(self, DecodeOutcome::NoError)
    }
}

/// An extended Hamming SECDED code for a fixed data width.
#[derive(Debug, Clone)]
pub struct Secded {
    data_bits: usize,
    words: usize,
    check_bits: u32,
    /// Byte-wise syndrome table: `table[p][b]` is the XOR of the column
    /// patterns (Hamming codeword position plus the overall-parity bit at
    /// position `check_bits`) of every set bit of byte value `b` at payload
    /// byte position `p`.
    table: [[u16; 256]; MAX_WORDS * 8],
}

/// Codeword position (1-indexed, power-of-two positions reserved for check
/// bits) of data bit `j`.
pub(crate) const fn data_bit_position(j: usize) -> usize {
    // Walk codeword positions, skipping powers of two, until we have passed
    // `j` data positions.
    let mut pos = 1usize;
    let mut seen = 0usize;
    loop {
        if !pos.is_power_of_two() {
            if seen == j {
                return pos;
            }
            seen += 1;
        }
        pos += 1;
    }
}

/// Inverse of [`data_bit_position`]: the payload bit index stored at codeword
/// position `pos`, assuming `pos` is not a power of two.
#[inline]
fn position_to_data_bit(pos: usize) -> usize {
    // Positions 1..=pos contain `ilog2(pos)+1` power-of-two slots.
    pos - 2 - pos.ilog2() as usize
}

/// Smallest `r` such that `2^r >= data_bits + r + 1`.
const fn required_check_bits(data_bits: usize) -> u32 {
    let mut r = 1u32;
    while (1usize << r) < data_bits + r as usize + 1 {
        r += 1;
    }
    r
}

impl Secded {
    /// Builds the code for `data_bits` bits of payload (`1..=192`).
    pub const fn new(data_bits: usize) -> Self {
        assert!(data_bits >= 1 && data_bits <= MAX_WORDS * 64);
        let check_bits = required_check_bits(data_bits);
        assert!(check_bits as usize <= MAX_CHECKS);
        let mut table = [[0u16; 256]; MAX_WORDS * 8];
        let mut j = 0usize;
        while j < data_bits {
            // The Hamming construction guarantees pos < 2^check_bits, so the
            // column pattern (position bits + overall-parity bit just above
            // them) fits a u16 for every code this crate defines.
            let pos = data_bit_position(j);
            let column = (pos as u16) | (1u16 << check_bits);
            let byte = j / 8;
            let bit = j % 8;
            let mut b = 0usize;
            while b < 256 {
                if b & (1usize << bit) != 0 {
                    table[byte][b] ^= column;
                }
                b += 1;
            }
            j += 1;
        }
        Secded {
            data_bits,
            words: data_bits.div_ceil(64),
            check_bits,
            table,
        }
    }

    /// Number of payload bits protected by this code.
    #[inline]
    pub const fn data_bits(&self) -> usize {
        self.data_bits
    }

    /// Number of 64-bit words the payload spans.
    #[inline]
    pub const fn words(&self) -> usize {
        self.words
    }

    /// Total redundancy bits: Hamming check bits plus the overall parity bit.
    #[inline]
    pub const fn redundancy_bits(&self) -> u32 {
        self.check_bits + 1
    }

    /// One pass over the payload bytes computing the Hamming check bits (low
    /// `check_bits` bits) together with the payload parity (the next bit up):
    /// `words × 8` table lookups, no popcounts.
    #[inline]
    fn syndrome_word(&self, data: &[u64]) -> u16 {
        debug_assert!(data.len() >= self.words);
        debug_assert!(self.unused_bits_clear(data), "payload has stray high bits");
        let mut s = 0u16;
        for (w, &word) in data[..self.words].iter().enumerate() {
            let base = w * 8;
            for i in 0..8 {
                s ^= self.table[base + i][((word >> (i * 8)) & 0xFF) as usize];
            }
        }
        s
    }

    #[inline]
    fn unused_bits_clear(&self, data: &[u64]) -> bool {
        let rem = self.data_bits % 64;
        if rem == 0 {
            true
        } else {
            data[self.words - 1] & !bitops::low_mask(rem as u32) == 0
        }
    }

    /// Encodes `data`, returning the redundancy bits: Hamming check bits in
    /// the low positions and the overall (codeword) parity bit just above
    /// them.
    #[inline]
    pub fn encode(&self, data: &[u64]) -> u16 {
        let s = self.syndrome_word(data);
        let checks = s & ((1u16 << self.check_bits) - 1);
        let data_parity = (s >> self.check_bits) & 1;
        let overall = data_parity ^ (checks.count_ones() as u16 & 1);
        checks | (overall << self.check_bits)
    }

    /// Verifies `data` against the stored redundancy without modifying the
    /// payload.  A located single data-bit error is reported but not fixed.
    #[inline]
    pub fn check(&self, data: &[u64], stored: u16) -> DecodeOutcome {
        self.classify(data, stored).0
    }

    /// Check-only fast path: `true` exactly when [`Secded::check`] would
    /// return [`DecodeOutcome::NoError`], computed with the single syndrome
    /// pass and none of the correction machinery.  This is the bulk entry
    /// point of the masked-slice vector kernels, which verify every codeword
    /// group up front and fall back to the correcting decode only for the
    /// (rare) groups where this predicate fails.
    #[inline]
    pub fn verify(&self, data: &[u64], stored: u16) -> bool {
        let s = self.syndrome_word(data);
        let stored_checks = stored & ((1u16 << self.check_bits) - 1);
        let computed_checks = s & ((1u16 << self.check_bits) - 1);
        if stored_checks != computed_checks {
            return false;
        }
        let data_parity = ((s >> self.check_bits) & 1) as u32;
        let stored_parity = ((stored >> self.check_bits) & 1) as u32;
        data_parity ^ (stored_checks.count_ones() & 1) ^ stored_parity == 0
    }

    /// Verifies `data` against the stored redundancy and repairs a single
    /// data-bit flip in place.
    #[inline]
    pub fn check_and_correct(&self, data: &mut [u64], stored: u16) -> DecodeOutcome {
        let (outcome, fix) = self.classify(data, stored);
        if let Some(bit) = fix {
            bitops::flip_bit(data, bit);
        }
        outcome
    }

    /// Shared classification logic.  Returns the outcome and, for a single
    /// data-bit error, the payload bit index to flip.
    #[inline]
    fn classify(&self, data: &[u64], stored: u16) -> (DecodeOutcome, Option<usize>) {
        let stored_checks = stored & ((1u16 << self.check_bits) - 1);
        let stored_parity = (stored >> self.check_bits) & 1;
        let s = self.syndrome_word(data);
        let computed_checks = s & ((1u16 << self.check_bits) - 1);
        let data_parity = ((s >> self.check_bits) & 1) as u32;
        let syndrome = (stored_checks ^ computed_checks) as usize;

        // Parity of the received codeword = data parity ^ stored check bits ^ stored parity bit.
        let received_parity =
            data_parity ^ (stored_checks.count_ones() & 1) ^ (stored_parity as u32);

        match (syndrome, received_parity) {
            (0, 0) => (DecodeOutcome::NoError, None),
            (0, _) => {
                // Only the overall parity bit flipped; payload and checks intact.
                (DecodeOutcome::CorrectedRedundancy, None)
            }
            (s, 1) => {
                if s.is_power_of_two() {
                    // A check bit flipped.
                    (DecodeOutcome::CorrectedRedundancy, None)
                } else {
                    let bit = position_to_data_bit(s);
                    if bit < self.data_bits {
                        (DecodeOutcome::CorrectedData(bit), Some(bit))
                    } else {
                        // Syndrome points outside the codeword: at least three
                        // flips; report as uncorrectable rather than corrupt
                        // the payload further.
                        (DecodeOutcome::Uncorrectable, None)
                    }
                }
            }
            (_, _) => (DecodeOutcome::Uncorrectable, None),
        }
    }
}

/// (72,64) SECDED protecting one 64-bit word with 8 redundancy bits.
pub static SECDED_64: Secded = Secded::new(64);
/// (137,128) SECDED protecting two 64-bit words with 9 redundancy bits.
pub static SECDED_128: Secded = Secded::new(128);
/// SECDED over the 88 payload bits of a CSR element (64-bit value + 24-bit
/// column index); its 8 redundancy bits fit the spare index bits.
pub static SECDED_88: Secded = Secded::new(88);
/// SECDED over two row-pointer entries (2 × 28 payload bits).
pub static SECDED_56: Secded = Secded::new(56);
/// SECDED over four row-pointer entries (4 × 28 payload bits).
pub static SECDED_112: Secded = Secded::new(112);
/// SECDED over two dense-vector doubles with their 5 least-significant
/// mantissa bits masked (2 × 59 payload bits).
pub static SECDED_118: Secded = Secded::new(118);
/// SECDED over a pair of CSR elements (2 × (64-bit value + 24-bit column
/// index)) — the SECDED128-style grouping for matrix elements.
pub static SECDED_176: Secded = Secded::new(176);

#[cfg(test)]
mod tests {
    use super::*;

    fn all_codes() -> Vec<&'static Secded> {
        vec![
            &SECDED_64,
            &SECDED_128,
            &SECDED_88,
            &SECDED_56,
            &SECDED_112,
            &SECDED_118,
            &SECDED_176,
        ]
    }

    fn sample_payload(code: &Secded, seed: u64) -> Vec<u64> {
        // Simple deterministic pattern generator (xorshift), masked to width.
        let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let mut data = vec![0u64; code.words()];
        for w in data.iter_mut() {
            *w = next();
        }
        let rem = code.data_bits() % 64;
        if rem != 0 {
            let last = data.len() - 1;
            data[last] &= crate::bitops::low_mask(rem as u32);
        }
        data
    }

    #[test]
    fn redundancy_bit_counts_match_paper() {
        assert_eq!(SECDED_64.redundancy_bits(), 8);
        assert_eq!(SECDED_128.redundancy_bits(), 9);
        assert_eq!(SECDED_88.redundancy_bits(), 8);
        assert_eq!(SECDED_56.redundancy_bits(), 7);
        assert_eq!(SECDED_112.redundancy_bits(), 8);
        assert_eq!(SECDED_118.redundancy_bits(), 8);
        assert_eq!(SECDED_176.redundancy_bits(), 9);
    }

    #[test]
    fn clean_codeword_checks_clean() {
        for code in all_codes() {
            for seed in 1..20u64 {
                let data = sample_payload(code, seed);
                let red = code.encode(&data);
                assert_eq!(code.check(&data, red), DecodeOutcome::NoError);
                assert!(code.verify(&data, red));
            }
        }
    }

    #[test]
    fn verify_agrees_with_check_on_every_single_flip() {
        for code in all_codes() {
            let data = sample_payload(code, 13);
            let red = code.encode(&data);
            for bit in 0..code.data_bits() {
                let mut corrupted = data.clone();
                crate::bitops::flip_bit(&mut corrupted, bit);
                assert!(!code.verify(&corrupted, red), "data bit {bit}");
            }
            for bit in 0..code.redundancy_bits() {
                assert!(!code.verify(&data, red ^ (1u16 << bit)), "red bit {bit}");
            }
        }
    }

    #[test]
    fn every_single_data_flip_is_corrected() {
        for code in all_codes() {
            let data = sample_payload(code, 7);
            let red = code.encode(&data);
            for bit in 0..code.data_bits() {
                let mut corrupted = data.clone();
                crate::bitops::flip_bit(&mut corrupted, bit);
                let outcome = code.check_and_correct(&mut corrupted, red);
                assert_eq!(
                    outcome,
                    DecodeOutcome::CorrectedData(bit),
                    "width {} bit {bit}",
                    code.data_bits()
                );
                assert_eq!(corrupted, data, "payload not restored");
            }
        }
    }

    #[test]
    fn every_single_redundancy_flip_is_flagged_without_touching_data() {
        for code in all_codes() {
            let data = sample_payload(code, 11);
            let red = code.encode(&data);
            for bit in 0..code.redundancy_bits() {
                let corrupted_red = red ^ (1u16 << bit);
                let mut payload = data.clone();
                let outcome = code.check_and_correct(&mut payload, corrupted_red);
                assert_eq!(outcome, DecodeOutcome::CorrectedRedundancy);
                assert_eq!(payload, data);
            }
        }
    }

    #[test]
    fn every_double_data_flip_is_detected_not_miscorrected() {
        // Exhaustive over the 56-bit code, sampled pairs for the wider ones.
        let code = &SECDED_56;
        let data = sample_payload(code, 3);
        let red = code.encode(&data);
        for a in 0..code.data_bits() {
            for b in (a + 1)..code.data_bits() {
                let mut corrupted = data.clone();
                crate::bitops::flip_bit(&mut corrupted, a);
                crate::bitops::flip_bit(&mut corrupted, b);
                assert_eq!(
                    code.check(&corrupted, red),
                    DecodeOutcome::Uncorrectable,
                    "double flip ({a},{b}) not detected"
                );
            }
        }
    }

    #[test]
    fn double_flip_data_plus_redundancy_is_detected() {
        let code = &SECDED_64;
        let data = sample_payload(code, 5);
        let red = code.encode(&data);
        for dbit in (0..code.data_bits()).step_by(7) {
            for rbit in 0..code.redundancy_bits() {
                let mut corrupted = data.clone();
                crate::bitops::flip_bit(&mut corrupted, dbit);
                let bad_red = red ^ (1u16 << rbit);
                assert_eq!(
                    code.check(&corrupted, bad_red),
                    DecodeOutcome::Uncorrectable
                );
            }
        }
    }

    #[test]
    fn position_mapping_is_consistent() {
        for j in 0..256usize {
            let pos = data_bit_position(j);
            assert!(!pos.is_power_of_two());
            assert_eq!(position_to_data_bit(pos), j);
        }
    }

    #[test]
    fn check_bit_requirements() {
        assert_eq!(required_check_bits(64), 7);
        assert_eq!(required_check_bits(128), 8);
        assert_eq!(required_check_bits(88), 7);
        assert_eq!(required_check_bits(56), 6);
        assert_eq!(required_check_bits(112), 7);
        assert_eq!(required_check_bits(118), 7);
        assert_eq!(required_check_bits(1), 2);
        assert_eq!(required_check_bits(4), 3);
        assert_eq!(required_check_bits(11), 4);
    }

    #[test]
    fn outcome_helpers() {
        assert!(DecodeOutcome::NoError.data_ok());
        assert!(!DecodeOutcome::NoError.is_error());
        assert!(DecodeOutcome::CorrectedData(3).data_ok());
        assert!(DecodeOutcome::CorrectedData(3).is_error());
        assert!(DecodeOutcome::CorrectedRedundancy.data_ok());
        assert!(!DecodeOutcome::Uncorrectable.data_ok());
        assert!(DecodeOutcome::Uncorrectable.is_error());
    }
}
