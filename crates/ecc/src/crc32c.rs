//! CRC-32C (Castagnoli) — the checksum code used for whole-row / multi-element
//! protection (§IV of the paper).
//!
//! CRC32C is attractive for ABFT because:
//!
//! * its generator polynomial contains an `(x + 1)` factor, so **all odd-weight
//!   errors** are detected, as are burst errors up to 32 bits long;
//! * for codewords between 178 and 5243 bits its minimum Hamming distance is 6
//!   (Koopman 2002), so up to 5 arbitrary flips per codeword are detected, and
//!   the redundancy can alternatively be spent on correction (2EC3ED, 1EC4ED —
//!   see [`crate::correction`]);
//! * modern Intel (SSE4.2) and ARMv8 CPUs compute it in hardware.
//!
//! Several backends are provided and selected at runtime:
//!
//! * [`Crc32cBackend::Naive`] — bit-at-a-time long division, the reference
//!   implementation used to validate the others;
//! * [`Crc32cBackend::SlicingBy4`] / [`Crc32cBackend::SlicingBy8`] /
//!   [`Crc32cBackend::SlicingBy16`] — the table-driven software algorithm
//!   the paper uses when no hardware support exists, at three slicing
//!   widths.  Wider slicing amortises better on long inputs but touches
//!   more table cache lines, which dominates on the ~60-byte TeaLeaf row
//!   codewords — hence the width family instead of a single fixed width;
//! * [`Crc32cBackend::Hardware`] — the `crc32` instruction on x86-64 with
//!   SSE4.2 (and AArch64 with the CRC extension), the paper's
//!   "hardware accelerated CRC32C";
//! * [`Crc32cBackend::Auto`] — hardware when the CPU has it, otherwise the
//!   slicing width chosen **per input length** from the measured crossover
//!   policy ([`auto_software_width`]).  [`Crc32c::auto`] is the recommended
//!   constructor.
//!
//! Hardware support is probed **once** per process (a `OnceLock`), not per
//! construction or per update; setting `ABFT_ECC_FORCE_SCALAR=1` before the
//! first use disables the hardware path (and the SIMD verify kernels — see
//! [`crate::verify`]), pinning everything to the portable software
//! implementations.

/// The CRC-32C (Castagnoli) polynomial in reflected (LSB-first) form.
pub const CRC32C_POLY_REFLECTED: u32 = 0x82F6_3B78;
/// The CRC-32C polynomial in normal (MSB-first) form.
pub const CRC32C_POLY_NORMAL: u32 = 0x1EDC_6F41;

/// Number of slices used by the table-driven software implementation.
const SLICES: usize = 16;

/// Lookup tables for slicing-by-16, generated at compile time.
///
/// `TABLES[0]` is the classic byte-at-a-time table; `TABLES[k][b]` is the CRC
/// contribution of byte `b` positioned `k` bytes before the end of a 16-byte
/// block.
static TABLES: [[u32; 256]; SLICES] = generate_tables();

const fn generate_tables() -> [[u32; 256]; SLICES] {
    let mut tables = [[0u32; 256]; SLICES];
    // Table 0: one byte of input processed bit by bit.
    let mut b = 0usize;
    while b < 256 {
        let mut crc = b as u32;
        let mut k = 0;
        while k < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ CRC32C_POLY_REFLECTED
            } else {
                crc >> 1
            };
            k += 1;
        }
        tables[0][b] = crc;
        b += 1;
    }
    // Table i: table i-1 advanced by one more zero byte.
    let mut i = 1usize;
    while i < SLICES {
        let mut b = 0usize;
        while b < 256 {
            let prev = tables[i - 1][b];
            tables[i][b] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            b += 1;
        }
        i += 1;
    }
    tables
}

/// Which implementation computes the checksum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Crc32cBackend {
    /// Bit-at-a-time reference implementation (slow; for validation).
    Naive,
    /// Table-driven slicing-by-4: 4 input bytes per step, 4 KiB of tables.
    /// Lowest setup cost — wins on short codewords.
    SlicingBy4,
    /// Table-driven slicing-by-8: 8 input bytes per step, 8 KiB of tables.
    SlicingBy8,
    /// Table-driven slicing-by-16 (the paper's software fallback): 16 input
    /// bytes per step, 16 KiB of tables.  Wins on long inputs.
    SlicingBy16,
    /// Hardware `crc32` instructions (SSE4.2 / ARMv8-CRC).
    Hardware,
    /// Hardware when available, otherwise the slicing width selected per
    /// input length by [`auto_software_width`].
    Auto,
}

/// A CRC32C calculator bound to a backend.
#[derive(Debug, Clone, Copy)]
pub struct Crc32c {
    backend: Crc32cBackend,
}

impl Default for Crc32c {
    fn default() -> Self {
        Self::best()
    }
}

impl Crc32c {
    /// Uses the requested backend.  Falls back to slicing-by-16 if hardware
    /// support is requested but not present on this CPU.
    pub fn new(backend: Crc32cBackend) -> Self {
        let backend = match backend {
            Crc32cBackend::Hardware if !hardware_available() => Crc32cBackend::SlicingBy16,
            other => other,
        };
        Crc32c { backend }
    }

    /// The measured selection policy: the hardware instruction when the CPU
    /// has one, otherwise the slicing width matched to each input's length
    /// (see [`auto_software_width`]).  This is the constructor the protected
    /// structures should use unless an experiment sweeps backends
    /// explicitly.
    ///
    /// ```
    /// use abft_ecc::{Crc32c, Crc32cBackend};
    /// let auto = Crc32c::auto();
    /// // The selection never changes the checksum, only the speed: every
    /// // backend computes the same CRC32C.
    /// let reference = Crc32c::new(Crc32cBackend::Naive);
    /// for len in [0usize, 3, 8, 60, 200] {
    ///     let data: Vec<u8> = (0..len as u8).collect();
    ///     assert_eq!(auto.checksum(&data), reference.checksum(&data));
    /// }
    /// ```
    pub fn auto() -> Self {
        Crc32c {
            backend: Crc32cBackend::Auto,
        }
    }

    /// Picks the fastest backend available on this CPU — hardware if
    /// present, otherwise the per-length [`Crc32cBackend::Auto`] software
    /// policy.
    pub fn best() -> Self {
        if hardware_available() {
            Crc32c {
                backend: Crc32cBackend::Hardware,
            }
        } else {
            Crc32c::auto()
        }
    }

    /// The backend actually in use.
    #[inline]
    pub fn backend(&self) -> Crc32cBackend {
        self.backend
    }

    /// Computes the CRC32C of `data` (standard init `!0`, final XOR `!0`).
    #[inline]
    pub fn checksum(&self, data: &[u8]) -> u32 {
        !self.update(!0u32, data)
    }

    /// Computes the CRC32C of a little-endian word slice — the natural layout
    /// of the protected structures (values and indices are hashed in memory
    /// order).
    #[inline]
    pub fn checksum_words(&self, words: &[u64]) -> u32 {
        let mut state = !0u32;
        for &w in words {
            state = self.update(state, &w.to_le_bytes());
        }
        !state
    }

    /// CRC32C of `words` with `mask` ANDed onto every word before hashing —
    /// the dense-vector group checksum, where the reserved redundancy bits
    /// must be cleared.  The masked words are staged through one stack buffer
    /// so the slicing backends see contiguous runs of bytes instead of
    /// 8-byte fragments; this is the bulk check entry point the masked-slice
    /// vector kernels verify each codeword group with.
    #[inline]
    pub fn checksum_words_masked(&self, words: &[u64], mask: u64) -> u32 {
        let mut state = !0u32;
        let mut buf = [0u8; 64];
        for chunk in words.chunks(8) {
            for (i, &w) in chunk.iter().enumerate() {
                buf[i * 8..i * 8 + 8].copy_from_slice(&(w & mask).to_le_bytes());
            }
            state = self.update(state, &buf[..chunk.len() * 8]);
        }
        !state
    }

    /// Streaming update of the raw CRC state (no init / final XOR applied).
    ///
    /// For [`Crc32cBackend::Auto`] the width decision is made per `update`
    /// call from `data.len()`: streaming callers that feed short fragments
    /// get the short-input width for each fragment, which is exactly the
    /// regime the policy was measured in (the protected structures hash one
    /// codeword per call).
    #[inline]
    pub fn update(&self, state: u32, data: &[u8]) -> u32 {
        match self.backend {
            Crc32cBackend::Naive => update_naive(state, data),
            Crc32cBackend::SlicingBy4 => update_slicing4(state, data),
            Crc32cBackend::SlicingBy8 => update_slicing8(state, data),
            Crc32cBackend::SlicingBy16 => update_slicing16(state, data),
            Crc32cBackend::Hardware => update_hardware(state, data),
            Crc32cBackend::Auto => {
                if hardware_available() {
                    update_hardware(state, data)
                } else {
                    match auto_software_width(data.len()) {
                        Crc32cBackend::SlicingBy4 => update_slicing4(state, data),
                        Crc32cBackend::SlicingBy8 => update_slicing8(state, data),
                        _ => update_slicing16(state, data),
                    }
                }
            }
        }
    }
}

/// Inputs shorter than this take slicing-by-4 on the software `Auto` path.
///
/// Measured with `experiments --bench-ecc` (see `BENCH_ecc.json`; x86-64
/// AVX2 recording host): at 4–12 bytes slicing-by-4 wins or ties (3.1 ns at
/// 4 B vs 3.9/4.1 ns for by-8/by-16) because the wider variants fall back
/// to byte-at-a-time for most of such inputs.
pub const AUTO_SLICING8_MIN_BYTES: usize = 16;

/// Inputs shorter than this (and at least [`AUTO_SLICING8_MIN_BYTES`]) take
/// slicing-by-8; longer inputs take slicing-by-16.
///
/// Measured with `experiments --bench-ecc`: the ~60-byte TeaLeaf row
/// codeword lands in the slicing-by-8 band (21.8 ns vs 28.7 ns for by-16,
/// whose 12-byte remainder is processed byte-at-a-time), while from 64
/// bytes up slicing-by-16 wins and keeps widening its lead (25.2 ns vs
/// 35.0 ns at 96 B, 2.4× at 4 KiB).
pub const AUTO_SLICING16_MIN_BYTES: usize = 64;

/// The software slicing width [`Crc32cBackend::Auto`] selects for an input
/// of `len` bytes (the per-length half of the policy; hardware, when
/// present, beats every width at every length).
#[inline]
pub fn auto_software_width(len: usize) -> Crc32cBackend {
    if len < AUTO_SLICING8_MIN_BYTES {
        Crc32cBackend::SlicingBy4
    } else if len < AUTO_SLICING16_MIN_BYTES {
        Crc32cBackend::SlicingBy8
    } else {
        Crc32cBackend::SlicingBy16
    }
}

/// Returns `true` when this CPU exposes a CRC32C instruction.
///
/// The probe runs **once** per process and is cached (construction paths
/// and the per-update dispatch previously re-ran feature detection on every
/// call).  `ABFT_ECC_FORCE_SCALAR=1`, read at the same moment, forces
/// `false` so tests can pin the software paths on hardware-capable hosts.
pub fn hardware_available() -> bool {
    static AVAILABLE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *AVAILABLE.get_or_init(|| {
        if crate::verify::force_scalar_requested() {
            return false;
        }
        #[cfg(target_arch = "x86_64")]
        {
            std::arch::is_x86_feature_detected!("sse4.2")
        }
        #[cfg(target_arch = "aarch64")]
        {
            std::arch::is_aarch64_feature_detected!("crc")
        }
        #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
        {
            false
        }
    })
}

/// Bit-at-a-time reference implementation.
pub fn update_naive(mut state: u32, data: &[u8]) -> u32 {
    for &byte in data {
        state ^= byte as u32;
        for _ in 0..8 {
            state = if state & 1 != 0 {
                (state >> 1) ^ CRC32C_POLY_REFLECTED
            } else {
                state >> 1
            };
        }
    }
    state
}

/// Slicing-by-16: processes 16 input bytes per iteration using 16 lookup
/// tables, the software algorithm referenced by the paper.
pub fn update_slicing16(mut state: u32, data: &[u8]) -> u32 {
    let mut chunks = data.chunks_exact(16);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ state;
        let lo_bytes = lo.to_le_bytes();
        state = 0;
        // Bytes are indexed by their distance from the end of the 16-byte block.
        for (i, &b) in lo_bytes.iter().enumerate() {
            state ^= TABLES[15 - i][b as usize];
        }
        for (i, &b) in chunk[4..16].iter().enumerate() {
            state ^= TABLES[11 - i][b as usize];
        }
    }
    update_byte_table(state, chunks.remainder())
}

/// Slicing-by-8: processes 8 input bytes per iteration using the first 8
/// lookup tables — half the cache footprint of slicing-by-16, the winning
/// width for medium-length codewords (see [`auto_software_width`]).
pub fn update_slicing8(mut state: u32, data: &[u8]) -> u32 {
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ state;
        let lo_bytes = lo.to_le_bytes();
        state = 0;
        for (i, &b) in lo_bytes.iter().enumerate() {
            state ^= TABLES[7 - i][b as usize];
        }
        for (i, &b) in chunk[4..8].iter().enumerate() {
            state ^= TABLES[3 - i][b as usize];
        }
    }
    update_byte_table(state, chunks.remainder())
}

/// Slicing-by-4: processes 4 input bytes per iteration using the first 4
/// lookup tables — the smallest table footprint of the family, the winning
/// width for short codewords (see [`auto_software_width`]).
pub fn update_slicing4(mut state: u32, data: &[u8]) -> u32 {
    let mut chunks = data.chunks_exact(4);
    for chunk in &mut chunks {
        let x = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ state;
        let bytes = x.to_le_bytes();
        state = 0;
        for (i, &b) in bytes.iter().enumerate() {
            state ^= TABLES[3 - i][b as usize];
        }
    }
    update_byte_table(state, chunks.remainder())
}

/// Byte-at-a-time table lookup (used for slicing remainders).
#[inline]
fn update_byte_table(mut state: u32, data: &[u8]) -> u32 {
    for &byte in data {
        state = (state >> 8) ^ TABLES[0][((state ^ byte as u32) & 0xFF) as usize];
    }
    state
}

/// Hardware-accelerated update.  Falls back to slicing-by-16 when the CPU
/// lacks a CRC instruction (the runtime constructor never selects this
/// backend in that case).  The feature probe is the cached
/// [`hardware_available`] — resolved once per process, never inside this
/// call.
#[inline]
pub fn update_hardware(state: u32, data: &[u8]) -> u32 {
    if hardware_available() {
        #[cfg(target_arch = "x86_64")]
        {
            // SAFETY: `hardware_available` verified SSE4.2 at first use.
            return unsafe { update_sse42(state, data) };
        }
        #[cfg(target_arch = "aarch64")]
        {
            // SAFETY: `hardware_available` verified the CRC extension.
            return unsafe { update_aarch64(state, data) };
        }
    }
    #[allow(unreachable_code)]
    update_slicing16(state, data)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse4.2")]
unsafe fn update_sse42(mut state: u32, data: &[u8]) -> u32 {
    use std::arch::x86_64::{_mm_crc32_u64, _mm_crc32_u8};
    let mut chunks = data.chunks_exact(8);
    let mut state64 = state as u64;
    for chunk in &mut chunks {
        let word = u64::from_le_bytes(chunk.try_into().unwrap());
        state64 = _mm_crc32_u64(state64, word);
    }
    state = state64 as u32;
    for &byte in chunks.remainder() {
        state = _mm_crc32_u8(state, byte);
    }
    state
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "crc")]
unsafe fn update_aarch64(mut state: u32, data: &[u8]) -> u32 {
    use std::arch::aarch64::{__crc32cb, __crc32cd};
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let word = u64::from_le_bytes(chunk.try_into().unwrap());
        state = __crc32cd(state, word);
    }
    for &byte in chunks.remainder() {
        state = __crc32cb(state, byte);
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Well-known check vector: CRC32C("123456789") = 0xE3069283.
    const CHECK_INPUT: &[u8] = b"123456789";
    const CHECK_VALUE: u32 = 0xE306_9283;

    #[test]
    fn known_answer_all_backends() {
        for backend in [
            Crc32cBackend::Naive,
            Crc32cBackend::SlicingBy4,
            Crc32cBackend::SlicingBy8,
            Crc32cBackend::SlicingBy16,
            Crc32cBackend::Hardware,
            Crc32cBackend::Auto,
        ] {
            let crc = Crc32c::new(backend);
            assert_eq!(
                crc.checksum(CHECK_INPUT),
                CHECK_VALUE,
                "backend {backend:?} failed the check vector"
            );
        }
    }

    #[test]
    fn more_known_answers() {
        // Vectors from RFC 3720 appendix (iSCSI CRC32C).
        let crc = Crc32c::new(Crc32cBackend::SlicingBy16);
        assert_eq!(crc.checksum(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc.checksum(&[0xFFu8; 32]), 0x62A8_AB43);
        let ascending: Vec<u8> = (0u8..32).collect();
        assert_eq!(crc.checksum(&ascending), 0x46DD_794E);
        let descending: Vec<u8> = (0u8..32).rev().collect();
        assert_eq!(crc.checksum(&descending), 0x113F_DB5C);
    }

    #[test]
    fn backends_agree_on_arbitrary_lengths() {
        let naive = Crc32c::new(Crc32cBackend::Naive);
        let others = [
            Crc32c::new(Crc32cBackend::SlicingBy4),
            Crc32c::new(Crc32cBackend::SlicingBy8),
            Crc32c::new(Crc32cBackend::SlicingBy16),
            Crc32c::new(Crc32cBackend::Hardware),
            Crc32c::auto(),
        ];
        let mut data = Vec::new();
        let mut x = 0x12345u32;
        // 0..150 crosses both auto-policy thresholds.
        for len in 0..150usize {
            data.clear();
            for i in 0..len {
                x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                data.push((x >> 24) as u8 ^ i as u8);
            }
            let a = naive.checksum(&data);
            for other in &others {
                assert_eq!(a, other.checksum(&data), "{:?} len {len}", other.backend());
            }
        }
    }

    #[test]
    fn auto_policy_is_monotone_in_width() {
        assert_eq!(auto_software_width(0), Crc32cBackend::SlicingBy4);
        assert_eq!(
            auto_software_width(AUTO_SLICING8_MIN_BYTES - 1),
            Crc32cBackend::SlicingBy4
        );
        assert_eq!(
            auto_software_width(AUTO_SLICING8_MIN_BYTES),
            Crc32cBackend::SlicingBy8
        );
        // The ~60-byte TeaLeaf row codeword takes the middle width.
        assert_eq!(auto_software_width(60), Crc32cBackend::SlicingBy8);
        assert_eq!(
            auto_software_width(AUTO_SLICING16_MIN_BYTES),
            Crc32cBackend::SlicingBy16
        );
        assert_eq!(auto_software_width(1 << 20), Crc32cBackend::SlicingBy16);
    }

    #[test]
    fn checksum_words_matches_bytes() {
        let words = [0x0102_0304_0506_0708u64, 0xDEAD_BEEF_CAFE_F00D];
        let mut bytes = Vec::new();
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        for backend in [Crc32cBackend::Naive, Crc32cBackend::SlicingBy16] {
            let crc = Crc32c::new(backend);
            assert_eq!(crc.checksum_words(&words), crc.checksum(&bytes));
            assert_eq!(crc.checksum_words_masked(&words, !0), crc.checksum(&bytes));
        }
    }

    #[test]
    fn masked_word_checksum_clears_reserved_bits() {
        let mask = !0xFFu64;
        // 12 words also exercises the multi-chunk staging path.
        let words: Vec<u64> = (0..12u64)
            .map(|i| i.wrapping_mul(0x0101_0101_0101_0137) | 0xAB)
            .collect();
        let mut masked_bytes = Vec::new();
        for &w in &words {
            masked_bytes.extend_from_slice(&(w & mask).to_le_bytes());
        }
        for backend in [
            Crc32cBackend::Naive,
            Crc32cBackend::SlicingBy16,
            Crc32cBackend::Hardware,
        ] {
            let crc = Crc32c::new(backend);
            assert_eq!(
                crc.checksum_words_masked(&words, mask),
                crc.checksum(&masked_bytes)
            );
        }
    }

    #[test]
    fn single_bit_flips_always_detected() {
        let crc = Crc32c::best();
        let data: Vec<u8> = (0..64u8)
            .map(|i| i.wrapping_mul(37).wrapping_add(5))
            .collect();
        let reference = crc.checksum(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[byte] ^= 1 << bit;
                assert_ne!(crc.checksum(&corrupted), reference);
            }
        }
    }

    #[test]
    fn odd_weight_errors_always_detected() {
        // The (x+1) factor guarantees detection of all odd-weight error
        // patterns; spot-check weight-3 patterns on a small codeword.
        let crc = Crc32c::best();
        let data: Vec<u8> = (0..16u8).collect();
        let reference = crc.checksum(&data);
        let bits = data.len() * 8;
        for a in (0..bits).step_by(5) {
            for b in (a + 1..bits).step_by(7) {
                for c in (b + 1..bits).step_by(11) {
                    let mut corrupted = data.clone();
                    corrupted[a / 8] ^= 1 << (a % 8);
                    corrupted[b / 8] ^= 1 << (b % 8);
                    corrupted[c / 8] ^= 1 << (c % 8);
                    assert_ne!(crc.checksum(&corrupted), reference);
                }
            }
        }
    }

    #[test]
    fn burst_errors_up_to_32_bits_detected() {
        let crc = Crc32c::best();
        let data: Vec<u8> = (0..80u8).map(|i| i.wrapping_mul(91)).collect();
        let reference = crc.checksum(&data);
        let bits = data.len() * 8;
        for burst_len in 1..=32usize {
            for start in (0..bits - burst_len).step_by(13) {
                let mut corrupted = data.clone();
                // Flip the first and last bits of the burst plus a pattern inside.
                for offset in 0..burst_len {
                    if offset == 0 || offset == burst_len - 1 || offset % 3 == 0 {
                        let bit = start + offset;
                        corrupted[bit / 8] ^= 1 << (bit % 8);
                    }
                }
                assert_ne!(
                    crc.checksum(&corrupted),
                    reference,
                    "burst len {burst_len} at {start} undetected"
                );
            }
        }
    }

    #[test]
    fn streaming_update_equals_one_shot() {
        let crc = Crc32c::new(Crc32cBackend::SlicingBy16);
        let data: Vec<u8> = (0..200u8).collect();
        let one_shot = crc.checksum(&data);
        let mut state = !0u32;
        for chunk in data.chunks(7) {
            state = crc.update(state, chunk);
        }
        assert_eq!(!state, one_shot);
    }

    #[test]
    fn best_backend_prefers_hardware_when_available() {
        let crc = Crc32c::best();
        if hardware_available() {
            assert_eq!(crc.backend(), Crc32cBackend::Hardware);
        } else {
            assert_eq!(crc.backend(), Crc32cBackend::Auto);
        }
        // The probe is cached: repeated queries agree.
        assert_eq!(hardware_available(), hardware_available());
    }
}
