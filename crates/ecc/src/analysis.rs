//! Code-capability analysis helpers.
//!
//! These functions back the claims quoted from the paper's §IV — e.g. that
//! CRC32C detects every error of weight ≤ 5 inside the 178–5243-bit window,
//! or that the SECDED syndromes of all single-bit errors are distinct — by
//! *measuring* the behaviour of the implementations rather than assuming it.
//! They are used by the test-suites and by `experiments --crc-capability`.

use crate::bitops;
use crate::crc32c::Crc32c;
use crate::secded::{DecodeOutcome, Secded};

/// Result of sweeping error patterns of a fixed weight against a code.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DetectionSweep {
    /// Number of error patterns applied.
    pub patterns: u64,
    /// Patterns whose corruption was detected (outcome differed from clean).
    pub detected: u64,
    /// Patterns that were "repaired" onto the wrong data (miscorrections).
    pub miscorrected: u64,
    /// Patterns that went completely unnoticed (silent data corruption).
    pub undetected: u64,
}

impl DetectionSweep {
    /// Fraction of patterns detected.
    pub fn detection_rate(&self) -> f64 {
        if self.patterns == 0 {
            1.0
        } else {
            self.detected as f64 / self.patterns as f64
        }
    }
}

/// Applies every single- and double-bit error to a SECDED codeword and checks
/// the classification contract: weight-1 → corrected to the original data,
/// weight-2 → flagged uncorrectable.
///
/// Returns `(weight1, weight2)` sweeps.  `weight1.miscorrected` and
/// `weight2.miscorrected + weight2.undetected` are zero for a correct
/// implementation.
pub fn sweep_secded(code: &Secded, payload: &[u64]) -> (DetectionSweep, DetectionSweep) {
    let red = code.encode(payload);
    let mut w1 = DetectionSweep::default();
    let mut w2 = DetectionSweep::default();

    for a in 0..code.data_bits() {
        let mut data = payload.to_vec();
        bitops::flip_bit(&mut data, a);
        w1.patterns += 1;
        match code.check_and_correct(&mut data, red) {
            DecodeOutcome::CorrectedData(_) if data == payload => w1.detected += 1,
            DecodeOutcome::NoError => w1.undetected += 1,
            _ => w1.miscorrected += 1,
        }
    }

    for a in 0..code.data_bits() {
        for b in (a + 1)..code.data_bits() {
            let mut data = payload.to_vec();
            bitops::flip_bit(&mut data, a);
            bitops::flip_bit(&mut data, b);
            w2.patterns += 1;
            match code.check_and_correct(&mut data, red) {
                DecodeOutcome::Uncorrectable => w2.detected += 1,
                DecodeOutcome::NoError => w2.undetected += 1,
                _ => w2.miscorrected += 1,
            }
        }
    }

    (w1, w2)
}

/// Sweeps error patterns of the given `weight` (number of simultaneously
/// flipped bits) over a CRC32C-protected codeword and reports how many were
/// detected.  Patterns are enumerated exhaustively when their count does not
/// exceed `max_patterns`, otherwise a deterministic stride-sampled subset is
/// used.
pub fn sweep_crc32c(crc: &Crc32c, data: &[u8], weight: usize, max_patterns: u64) -> DetectionSweep {
    let reference = crc.checksum(data);
    let bits = data.len() * 8;
    let mut sweep = DetectionSweep::default();
    let mut buf = data.to_vec();
    let mut pattern = vec![0usize; weight];
    // Initialise to the lexicographically first combination.
    for (i, p) in pattern.iter_mut().enumerate() {
        *p = i;
    }
    if weight == 0 || weight > bits {
        return sweep;
    }
    // Deterministic skip factor keeps the sweep bounded.
    let total = combinations(bits as u64, weight as u64);
    let stride = (total / max_patterns.max(1)).max(1);
    let mut counter = 0u64;
    loop {
        if counter.is_multiple_of(stride) {
            for &b in &pattern {
                buf[b / 8] ^= 1 << (b % 8);
            }
            sweep.patterns += 1;
            if crc.checksum(&buf) != reference {
                sweep.detected += 1;
            } else {
                sweep.undetected += 1;
            }
            for &b in &pattern {
                buf[b / 8] ^= 1 << (b % 8);
            }
        }
        counter += 1;
        // Advance to the next combination of `weight` bit positions.
        let mut i = weight;
        loop {
            if i == 0 {
                return sweep;
            }
            i -= 1;
            if pattern[i] < bits - (weight - i) {
                pattern[i] += 1;
                for j in i + 1..weight {
                    pattern[j] = pattern[j - 1] + 1;
                }
                break;
            }
        }
    }
}

/// n-choose-k with saturation (used only for stride selection).
fn combinations(n: u64, k: u64) -> u64 {
    if k > n {
        return 0;
    }
    let mut result: u64 = 1;
    for i in 0..k {
        result = result.saturating_mul(n - i) / (i + 1);
    }
    result
}

/// True when the codeword length (in bits) lies inside the window for which
/// CRC32C is known to have minimum Hamming distance 6 (Koopman 2002), i.e.
/// detects all errors of weight ≤ 5.
pub fn crc32c_hd6_window(total_bits: usize) -> bool {
    (178..=5243).contains(&total_bits)
}

/// The error detection / correction operating points available at a given
/// minimum Hamming distance: pairs `(correct, detect)` with
/// `correct + detect = hd - 1` and `detect >= correct`
/// (nECmED in the paper's notation).
pub fn operating_points(hd: u32) -> Vec<(u32, u32)> {
    let budget = hd.saturating_sub(1);
    (0..=budget / 2).map(|c| (c, budget - c)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crc32c::Crc32cBackend;
    use crate::secded::SECDED_56;

    #[test]
    fn secded_sweep_has_no_failures() {
        let payload = [0xDEAD_BEEF_1234_5678u64 & bitops::low_mask(56)];
        let (w1, w2) = sweep_secded(&SECDED_56, &payload);
        assert_eq!(w1.patterns, 56);
        assert_eq!(w1.detected, 56);
        assert_eq!(w1.miscorrected + w1.undetected, 0);
        assert_eq!(w2.patterns, 56 * 55 / 2);
        assert_eq!(w2.detected, w2.patterns);
        assert_eq!(w2.miscorrected + w2.undetected, 0);
        assert!((w1.detection_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn crc_sweep_detects_low_weight_errors_in_hd6_window() {
        let crc = Crc32c::new(Crc32cBackend::SlicingBy16);
        // 40 bytes = 320 bits, inside the HD=6 window.
        let data: Vec<u8> = (0..40u8).map(|i| i.wrapping_mul(29)).collect();
        assert!(crc32c_hd6_window(data.len() * 8));
        for weight in 1..=3usize {
            let sweep = sweep_crc32c(&crc, &data, weight, 4000);
            assert!(sweep.patterns > 0);
            assert_eq!(
                sweep.undetected, 0,
                "weight {weight} errors must all be detected at HD 6"
            );
        }
    }

    #[test]
    fn window_bounds() {
        assert!(!crc32c_hd6_window(177));
        assert!(crc32c_hd6_window(178));
        assert!(crc32c_hd6_window(5243));
        assert!(!crc32c_hd6_window(5244));
    }

    #[test]
    fn operating_points_match_paper() {
        // HD=6 gives 2EC3ED, 1EC4ED and 0EC5ED (pure detection).
        let pts = operating_points(6);
        assert_eq!(pts, vec![(0, 5), (1, 4), (2, 3)]);
        assert_eq!(operating_points(2), vec![(0, 1)]);
        assert!(operating_points(0).len() == 1);
    }

    #[test]
    fn combinations_sane() {
        assert_eq!(combinations(5, 2), 10);
        assert_eq!(combinations(10, 0), 1);
        assert_eq!(combinations(3, 5), 0);
    }

    #[test]
    fn detection_sweep_rate_empty_is_one() {
        assert_eq!(DetectionSweep::default().detection_rate(), 1.0);
    }
}
