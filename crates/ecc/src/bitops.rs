//! Small bit-manipulation helpers shared by the codecs.
//!
//! All codecs in this crate view their payload as a little-endian bit string
//! over a slice of `u64` words: *data bit `k`* is bit `k % 64` of word
//! `k / 64`.  The helpers here get/set/flip individual bits in that view and
//! provide the masked extraction used when redundancy bits are embedded in
//! the payload itself.

/// Returns data bit `bit` (0-indexed, little-endian across words).
#[inline]
pub fn get_bit(words: &[u64], bit: usize) -> bool {
    (words[bit / 64] >> (bit % 64)) & 1 == 1
}

/// Sets data bit `bit` to `value`.
#[inline]
pub fn set_bit(words: &mut [u64], bit: usize, value: bool) {
    let mask = 1u64 << (bit % 64);
    if value {
        words[bit / 64] |= mask;
    } else {
        words[bit / 64] &= !mask;
    }
}

/// Flips data bit `bit`.
#[inline]
pub fn flip_bit(words: &mut [u64], bit: usize) {
    words[bit / 64] ^= 1u64 << (bit % 64);
}

/// Returns a `u64` whose low `n` bits are ones (`n == 64` gives all ones).
#[inline]
pub fn low_mask(n: u32) -> u64 {
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// Returns a `u32` whose low `n` bits are ones (`n == 32` gives all ones).
#[inline]
pub fn low_mask_u32(n: u32) -> u32 {
    if n >= 32 {
        u32::MAX
    } else {
        (1u32 << n) - 1
    }
}

/// Counts the total number of set bits across a word slice.
#[inline]
pub fn popcount_words(words: &[u64]) -> u32 {
    words.iter().map(|w| w.count_ones()).sum()
}

/// Hamming distance between two equal-length word slices.
///
/// # Panics
/// Panics if the slices differ in length.
#[inline]
pub fn hamming_distance(a: &[u64], b: &[u64]) -> u32 {
    assert_eq!(a.len(), b.len(), "hamming_distance: length mismatch");
    a.iter().zip(b).map(|(x, y)| (x ^ y).count_ones()).sum()
}

/// Extracts `len` bits starting at bit `start` from the word view as a `u64`
/// (`len <= 64`).
#[inline]
pub fn extract_bits(words: &[u64], start: usize, len: u32) -> u64 {
    debug_assert!(len <= 64);
    let mut out = 0u64;
    for i in 0..len as usize {
        if get_bit(words, start + i) {
            out |= 1u64 << i;
        }
    }
    out
}

/// Writes the low `len` bits of `value` into the word view starting at bit
/// `start`.
#[inline]
pub fn insert_bits(words: &mut [u64], start: usize, len: u32, value: u64) {
    debug_assert!(len <= 64);
    for i in 0..len as usize {
        set_bit(words, start + i, (value >> i) & 1 == 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_roundtrip() {
        let mut w = [0u64; 3];
        for bit in [0usize, 1, 63, 64, 65, 127, 128, 191] {
            assert!(!get_bit(&w, bit));
            set_bit(&mut w, bit, true);
            assert!(get_bit(&w, bit));
            set_bit(&mut w, bit, false);
            assert!(!get_bit(&w, bit));
        }
    }

    #[test]
    fn flip_is_involution() {
        let mut w = [0u64; 2];
        flip_bit(&mut w, 70);
        assert!(get_bit(&w, 70));
        flip_bit(&mut w, 70);
        assert!(!get_bit(&w, 70));
        assert_eq!(w, [0, 0]);
    }

    #[test]
    fn low_masks() {
        assert_eq!(low_mask(0), 0);
        assert_eq!(low_mask(1), 1);
        assert_eq!(low_mask(8), 0xFF);
        assert_eq!(low_mask(64), u64::MAX);
        assert_eq!(low_mask_u32(0), 0);
        assert_eq!(low_mask_u32(24), 0x00FF_FFFF);
        assert_eq!(low_mask_u32(32), u32::MAX);
    }

    #[test]
    fn popcount_and_distance() {
        let a = [0xFFu64, 0x1];
        let b = [0x0Fu64, 0x1];
        assert_eq!(popcount_words(&a), 9);
        assert_eq!(hamming_distance(&a, &b), 4);
        assert_eq!(hamming_distance(&a, &a), 0);
    }

    #[test]
    fn extract_insert_roundtrip() {
        let mut w = [0u64; 2];
        insert_bits(&mut w, 60, 10, 0b10_1101_0110);
        assert_eq!(extract_bits(&w, 60, 10), 0b10_1101_0110);
        // Bits outside the window stay clear.
        assert_eq!(extract_bits(&w, 0, 60), 0);
        assert_eq!(extract_bits(&w, 70, 58), 0);
    }

    #[test]
    #[should_panic]
    fn hamming_distance_length_mismatch_panics() {
        let _ = hamming_distance(&[0u64], &[0u64, 0]);
    }
}
