//! Error *correction* on top of CRC32C.
//!
//! CRC is usually treated as a detection-only code, but as §IV of the paper
//! points out, for codewords between 178 and 5243 bits CRC32C has a minimum
//! Hamming distance of 6, so the redundancy can be traded between correction
//! and detection: 2EC3ED, 1EC4ED or pure 5ED.  Because corrections happen
//! only when an error has already been detected (i.e. very rarely), a simple
//! trial-re-encoding search is fast enough — the cost is paid once per
//! detected fault, not per memory access.

use crate::crc32c::Crc32c;

/// Attempts single-bit correction of `data` whose freshly computed CRC32C
/// differs from `expected`.
///
/// Returns the index of the repaired bit, or `None` if no single flip
/// explains the mismatch (meaning ≥ 2 bits are corrupt, or the stored
/// checksum itself is corrupt).
///
/// The search flips each bit in turn and re-checks; for the ≤ 5243-bit
/// codewords used by the ABFT schemes this is at most a few hundred thousand
/// table lookups — negligible because correction is exceptional.
pub fn correct_crc32c_single(crc: &Crc32c, data: &mut [u8], expected: u32) -> Option<usize> {
    if crc.checksum(data) == expected {
        return None;
    }
    for bit in 0..data.len() * 8 {
        data[bit / 8] ^= 1 << (bit % 8);
        if crc.checksum(data) == expected {
            return Some(bit);
        }
        data[bit / 8] ^= 1 << (bit % 8);
    }
    None
}

/// Attempts correction of up to two bit flips (the 2EC operating point of the
/// paper's 2EC3ED discussion).
///
/// Returns the indices of the repaired bits (one or two of them), or `None`
/// if no pattern of ≤ 2 flips restores consistency.  The double-flip search
/// is quadratic in the codeword length and is intended for the shorter
/// codewords (matrix rows, dense-vector groups); it is still only run after
/// a detection, never on the fast path.
pub fn correct_crc32c_up_to_two(
    crc: &Crc32c,
    data: &mut [u8],
    expected: u32,
) -> Option<Vec<usize>> {
    if crc.checksum(data) == expected {
        return None;
    }
    if let Some(bit) = correct_crc32c_single(crc, data, expected) {
        return Some(vec![bit]);
    }
    let bits = data.len() * 8;
    for a in 0..bits {
        data[a / 8] ^= 1 << (a % 8);
        for b in (a + 1)..bits {
            data[b / 8] ^= 1 << (b % 8);
            if crc.checksum(data) == expected {
                return Some(vec![a, b]);
            }
            data[b / 8] ^= 1 << (b % 8);
        }
        data[a / 8] ^= 1 << (a % 8);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crc32c::Crc32cBackend;

    fn sample(len: usize) -> Vec<u8> {
        (0..len)
            .map(|i| (i as u8).wrapping_mul(67).wrapping_add(13))
            .collect()
    }

    #[test]
    fn no_correction_needed_returns_none() {
        let crc = Crc32c::best();
        let mut data = sample(64);
        let expected = crc.checksum(&data);
        assert_eq!(correct_crc32c_single(&crc, &mut data, expected), None);
        assert_eq!(data, sample(64));
    }

    #[test]
    fn single_flip_is_located_and_repaired_everywhere() {
        let crc = Crc32c::new(Crc32cBackend::SlicingBy16);
        let clean = sample(96); // 768-bit codeword, inside the HD=6 window
        let expected = crc.checksum(&clean);
        for bit in (0..clean.len() * 8).step_by(3) {
            let mut corrupted = clean.clone();
            corrupted[bit / 8] ^= 1 << (bit % 8);
            let fixed = correct_crc32c_single(&crc, &mut corrupted, expected);
            assert_eq!(fixed, Some(bit));
            assert_eq!(corrupted, clean);
        }
    }

    #[test]
    fn double_flip_is_repaired_by_the_two_bit_search() {
        let crc = Crc32c::best();
        let clean = sample(40);
        let expected = crc.checksum(&clean);
        let flips = [(3usize, 77usize), (0, 1), (100, 250)];
        for (a, b) in flips {
            let mut corrupted = clean.clone();
            corrupted[a / 8] ^= 1 << (a % 8);
            corrupted[b / 8] ^= 1 << (b % 8);
            let fixed = correct_crc32c_up_to_two(&crc, &mut corrupted, expected)
                .expect("double flip should be correctable");
            let mut fixed_sorted = fixed.clone();
            fixed_sorted.sort_unstable();
            assert_eq!(fixed_sorted, vec![a.min(b), a.max(b)]);
            assert_eq!(corrupted, clean);
        }
    }

    #[test]
    fn triple_flip_is_not_miscorrected_by_single_search_on_hd6_codewords() {
        // Within the HD=6 window a weight-3 error is at distance >= 3 from
        // every valid codeword reachable by a single flip, so the single-flip
        // search must fail rather than "repair" to a wrong codeword.
        let crc = Crc32c::best();
        let clean = sample(32); // 256 bits: inside 178..=5243
        let expected = crc.checksum(&clean);
        let mut corrupted = clean.clone();
        for bit in [5usize, 60, 201] {
            corrupted[bit / 8] ^= 1 << (bit % 8);
        }
        assert_eq!(correct_crc32c_single(&crc, &mut corrupted, expected), None);
    }
}
