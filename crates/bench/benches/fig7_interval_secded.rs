//! Figure 7: whole-CSR-matrix protection with SECDED64, sweeping the
//! integrity check interval.

use abft_bench::{tealeaf_system, TeaLeafSystem};
use abft_core::{EccScheme, ProtectionConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

const NX: usize = 96;
const NY: usize = 96;
const ITERS: usize = 20;
const INTERVALS: [u32; 6] = [1, 2, 4, 16, 64, 128];

fn run(system: &TeaLeafSystem, protection: &ProtectionConfig) {
    abft_bench::bench_cg_solve(system, protection, ITERS);
}

fn bench(c: &mut Criterion) {
    let system = tealeaf_system(NX, NY);
    let mut group = c.benchmark_group("fig7_interval_secded");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1200));

    group.bench_function("unprotected", |b| {
        b.iter(|| run(&system, &ProtectionConfig::unprotected()))
    });
    for interval in INTERVALS {
        group.bench_function(format!("SECDED64_every_{interval}"), |b| {
            b.iter(|| {
                run(
                    &system,
                    &ProtectionConfig::matrix_only(EccScheme::Secded64)
                        .with_check_interval(interval),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
