//! Figure 5: runtime overhead of protecting the CSR row-pointer vector with
//! SED / SECDED64 / SECDED128 / CRC32C.

use abft_bench::{tealeaf_system, TeaLeafSystem};
use abft_core::{EccScheme, ProtectionConfig};
use abft_ecc::Crc32cBackend;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

const NX: usize = 96;
const NY: usize = 96;
const ITERS: usize = 20;

fn run(system: &TeaLeafSystem, protection: &ProtectionConfig) {
    abft_bench::bench_cg_solve(system, protection, ITERS);
}

fn bench(c: &mut Criterion) {
    let system = tealeaf_system(NX, NY);
    let mut group = c.benchmark_group("fig5_row_pointer");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1200));

    group.bench_function("unprotected", |b| {
        b.iter(|| run(&system, &ProtectionConfig::unprotected()))
    });
    for scheme in EccScheme::ALL {
        group.bench_function(scheme.label(), |b| {
            b.iter(|| {
                run(
                    &system,
                    &ProtectionConfig::row_pointer_only(scheme)
                        .with_crc_backend(Crc32cBackend::SlicingBy16),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
