//! Figure 8: whole-CSR-matrix protection with CRC32C, sweeping the integrity
//! check interval.  The paper reduces the overhead from 88 % to 1 % on a
//! consumer GPU by checking only every 128 iterations; the same collapse in
//! relative cost is expected here (software CRC backend, serial kernels).

use abft_bench::{tealeaf_system, TeaLeafSystem};
use abft_core::{EccScheme, ProtectionConfig};
use abft_ecc::Crc32cBackend;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

const NX: usize = 96;
const NY: usize = 96;
const ITERS: usize = 20;
const INTERVALS: [u32; 6] = [1, 2, 4, 16, 64, 128];

fn run(system: &TeaLeafSystem, protection: &ProtectionConfig) {
    abft_bench::bench_cg_solve(system, protection, ITERS);
}

fn bench(c: &mut Criterion) {
    let system = tealeaf_system(NX, NY);
    let mut group = c.benchmark_group("fig8_interval_crc");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1200));

    group.bench_function("unprotected", |b| {
        b.iter(|| run(&system, &ProtectionConfig::unprotected()))
    });
    for interval in INTERVALS {
        group.bench_function(format!("CRC32C_every_{interval}"), |b| {
            b.iter(|| {
                run(
                    &system,
                    &ProtectionConfig::matrix_only(EccScheme::Crc32c)
                        .with_check_interval(interval)
                        .with_crc_backend(Crc32cBackend::SlicingBy16),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
