//! Figure 9: runtime overhead of protecting the dense double-precision
//! vectors (mantissa-LSB redundancy) with each scheme, plus the combined
//! full-protection configuration of §VII-B.

use abft_bench::{tealeaf_system, TeaLeafSystem};
use abft_core::{EccScheme, ProtectionConfig};
use abft_ecc::Crc32cBackend;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

const NX: usize = 96;
const NY: usize = 96;
const ITERS: usize = 20;

fn run(system: &TeaLeafSystem, protection: &ProtectionConfig) {
    abft_bench::bench_cg_solve(system, protection, ITERS);
}

fn bench(c: &mut Criterion) {
    let system = tealeaf_system(NX, NY);
    let mut group = c.benchmark_group("fig9_dense_vectors");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1200));

    group.bench_function("unprotected", |b| {
        b.iter(|| run(&system, &ProtectionConfig::unprotected()))
    });
    for scheme in EccScheme::ALL {
        group.bench_function(scheme.label(), |b| {
            b.iter(|| {
                run(
                    &system,
                    &ProtectionConfig::vectors_only(scheme)
                        .with_crc_backend(Crc32cBackend::Hardware),
                )
            })
        });
        group.bench_function(format!("full_{}", scheme.label()), |b| {
            b.iter(|| {
                run(
                    &system,
                    &ProtectionConfig::full(scheme).with_crc_backend(Crc32cBackend::Hardware),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
