//! Microbenchmarks of the raw ECC kernels (ablation for DESIGN.md): parity,
//! SECDED encode/check, CRC32C software vs hardware throughput, and the cost
//! of a protected SpMV relative to the plain one.  These are the building
//! blocks behind the per-figure overheads.

use abft_core::{
    EccScheme, FaultLog, ProtectedCsr, ProtectedMatrix, ProtectedVector, ProtectionConfig,
};
use abft_ecc::sed::parity_u64;
use abft_ecc::{Crc32c, Crc32cBackend, SECDED_64, SECDED_88};
use abft_sparse::spmv::spmv_serial;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::time::Duration;

fn ecc_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("ecc_primitives");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1200));
    let words: Vec<u64> = (0..1024u64)
        .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15))
        .collect();

    group.throughput(Throughput::Bytes((words.len() * 8) as u64));
    group.bench_function("parity_u64", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for &w in &words {
                acc ^= parity_u64(std::hint::black_box(w));
            }
            acc
        })
    });
    group.bench_function("secded64_encode", |b| {
        b.iter(|| {
            let mut acc = 0u16;
            for &w in &words {
                acc ^= SECDED_64.encode(&[std::hint::black_box(w)]);
            }
            acc
        })
    });
    group.bench_function("secded88_check", |b| {
        let encoded: Vec<(u64, u64, u16)> = words
            .iter()
            .map(|&w| {
                let payload = [w, w & 0xFF_FFFF];
                (payload[0], payload[1], SECDED_88.encode(&payload))
            })
            .collect();
        b.iter(|| {
            let mut clean = 0usize;
            for &(a, bpart, red) in &encoded {
                if SECDED_88.check(&[a, bpart], red) == abft_ecc::DecodeOutcome::NoError {
                    clean += 1;
                }
            }
            clean
        })
    });
    group.finish();

    let mut group = c.benchmark_group("crc32c_throughput");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1200));
    let data: Vec<u8> = (0..65536u32).map(|i| (i * 2654435761) as u8).collect();
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("slicing_by_16", |b| {
        let crc = Crc32c::new(Crc32cBackend::SlicingBy16);
        b.iter(|| crc.checksum(std::hint::black_box(&data)))
    });
    if abft_ecc::crc32c::hardware_available() {
        group.bench_function("hardware", |b| {
            let crc = Crc32c::new(Crc32cBackend::Hardware);
            b.iter(|| crc.checksum(std::hint::black_box(&data)))
        });
    }
    group.bench_function("naive", |b| {
        let crc = Crc32c::new(Crc32cBackend::Naive);
        b.iter(|| crc.checksum(std::hint::black_box(&data[..4096])))
    });
    group.finish();
}

fn protected_kernels(c: &mut Criterion) {
    let system = abft_bench::tealeaf_system(128, 128);
    let x: Vec<f64> = (0..system.matrix.cols())
        .map(|i| (i as f64 * 0.01).sin())
        .collect();
    let log = FaultLog::new();

    let mut group = c.benchmark_group("spmv_kernels");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1200));
    group.throughput(Throughput::Elements(system.matrix.nnz() as u64));
    group.bench_function("plain", |b| {
        let mut y = vec![0.0; system.matrix.rows()];
        b.iter(|| spmv_serial(&system.matrix, &x, &mut y))
    });
    for scheme in EccScheme::ALL {
        let protected = ProtectedCsr::from_csr(
            &system.matrix,
            &ProtectionConfig::matrix_only(scheme).with_crc_backend(Crc32cBackend::Hardware),
        )
        .unwrap();
        let mut y = vec![0.0; system.matrix.rows()];
        group.bench_function(format!("protected_{}", scheme.label()), |b| {
            b.iter(|| protected.spmv(&x[..], &mut y, 0, &log).unwrap())
        });
    }
    group.finish();

    let mut group = c.benchmark_group("vector_kernels");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1200));
    let values: Vec<f64> = (0..65536).map(|i| (i as f64 * 0.37).cos()).collect();
    group.throughput(Throughput::Elements(values.len() as u64));
    for scheme in EccScheme::ALL {
        let a = ProtectedVector::from_slice(&values, scheme, Crc32cBackend::Hardware);
        let b_vec = ProtectedVector::from_slice(&values, scheme, Crc32cBackend::Hardware);
        group.bench_function(format!("dot_{}", scheme.label()), |bench| {
            bench.iter(|| a.dot(&b_vec, &log).unwrap())
        });
        group.bench_function(format!("axpy_{}", scheme.label()), |bench| {
            let mut y = a.clone();
            bench.iter(|| y.axpy(1.0001, &b_vec, &log).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, ecc_primitives, protected_kernels);
criterion_main!(benches);
