//! `experiments` — regenerates the paper's tables and figures from the
//! command line.
//!
//! ```text
//! experiments --all                 # every figure at the default size
//! experiments --figure 4            # a single figure
//! experiments --figure 8 --nx 512 --ny 512 --iters 100
//! experiments --full                # the paper's 2048x2048 deck size
//! experiments --convergence         # §VI-B convergence-impact study
//! experiments --campaign            # fault-injection summary
//! experiments --crc-capability      # §IV CRC32C capability table
//! experiments --parallel            # use the Rayon kernels
//! experiments --json results.json   # also dump machine-readable results
//! ```
//!
//! Absolute times depend on the host; the quantity to compare against the
//! paper is the *relative overhead* column and its ordering across schemes.

use abft_bench::blas1_bench::{blas1_microbench, trajectory_points_json, Blas1BenchConfig};
use abft_bench::coverage::{self, check_coverage, measure_coverage, CoverageConfig};
use abft_bench::ecc_bench::{self, ecc_microbench, EccBenchConfig};
use abft_bench::json::Json;
use abft_bench::matrix_file::{self, matrix_file_report, MatrixFileConfig};
use abft_bench::precond_bench::{self, precond_microbench, PrecondBenchConfig};
use abft_bench::queue_bench::{self, queue_microbench, QueueBenchConfig};
use abft_bench::regression::{check_regression, GateConfig};
use abft_bench::scaling_bench::{self, scaling_microbench, ScalingBenchConfig};
use abft_bench::spmv_bench::{
    render_table, spmv_microbench, trajectory_point_json, SpmvBenchConfig,
};
use abft_bench::{
    combined_full_protection, convergence_impact, fault_campaign_summary, figure4, figure5,
    figure6, figure7, figure8, figure9, FigureTable, MeasurementConfig,
};
use abft_ecc::analysis::{crc32c_hd6_window, operating_points, sweep_crc32c};
use abft_ecc::{Crc32c, Crc32cBackend};

#[derive(Debug, Clone)]
struct Args {
    figures: Vec<u32>,
    all: bool,
    convergence: bool,
    campaign: bool,
    crc_capability: bool,
    combined: bool,
    full: bool,
    smoke: bool,
    bench_spmv: bool,
    bench_blas1: bool,
    bench_ecc: bool,
    bench_scaling: bool,
    bench_queue: bool,
    bench_coverage: bool,
    bench_precond: bool,
    check_regression: bool,
    check_coverage: bool,
    baseline_spmv: String,
    baseline_blas1: String,
    baseline_queue: String,
    baseline_precond: String,
    baseline_coverage: String,
    gate_tolerance: f64,
    coverage_tolerance: f64,
    bench_label: String,
    matrix_file: Option<String>,
    num_blocks: usize,
    parallel: bool,
    nx: usize,
    ny: usize,
    iterations: usize,
    repeats: usize,
    trials: usize,
    trials_explicit: bool,
    stop_lb: Option<f64>,
    json: Option<String>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            figures: Vec::new(),
            all: false,
            convergence: false,
            campaign: false,
            crc_capability: false,
            combined: false,
            full: false,
            smoke: false,
            bench_spmv: false,
            bench_blas1: false,
            bench_ecc: false,
            bench_scaling: false,
            bench_queue: false,
            bench_coverage: false,
            bench_precond: false,
            check_regression: false,
            check_coverage: false,
            baseline_spmv: "BENCH_spmv.json".to_string(),
            baseline_blas1: "BENCH_blas1.json".to_string(),
            baseline_queue: "BENCH_queue.json".to_string(),
            baseline_precond: "BENCH_precond.json".to_string(),
            baseline_coverage: "BENCH_coverage.json".to_string(),
            gate_tolerance: 25.0,
            coverage_tolerance: 5.0,
            bench_label: "current".to_string(),
            matrix_file: None,
            num_blocks: 8,
            parallel: false,
            nx: 256,
            ny: 256,
            iterations: 50,
            repeats: 3,
            trials: 200,
            trials_explicit: false,
            stop_lb: None,
            json: None,
        }
    }
}

const HELP: &str = "experiments — regenerate the paper's figures.
  --all                run every figure (default)
  --figure N           run figure N (4..=9), repeatable
  --combined           full matrix + vector protection table (§VII-B)
  --convergence        §VI-B convergence-impact study
  --campaign           fault-injection outcome summary
  --crc-capability     §IV CRC32C detection-capability table
  --full               paper-sized workload (2048x2048, 100 CG iterations)
  --smoke              tiny CI preset: every section at 24x24, 3 iterations
  --bench-spmv         SpMV kernel microbenchmark (the BENCH_spmv.json sweep)
  --bench-blas1        protected BLAS-1 microbenchmark (the BENCH_blas1.json sweep)
  --bench-ecc          ECC check-throughput microbenchmark: per-group vs
                       batched-SIMD verify, CRC slicing-width sweep
                       (the BENCH_ecc.json sweep)
  --bench-scaling      worker-count scaling sweep (the BENCH_scaling.json sweep)
  --bench-queue        multi-tenant serving throughput: serial dispatch vs
                       SolveQueue panels at k in {1,2,4,8}
                       (the BENCH_queue.json sweep)
  --bench-coverage     fixed-seed smoke fault-coverage campaign: bit flips for
                       every scheme x region plus the parity-tier erasure
                       scenarios (the BENCH_coverage.json matrix)
  --bench-precond      selective-reliability sweep: uniform vs selective
                       FT-PCG time-to-correct-solution under injected factor
                       corruption (the BENCH_precond.json crossover)
  --check-regression   CI gate: re-measure and compare overhead ratios against
                       the committed BENCH_spmv.json / BENCH_blas1.json /
                       BENCH_queue.json (exit 1 on >25% degradation)
  --check-coverage     CI gate: re-run the smoke coverage campaign and compare
                       safe / recovered / rebuilt rates against the committed
                       BENCH_coverage.json (exit 1 on a rate drop)
  --baseline-spmv P    SpMV baseline file for --check-regression
  --baseline-blas1 P   BLAS-1 baseline file for --check-regression
  --baseline-queue P   serving-throughput baseline file for --check-regression
  --baseline-precond P selective-reliability baseline file for --check-regression
  --baseline-coverage P coverage baseline file for --check-coverage
  --gate-tolerance PCT allowed ratio degradation for --check-regression
  --coverage-tolerance PP allowed rate drop (percentage points) for
                       --check-coverage
  --bench-label L      trajectory-point label for --bench-* JSON output
  --matrix-file M      run the protected kernels on a Matrix Market file:
                       SpMV overhead per scheme on every storage tier (CSR,
                       COO, blocked CSR), plus a per-tier matrix-protected
                       CG solve when the operator is symmetric
  --num-blocks B       block count of the blocked-CSR tier for --matrix-file
                       (default 8)
  --parallel           use the Rayon-parallel kernels
  --nx N / --ny N      grid size (default 256x256)
  --iters N            CG iterations per timed solve (default 50)
  --repeats N          timed repetitions, minimum reported (default 3)
  --trials N           fault-injection trials per configuration (default 200;
                       for --bench-coverage, overrides the per-row trial count)
  --stop-lb LB         --bench-coverage only: stream each row through the
                       adaptive engine, stopping early once the
                       spending-corrected Wilson lower bound on its safety
                       rate reaches LB (e.g. 0.995); --trials becomes the
                       per-row maximum
  --json PATH          additionally write machine-readable JSON";

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut iter = std::env::args().skip(1);
    let mut any = false;
    while let Some(arg) = iter.next() {
        any = true;
        let mut value = |name: &str| {
            iter.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "--all" => args.all = true,
            "--figure" => args
                .figures
                .push(value("--figure")?.parse().map_err(|e| format!("{e}"))?),
            "--convergence" => args.convergence = true,
            "--campaign" => args.campaign = true,
            "--crc-capability" => args.crc_capability = true,
            "--combined" => args.combined = true,
            "--full" => args.full = true,
            "--smoke" => args.smoke = true,
            "--bench-spmv" => args.bench_spmv = true,
            "--bench-blas1" => args.bench_blas1 = true,
            "--bench-ecc" => args.bench_ecc = true,
            "--bench-scaling" => args.bench_scaling = true,
            "--bench-queue" => args.bench_queue = true,
            "--bench-coverage" => args.bench_coverage = true,
            "--bench-precond" => args.bench_precond = true,
            "--check-regression" => args.check_regression = true,
            "--check-coverage" => args.check_coverage = true,
            "--baseline-spmv" => args.baseline_spmv = value("--baseline-spmv")?,
            "--baseline-blas1" => args.baseline_blas1 = value("--baseline-blas1")?,
            "--baseline-queue" => args.baseline_queue = value("--baseline-queue")?,
            "--baseline-precond" => args.baseline_precond = value("--baseline-precond")?,
            "--baseline-coverage" => args.baseline_coverage = value("--baseline-coverage")?,
            "--gate-tolerance" => {
                args.gate_tolerance = value("--gate-tolerance")?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--coverage-tolerance" => {
                args.coverage_tolerance = value("--coverage-tolerance")?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--bench-label" => args.bench_label = value("--bench-label")?,
            "--matrix-file" => args.matrix_file = Some(value("--matrix-file")?),
            "--num-blocks" => {
                args.num_blocks = value("--num-blocks")?.parse().map_err(|e| format!("{e}"))?
            }
            "--parallel" => args.parallel = true,
            "--nx" => args.nx = value("--nx")?.parse().map_err(|e| format!("{e}"))?,
            "--ny" => args.ny = value("--ny")?.parse().map_err(|e| format!("{e}"))?,
            "--iters" => args.iterations = value("--iters")?.parse().map_err(|e| format!("{e}"))?,
            "--repeats" => {
                args.repeats = value("--repeats")?.parse().map_err(|e| format!("{e}"))?
            }
            "--trials" => {
                args.trials = value("--trials")?.parse().map_err(|e| format!("{e}"))?;
                args.trials_explicit = true;
            }
            "--stop-lb" => {
                args.stop_lb = Some(value("--stop-lb")?.parse().map_err(|e| format!("{e}"))?)
            }
            "--json" => args.json = Some(value("--json")?),
            "--help" | "-h" => {
                println!("{HELP}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    if !any {
        args.all = true;
    }
    if args.full {
        args.nx = 2048;
        args.ny = 2048;
        args.iterations = 100;
        args.repeats = 1;
    }
    if args.smoke {
        args.all = true;
        args.nx = 24;
        args.ny = 24;
        args.iterations = 3;
        args.repeats = 1;
        args.trials = 20;
    }
    Ok(args)
}

#[derive(Default)]
struct JsonOutput {
    figures: Vec<FigureTable>,
    convergence: Vec<abft_bench::ConvergenceRow>,
    campaign: Vec<abft_bench::CampaignRow>,
    crc_capability: Vec<(String, Json)>,
}

impl JsonOutput {
    fn to_json(&self) -> Json {
        Json::obj([
            (
                "figures",
                Json::Arr(self.figures.iter().map(figure_json).collect()),
            ),
            (
                "convergence",
                Json::Arr(self.convergence.iter().map(convergence_json).collect()),
            ),
            (
                "campaign",
                Json::Arr(self.campaign.iter().map(campaign_json).collect()),
            ),
            ("crc_capability", Json::Obj(self.crc_capability.clone())),
        ])
    }
}

fn figure_json(table: &FigureTable) -> Json {
    Json::obj([
        ("figure", table.figure.clone().into()),
        ("title", table.title.clone().into()),
        ("workload", table.workload.clone().into()),
        ("baseline_seconds", table.baseline_seconds.into()),
        (
            "rows",
            Json::Arr(
                table
                    .rows
                    .iter()
                    .map(|row| {
                        Json::obj([
                            ("label", row.label.clone().into()),
                            ("seconds", row.seconds.into()),
                            ("overhead_pct", row.overhead_pct.into()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn convergence_json(row: &abft_bench::ConvergenceRow) -> Json {
    Json::obj([
        ("scheme", row.scheme.clone().into()),
        ("iterations", row.iterations.into()),
        ("baseline_iterations", row.baseline_iterations.into()),
        ("iteration_increase_pct", row.iteration_increase_pct.into()),
        (
            "solution_norm_difference_pct",
            row.solution_norm_difference_pct.into(),
        ),
    ])
}

fn campaign_json(row: &abft_bench::CampaignRow) -> Json {
    Json::obj([
        ("scheme", row.scheme.clone().into()),
        ("target", row.target.clone().into()),
        ("trials", row.trials.into()),
        ("corrected_pct", row.corrected_pct.into()),
        ("rebuilt_pct", row.rebuilt_pct.into()),
        ("detected_pct", row.detected_pct.into()),
        ("bounds_pct", row.bounds_pct.into()),
        ("masked_pct", row.masked_pct.into()),
        ("sdc_pct", row.sdc_pct.into()),
    ])
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(err) => {
            eprintln!("error: {err}\n{HELP}");
            std::process::exit(2);
        }
    };
    let m = MeasurementConfig {
        nx: args.nx,
        ny: args.ny,
        iterations: args.iterations,
        repeats: args.repeats,
        parallel: args.parallel,
    };
    let mut output = JsonOutput::default();

    if let Some(path) = &args.matrix_file {
        let config = MatrixFileConfig {
            path: path.clone(),
            num_blocks: args.num_blocks,
            iters: args.iterations.min(20),
            repeats: args.repeats,
            parallel: args.parallel,
        };
        match matrix_file_report(&config) {
            Ok(report) => {
                print!("{}", matrix_file::render_report(&report));
                if let Some(json_path) = &args.json {
                    std::fs::write(json_path, matrix_file::report_json(&report).render())
                        .expect("write JSON output");
                    println!("machine-readable results written to {json_path}");
                }
            }
            Err(err) => {
                eprintln!("--matrix-file failed: {err}");
                std::process::exit(1);
            }
        }
        return;
    }

    if args.check_regression {
        // The gate re-measures at the committed workload size (--nx, default
        // 256) with CI-cheap iteration counts and compares overhead ratios;
        // do not combine with --smoke, which shrinks --nx away from the
        // committed workload.
        let config = GateConfig {
            spmv_baseline: args.baseline_spmv.clone(),
            blas1_baseline: args.baseline_blas1.clone(),
            queue_baseline: args.baseline_queue.clone(),
            precond_baseline: args.baseline_precond.clone(),
            nx: args.nx,
            iters: args.iterations.min(8),
            repeats: args.repeats.min(2),
            tolerance_pct: args.gate_tolerance,
        };
        println!(
            "Perf-regression gate: fresh {0}x{0} measurement vs {1} + {2} + {3} + {4} (tolerance +{5}%)",
            config.nx,
            config.spmv_baseline,
            config.blas1_baseline,
            config.queue_baseline,
            config.precond_baseline,
            config.tolerance_pct
        );
        match check_regression(&config) {
            Ok(report) => {
                print!("{}", report.render());
                if report.regressed() {
                    eprintln!("perf-regression gate FAILED");
                    std::process::exit(1);
                }
                println!("perf-regression gate passed");
            }
            Err(err) => {
                eprintln!("perf-regression gate could not run: {err}");
                std::process::exit(1);
            }
        }
        return;
    }

    if args.check_coverage {
        let config = CoverageConfig {
            baseline: args.baseline_coverage.clone(),
            tolerance_pp: args.coverage_tolerance,
            ..CoverageConfig::default()
        };
        println!(
            "Fault-coverage gate: fresh fixed-seed campaign vs {} (tolerance -{} pp)",
            config.baseline, config.tolerance_pp
        );
        match check_coverage(&config) {
            Ok(report) => {
                print!("{}", report.render());
                if report.dropped() {
                    eprintln!("fault-coverage gate FAILED");
                    std::process::exit(1);
                }
                println!("fault-coverage gate passed");
            }
            Err(err) => {
                eprintln!("fault-coverage gate could not run: {err}");
                std::process::exit(1);
            }
        }
        return;
    }

    if args.bench_coverage {
        let defaults = CoverageConfig::default();
        let config = CoverageConfig {
            baseline: args.baseline_coverage.clone(),
            tolerance_pp: args.coverage_tolerance,
            trials: if args.trials_explicit {
                args.trials
            } else {
                defaults.trials
            },
            stop_lb: args.stop_lb,
            ..defaults
        };
        match config.stop_lb {
            Some(lb) => println!(
                "Fault-coverage campaign ({0}x{1} grid, <= {2} trials/row streamed, \
                 stop at safety lower bound {lb}, seed {3:#x})",
                config.nx, config.ny, config.trials, config.seed
            ),
            None => println!(
                "Fault-coverage campaign ({0}x{1} grid, {2} trials/row, seed {3:#x})",
                config.nx, config.ny, config.trials, config.seed
            ),
        }
        let rows = measure_coverage(&config);
        print!("{}", coverage::render_table(&rows));
        if let Some(path) = &args.json {
            std::fs::write(path, coverage::coverage_json(&config, &rows).render())
                .expect("write JSON output");
            println!("machine-readable results written to {path}");
        }
        return;
    }

    if args.bench_precond {
        let config = if args.smoke {
            PrecondBenchConfig::smoke()
        } else {
            PrecondBenchConfig {
                n: args.nx,
                repeats: args.repeats.min(2),
                ..PrecondBenchConfig::default()
            }
        };
        println!(
            "Selective-reliability sweep ({0}x{0} Poisson grid + {1}, factor flips {2:?}, {3} repeats)",
            config.n, config.fixture, config.flips, config.repeats
        );
        let rows = precond_microbench(&config);
        print!("{}", precond_bench::render_table(&rows));
        if let Some(path) = &args.json {
            let point = precond_bench::trajectory_point_json(&args.bench_label, &config, &rows);
            let doc = Json::obj([("trajectory", Json::Arr(vec![point]))]);
            std::fs::write(path, doc.render()).expect("write JSON output");
            println!("machine-readable results written to {path}");
        }
        return;
    }

    if args.bench_queue {
        let config = if args.smoke {
            QueueBenchConfig::smoke()
        } else {
            QueueBenchConfig {
                n: args.nx,
                iters: args.iterations.min(25),
                repeats: args.repeats.min(2),
                ..QueueBenchConfig::default()
            }
        };
        println!(
            "Multi-tenant serving throughput ({0}x{0} Poisson grid, {1} jobs, widths {2:?}, {3} CG iters/solve, {4} repeats)",
            config.n, config.jobs, config.widths, config.iters, config.repeats
        );
        let rows = queue_microbench(&config);
        print!("{}", queue_bench::render_table(&rows));
        if let Some(path) = &args.json {
            let point = queue_bench::trajectory_point_json(&args.bench_label, &config, &rows);
            let doc = Json::obj([("trajectory", Json::Arr(vec![point]))]);
            std::fs::write(path, doc.render()).expect("write JSON output");
            println!("machine-readable results written to {path}");
        }
        return;
    }

    if args.bench_scaling {
        let config = if args.smoke {
            ScalingBenchConfig::smoke()
        } else {
            ScalingBenchConfig {
                iters: args.iterations.min(8),
                repeats: args.repeats,
                ..ScalingBenchConfig::default()
            }
        };
        println!(
            "Worker-count scaling sweep (sizes {:?}, workers {:?}, {} iters, {} repeats)",
            config.sizes, config.workers, config.iters, config.repeats
        );
        let rows = scaling_microbench(&config);
        print!("{}", scaling_bench::render_table(&config, &rows));
        if let Some(path) = &args.json {
            let point = scaling_bench::trajectory_point_json(&args.bench_label, &config, &rows);
            let doc = Json::obj([("trajectory", Json::Arr(vec![point]))]);
            std::fs::write(path, doc.render()).expect("write JSON output");
            println!("machine-readable results written to {path}");
        }
        return;
    }

    if args.bench_ecc {
        let config = if args.smoke {
            EccBenchConfig::smoke()
        } else {
            EccBenchConfig {
                elements: args.nx * args.nx,
                grid_n: args.nx,
                iters: args.iterations.max(2),
                repeats: args.repeats,
                ..EccBenchConfig::default()
            }
        };
        println!(
            "ECC check-throughput microbenchmark ({} elements, grid {}x{}, {} iters, {} repeats; ISA {}, hardware CRC {})",
            config.elements,
            config.grid_n,
            config.grid_n,
            config.iters,
            config.repeats,
            abft_ecc::verify::detected_isa().label(),
            abft_ecc::crc32c::hardware_available(),
        );
        let rows = ecc_microbench(&config);
        print!("{}", ecc_bench::render_table(&rows));
        if let Some(path) = &args.json {
            let points = ecc_bench::trajectory_points_json(&args.bench_label, &config, &rows);
            let doc = Json::obj([("trajectory", Json::Arr(points))]);
            std::fs::write(path, doc.render()).expect("write JSON output");
            println!("machine-readable results written to {path}");
        }
        return;
    }

    if args.bench_blas1 {
        // --nx / --iters / --repeats drive the sweep (--smoke shrinks them
        // via parse_args); vectors have nx² elements.
        let config = Blas1BenchConfig {
            n: args.nx,
            iters: args.iterations.max(2),
            repeats: args.repeats,
            cg_iterations: args.iterations,
            parallel: args.parallel,
        };
        println!(
            "Protected BLAS-1 microbenchmark ({0}x{0} Poisson grid = {1} elements, {2} iters, {3} repeats, masked path {4})",
            config.n,
            config.n * config.n,
            config.iters,
            config.repeats,
            if config.parallel { "parallel" } else { "serial" }
        );
        let rows = blas1_microbench(&config);
        print!("{}", abft_bench::blas1_bench::render_table(&rows));
        if let Some(path) = &args.json {
            let points = trajectory_points_json(&args.bench_label, &config, &rows);
            let doc = Json::obj([("trajectory", Json::Arr(points))]);
            std::fs::write(path, doc.render()).expect("write JSON output");
            println!("machine-readable results written to {path}");
        }
        return;
    }

    if args.bench_spmv {
        // --nx / --iters / --repeats drive the sweep (and --smoke shrinks
        // them via parse_args); ny is meaningless for the square Poisson
        // grid this benchmark uses.
        let config = SpmvBenchConfig {
            n: args.nx,
            iters: args.iterations,
            repeats: args.repeats,
        };
        println!(
            "SpMV kernel microbenchmark ({}x{} Poisson grid, {} iters, {} repeats)",
            config.n, config.n, config.iters, config.repeats
        );
        let rows = spmv_microbench(&config);
        print!("{}", render_table(&rows));
        if let Some(path) = &args.json {
            let point = trajectory_point_json(&args.bench_label, &config, &rows);
            let doc = Json::obj([("trajectory", Json::Arr(vec![point]))]);
            std::fs::write(path, doc.render()).expect("write JSON output");
            println!("machine-readable results written to {path}");
        }
        return;
    }

    let run_all = args.all;
    let wants = |n: u32| run_all || args.figures.contains(&n);
    let intervals = [1u32, 2, 4, 8, 16, 32, 64, 128];

    let mut tables: Vec<FigureTable> = Vec::new();
    if wants(4) {
        tables.push(figure4(&m));
    }
    if wants(5) {
        tables.push(figure5(&m));
    }
    if wants(6) {
        tables.push(figure6(&m, &intervals));
    }
    if wants(7) {
        tables.push(figure7(&m, &intervals));
    }
    if wants(8) {
        tables.push(figure8(&m, &intervals));
    }
    if wants(9) {
        tables.push(figure9(&m));
    }
    if args.combined || run_all {
        tables.push(combined_full_protection(&m));
    }
    for table in &tables {
        println!("{}", table.render());
    }
    output.figures = tables;

    if args.convergence || run_all {
        let rows = convergence_impact(args.nx.min(256), args.ny.min(256));
        println!("Convergence impact of mantissa-bit masking (§VI-B)");
        println!(
            "{:<12} {:>12} {:>12} {:>16} {:>22}",
            "scheme", "iterations", "baseline", "iter increase %", "solution norm diff %"
        );
        for row in &rows {
            println!(
                "{:<12} {:>12} {:>12} {:>16.3} {:>22.3e}",
                row.scheme,
                row.iterations,
                row.baseline_iterations,
                row.iteration_increase_pct,
                row.solution_norm_difference_pct
            );
        }
        println!();
        output.convergence = rows;
    }

    if args.campaign || run_all {
        let rows = fault_campaign_summary(args.trials, 0xABF7);
        println!("Fault-injection outcomes (single bit flip per trial)");
        println!(
            "{:<12} {:<24} {:>7} {:>10} {:>8} {:>10} {:>8} {:>8} {:>6}",
            "scheme",
            "target",
            "trials",
            "corrected",
            "rebuilt",
            "detected",
            "bounds",
            "masked",
            "SDC"
        );
        for row in &rows {
            println!(
                "{:<12} {:<24} {:>7} {:>9.1}% {:>7.1}% {:>9.1}% {:>7.1}% {:>7.1}% {:>5.1}%",
                row.scheme,
                row.target,
                row.trials,
                row.corrected_pct,
                row.rebuilt_pct,
                row.detected_pct,
                row.bounds_pct,
                row.masked_pct,
                row.sdc_pct
            );
        }
        println!();
        output.campaign = rows;
    }

    if args.crc_capability || run_all {
        println!("CRC32C capability (§IV)");
        let crc = Crc32c::new(Crc32cBackend::Hardware);
        println!("backend in use: {:?}", crc.backend());
        println!(
            "HD=6 window: codewords of 178..=5243 bits (TeaLeaf row codeword: {} bits, inside: {})",
            5 * 96,
            crc32c_hd6_window(5 * 96)
        );
        println!(
            "operating points at HD 6 (nECmED): {:?}",
            operating_points(6)
        );
        let data: Vec<u8> = (0..60u8)
            .map(|i| i.wrapping_mul(41).wrapping_add(3))
            .collect();
        for weight in 1..=4usize {
            let sweep = sweep_crc32c(&crc, &data, weight, 20_000);
            println!(
                "weight-{weight} errors over a 480-bit codeword: {}/{} detected ({:.4} %)",
                sweep.detected,
                sweep.patterns,
                100.0 * sweep.detection_rate()
            );
            output.crc_capability.push((
                format!("weight_{weight}"),
                Json::obj([
                    ("patterns", sweep.patterns.into()),
                    ("detected", sweep.detected.into()),
                    ("rate", sweep.detection_rate().into()),
                ]),
            ));
        }
        println!();
    }

    if let Some(path) = &args.json {
        std::fs::write(path, output.to_json().render()).expect("write JSON output");
        println!("machine-readable results written to {path}");
    }
}
