//! `experiments --matrix-file` — protected kernels on an arbitrary Matrix
//! Market file.
//!
//! The figure tables all run the paper's TeaLeaf operator; this mode points
//! the same protected machinery at any `.mtx` file instead.  It times the
//! protected SpMV for every element scheme on each storage tier (CSR, COO
//! and blocked CSR), reporting the overhead relative to the unprotected CSR
//! kernel, and — when the operator is square and symmetric — runs a
//! matrix-protected CG solve per tier to show that the storage tier changes
//! neither the iteration count nor the answer.

use crate::json::Json;
use abft_core::{
    AnyProtectedMatrix, EccScheme, FaultLog, ProtectedMatrix, ProtectionConfig, SpmvWorkspace,
    StorageTier,
};
use abft_ecc::Crc32cBackend;
use abft_solvers::SolveSpec;
use abft_sparse::builders::pad_rows_to_min_entries;
use abft_sparse::load_matrix_market;
use std::time::Instant;

/// Configuration of one `--matrix-file` run.
#[derive(Debug, Clone)]
pub struct MatrixFileConfig {
    /// Path of the Matrix Market file.
    pub path: String,
    /// Block count of the blocked-CSR tier (`--num-blocks`).
    pub num_blocks: usize,
    /// SpMV applications per timed repeat.
    pub iters: usize,
    /// Timed repeats; the minimum is reported.
    pub repeats: usize,
    /// Use the Rayon-parallel kernels.
    pub parallel: bool,
}

/// One timed SpMV configuration.
#[derive(Debug, Clone)]
pub struct MatrixFileSpmvRow {
    /// Storage-tier label (`csr`, `coo`, `blocked(B)`).
    pub tier: String,
    /// Element/row-pointer protection scheme label.
    pub scheme: String,
    /// Mean wall time of one SpMV application, in nanoseconds.
    pub mean_ns_per_iter: f64,
    /// Overhead vs the unprotected CSR kernel of the same run, in percent.
    pub overhead_pct: f64,
}

/// One per-tier CG solve (symmetric operators only).
#[derive(Debug, Clone)]
pub struct MatrixFileSolveRow {
    /// Storage-tier label.
    pub tier: String,
    /// CG iterations to convergence.
    pub iterations: usize,
    /// Whether the solve converged.
    pub converged: bool,
    /// Matrix codeword checks the solve performed.
    pub checks: u64,
}

/// Everything one `--matrix-file` run measured.
#[derive(Debug, Clone)]
pub struct MatrixFileReport {
    /// Source path.
    pub path: String,
    /// Rows of the (padded) operator.
    pub rows: usize,
    /// Columns of the operator.
    pub cols: usize,
    /// Non-zeros after CRC-floor padding.
    pub nnz: usize,
    /// Non-zeros as stored in the file.
    pub file_nnz: usize,
    /// Timed SpMV rows.
    pub spmv: Vec<MatrixFileSpmvRow>,
    /// Per-tier CG solves; empty when the operator is not symmetric.
    pub solves: Vec<MatrixFileSolveRow>,
}

fn tier_label(tier: StorageTier) -> String {
    match tier {
        StorageTier::Csr => "csr".into(),
        StorageTier::Coo => "coo".into(),
        StorageTier::BlockedCsr(b) => format!("blocked({b})"),
    }
}

fn schemes() -> [EccScheme; 5] {
    [
        EccScheme::None,
        EccScheme::Sed,
        EccScheme::Secded64,
        EccScheme::Secded128,
        EccScheme::Crc32c,
    ]
}

/// Loads the file, pads rows up to the CRC32C four-entry floor (capped by
/// the column count) and runs the tier × scheme sweep.
pub fn matrix_file_report(config: &MatrixFileConfig) -> Result<MatrixFileReport, String> {
    let raw = load_matrix_market(&config.path).map_err(|e| format!("{}: {e}", config.path))?;
    let file_nnz = raw.nnz();
    let matrix = pad_rows_to_min_entries(&raw, 4.min(raw.cols().max(1)));
    let tiers = [
        StorageTier::Csr,
        StorageTier::Coo,
        StorageTier::BlockedCsr(config.num_blocks.max(1)),
    ];

    let x: Vec<f64> = (0..matrix.cols())
        .map(|i| 1.0 + (i as f64 * 0.13).sin())
        .collect();
    let mut spmv = Vec::new();
    let mut csr_baseline_ns = f64::NAN;
    for tier in tiers {
        for scheme in schemes() {
            let cfg = ProtectionConfig::matrix_only(scheme)
                .with_crc_backend(Crc32cBackend::SlicingBy16)
                .with_parallel(config.parallel);
            // A scheme can be infeasible for this operator (e.g. CRC32C on a
            // matrix with fewer than four columns); skip it rather than fail
            // the whole report.
            let Ok(a) = AnyProtectedMatrix::encode(&matrix, &cfg, tier) else {
                continue;
            };
            let log = FaultLog::new();
            let mut y = vec![0.0; matrix.rows()];
            let mut ws = SpmvWorkspace::new();
            let best = (0..config.repeats.max(1))
                .map(|_| {
                    let start = Instant::now();
                    for iteration in 0..config.iters.max(1) {
                        if config.parallel {
                            a.spmv_parallel_with(&x[..], &mut y, iteration as u64, &log, &mut ws)
                                .expect("clean spmv");
                        } else {
                            a.spmv_with(&x[..], &mut y, iteration as u64, &log, &mut ws)
                                .expect("clean spmv");
                        }
                    }
                    std::hint::black_box(&y);
                    start.elapsed().as_nanos() as f64 / config.iters.max(1) as f64
                })
                .fold(f64::INFINITY, f64::min);
            if tier == StorageTier::Csr && scheme == EccScheme::None {
                csr_baseline_ns = best;
            }
            spmv.push(MatrixFileSpmvRow {
                tier: tier_label(tier),
                scheme: scheme.label().into(),
                mean_ns_per_iter: best,
                overhead_pct: (best / csr_baseline_ns - 1.0) * 100.0,
            });
        }
    }

    // CG only makes sense on a square symmetric operator; the padding keeps
    // symmetric inputs symmetric (it mirrors the fill pattern's zeros).
    let mut solves = Vec::new();
    if matrix.rows() == matrix.cols() && matrix.is_symmetric(1e-12) {
        let rhs: Vec<f64> = (0..matrix.rows())
            .map(|i| 1.0 + (i % 5) as f64 * 0.25)
            .collect();
        for tier in tiers {
            let outcome = SolveSpec::new(EccScheme::Secded64)
                .matrix_only()
                .crc_backend(Crc32cBackend::SlicingBy16)
                .max_iterations(10 * matrix.rows().max(100))
                .tolerance(1e-10)
                .storage(tier)
                .solve(&matrix, &rhs)
                .map_err(|e| format!("{}: CG solve failed on {tier:?}: {e}", config.path))?;
            solves.push(MatrixFileSolveRow {
                tier: tier_label(tier),
                iterations: outcome.status.iterations,
                converged: outcome.status.converged,
                checks: outcome.faults.checks.iter().sum(),
            });
        }
    }

    Ok(MatrixFileReport {
        path: config.path.clone(),
        rows: matrix.rows(),
        cols: matrix.cols(),
        nnz: matrix.nnz(),
        file_nnz,
        spmv,
        solves,
    })
}

/// Plain-text rendering of a report.
pub fn render_report(report: &MatrixFileReport) -> String {
    let mut out = format!(
        "{}: {} x {}, {} assembled non-zeros ({} after CRC-floor padding)\n\n",
        report.path, report.rows, report.cols, report.file_nnz, report.nnz
    );
    out.push_str(&format!(
        "{:<12} {:<12} {:>16} {:>10}\n",
        "tier", "scheme", "mean ns/iter", "overhead"
    ));
    for row in &report.spmv {
        out.push_str(&format!(
            "{:<12} {:<12} {:>16.0} {:>9.1}%\n",
            row.tier, row.scheme, row.mean_ns_per_iter, row.overhead_pct
        ));
    }
    if report.solves.is_empty() {
        out.push_str("\noperator is not symmetric: CG solve comparison skipped\n");
    } else {
        out.push_str(&format!(
            "\nmatrix-protected CG (SECDED64) per tier:\n{:<12} {:>11} {:>10} {:>10}\n",
            "tier", "iterations", "converged", "checks"
        ));
        for row in &report.solves {
            out.push_str(&format!(
                "{:<12} {:>11} {:>10} {:>10}\n",
                row.tier, row.iterations, row.converged, row.checks
            ));
        }
    }
    out
}

/// Machine-readable rendering for `--json`.
pub fn report_json(report: &MatrixFileReport) -> Json {
    Json::obj([
        ("path", report.path.clone().into()),
        ("rows", report.rows.into()),
        ("cols", report.cols.into()),
        ("nnz", report.nnz.into()),
        ("file_nnz", report.file_nnz.into()),
        (
            "spmv",
            Json::Arr(
                report
                    .spmv
                    .iter()
                    .map(|row| {
                        Json::obj([
                            ("tier", row.tier.clone().into()),
                            ("scheme", row.scheme.clone().into()),
                            ("mean_ns_per_iter", row.mean_ns_per_iter.into()),
                            ("overhead_pct", row.overhead_pct.into()),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "solves",
            Json::Arr(
                report
                    .solves
                    .iter()
                    .map(|row| {
                        Json::obj([
                            ("tier", row.tier.clone().into()),
                            ("iterations", row.iterations.into()),
                            ("converged", row.converged.into()),
                            ("checks", (row.checks as usize).into()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture(name: &str) -> String {
        format!("{}/../../tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"))
    }

    #[test]
    fn symmetric_fixture_reports_spmv_and_tier_identical_solves() {
        let report = matrix_file_report(&MatrixFileConfig {
            path: fixture("spd_symmetric.mtx"),
            num_blocks: 3,
            iters: 2,
            repeats: 1,
            parallel: false,
        })
        .unwrap();
        // 3 tiers × 5 schemes, none skipped (10 columns clears the CRC floor).
        assert_eq!(report.spmv.len(), 15);
        assert_eq!(report.solves.len(), 3);
        assert!(report.solves.iter().all(|s| s.converged));
        assert!(
            report
                .solves
                .iter()
                .all(|s| s.iterations == report.solves[0].iterations),
            "storage tier must not change the CG trajectory: {:?}",
            report.solves
        );
        let text = render_report(&report);
        assert!(text.contains("blocked(3)"));
        assert!(report_json(&report).render().contains("coo"));
    }

    #[test]
    fn unsymmetric_fixture_skips_the_solve_comparison() {
        let report = matrix_file_report(&MatrixFileConfig {
            path: fixture("skew_general.mtx"),
            num_blocks: 2,
            iters: 1,
            repeats: 1,
            parallel: false,
        })
        .unwrap();
        assert_eq!(report.spmv.len(), 15);
        assert!(report.solves.is_empty());
        assert!(render_report(&report).contains("not symmetric"));
    }

    #[test]
    fn missing_file_is_a_clean_error() {
        let err = matrix_file_report(&MatrixFileConfig {
            path: "/nonexistent/matrix.mtx".into(),
            num_blocks: 1,
            iters: 1,
            repeats: 1,
            parallel: false,
        })
        .unwrap_err();
        assert!(err.contains("/nonexistent/matrix.mtx"));
    }
}
