//! CI fault-coverage gate (`experiments --check-coverage`).
//!
//! The perf gate ([`crate::regression`]) protects the *speed* of the
//! protected kernels; this gate protects their *effectiveness*.  It re-runs
//! a fixed-seed smoke fault-injection campaign on the current build — single
//! bit flips into every region under every scheme, plus the erasure
//! scenarios of the parity tier — and compares the outcome rates against the
//! last committed ones in `BENCH_coverage.json`.  A change that silently
//! stops detecting flips, loses a correction path, or breaks the
//! parity-rebuild ladder shows up as a rate drop; campaigns are
//! deterministic for a given seed (per-trial ChaCha streams), so on the
//! committing host the fresh rates reproduce the committed ones exactly and
//! the tolerance only absorbs cross-host floating-point drift in the
//! correctness threshold.
//!
//! Three rates are gated, and only *drops* fail (rates may improve freely):
//!
//! * `safe_pct` — trials without silent corruption;
//! * `recovered_pct` — trials that still produced the correct answer
//!   (corrected, rebuilt from parity, or masked);
//! * `rebuilt_pct` — trials recovered specifically through the XOR parity
//!   tier, so a regression that quietly routes around the erasure ladder
//!   (e.g. erasures suddenly classified as masked) cannot hide behind an
//!   unchanged recovery rate.

use crate::json::Json;
use abft_core::{EccScheme, ParityConfig, ProtectionConfig, StorageTier};
use abft_ecc::Crc32cBackend;
use abft_faultsim::{
    Campaign, CampaignConfig, FaultOutcome, FaultTarget, InjectionKind, StopRule, StreamConfig,
};
use abft_solvers::ReliabilityPolicy;

/// Gate configuration.
#[derive(Debug, Clone)]
pub struct CoverageConfig {
    /// Committed coverage baseline file.
    pub baseline: String,
    /// Grid cells in x of each trial's TeaLeaf problem.
    pub nx: usize,
    /// Grid cells in y of each trial's TeaLeaf problem.
    pub ny: usize,
    /// Trials per (injection, scheme, target) row.
    pub trials: usize,
    /// Campaign seed (the committed rates are reproducible from it).
    pub seed: u64,
    /// Allowed rate drop, in percentage points.
    pub tolerance_pp: f64,
    /// When set, rows run through the streaming engine with an adaptive
    /// stop rule targeting this Wilson lower bound on the safety rate:
    /// `trials` becomes a *maximum* and each row stops as soon as the
    /// spending-corrected bound proves the target (or futility).  `None`
    /// (the gate's setting) runs every trial, keeping the measured rates
    /// bitwise identical to the committed baseline on the same host.
    pub stop_lb: Option<f64>,
}

impl Default for CoverageConfig {
    fn default() -> Self {
        CoverageConfig {
            baseline: "BENCH_coverage.json".into(),
            nx: 16,
            ny: 16,
            trials: 40,
            seed: 0xABF7,
            tolerance_pp: 5.0,
            stop_lb: None,
        }
    }
}

/// One measured campaign row.
#[derive(Debug, Clone)]
pub struct CoverageRow {
    /// Injection model label (`bit flip`, `chunk erasure (parity)`, …).
    pub injection: String,
    /// Protection scheme label.
    pub scheme: String,
    /// Target region label.
    pub target: String,
    /// Trials run.
    pub trials: usize,
    /// Percentage of trials without silent corruption.
    pub safe_pct: f64,
    /// Percentage of trials that still produced the correct answer.
    pub recovered_pct: f64,
    /// Percentage of trials rebuilt through the XOR parity tier.
    pub rebuilt_pct: f64,
}

/// The parity geometry of the erasure scenarios: small chunks so the smoke
/// grid still contains several stripes.
fn smoke_parity() -> ParityConfig {
    ParityConfig {
        stripe_chunks: 4,
        chunk_words: 16,
    }
}

fn run_campaign(
    config: CampaignConfig,
    injection_label: &str,
    scheme: EccScheme,
    stop_lb: Option<f64>,
) -> CoverageRow {
    let target = config.target;
    let campaign = Campaign::new(config);
    let stats = match stop_lb {
        None => campaign.run(),
        Some(target_safety_lb) => {
            let stream = StreamConfig {
                stop: Some(StopRule::target(target_safety_lb)),
                capture_limit: 0,
                ..StreamConfig::default()
            };
            campaign.run_streaming(&stream).stats
        }
    };
    CoverageRow {
        injection: injection_label.to_string(),
        scheme: scheme.label().to_string(),
        target: target.label().to_string(),
        trials: stats.trials(),
        safe_pct: 100.0 * stats.safety_rate(),
        recovered_pct: 100.0 * stats.recovery_rate(),
        rebuilt_pct: 100.0 * stats.rate(FaultOutcome::DetectedRebuilt),
    }
}

/// Runs the smoke campaign matrix and returns one row per configuration:
/// single bit flips for every scheme × region, then the erasure scenarios
/// (chunk erasure with and without the parity tier, row-pointer codeword
/// group erasure).
pub fn measure_coverage(config: &CoverageConfig) -> Vec<CoverageRow> {
    let base = CampaignConfig {
        nx: config.nx,
        ny: config.ny,
        trials: config.trials,
        seed: config.seed,
        ..CampaignConfig::default()
    };
    let mut rows = Vec::new();
    for scheme in [
        EccScheme::Sed,
        EccScheme::Secded64,
        EccScheme::Secded128,
        EccScheme::Crc32c,
    ] {
        for target in FaultTarget::ALL {
            rows.push(run_campaign(
                CampaignConfig {
                    protection: ProtectionConfig::full(scheme)
                        .with_crc_backend(Crc32cBackend::Hardware),
                    target,
                    flips_per_trial: 1,
                    injection: InjectionKind::BitFlips,
                    ..base.clone()
                },
                "bit flip",
                scheme,
                config.stop_lb,
            ));
        }
    }
    // The COO tier carries the matrix-side redundancy differently (per-element
    // codewords plus a SECDED code over every element's row index), so its
    // matrix-region coverage is gated separately — a tier-specific decode
    // regression must not be able to hide behind unchanged CSR rates.
    for scheme in [
        EccScheme::Sed,
        EccScheme::Secded64,
        EccScheme::Secded128,
        EccScheme::Crc32c,
    ] {
        for target in [
            FaultTarget::MatrixValues,
            FaultTarget::MatrixColumnIndices,
            FaultTarget::RowPointer,
        ] {
            rows.push(run_campaign(
                CampaignConfig {
                    protection: ProtectionConfig::full(scheme)
                        .with_crc_backend(Crc32cBackend::Hardware),
                    target,
                    flips_per_trial: 1,
                    injection: InjectionKind::BitFlips,
                    storage: StorageTier::Coo,
                    ..base.clone()
                },
                "bit flip (coo)",
                scheme,
                config.stop_lb,
            ));
        }
    }
    // Mid-iteration strikes on the *live* CG vectors (x, r, p): the fault
    // lands between two iterations through the solver's poll hook, so the
    // vector scrub — not the at-rest encode path — is what must catch it.
    for scheme in [
        EccScheme::Sed,
        EccScheme::Secded64,
        EccScheme::Secded128,
        EccScheme::Crc32c,
    ] {
        for (injection, label, flips) in [
            (InjectionKind::SolverVectorFlips, "solver-vector flip", 1),
            (InjectionKind::SolverVectorBurst, "solver-vector burst", 8),
        ] {
            rows.push(run_campaign(
                CampaignConfig {
                    protection: ProtectionConfig::full(scheme)
                        .with_crc_backend(Crc32cBackend::Hardware),
                    target: FaultTarget::DenseVector,
                    injection,
                    flips_per_trial: flips,
                    ..base.clone()
                },
                label,
                scheme,
                config.stop_lb,
            ));
        }
    }
    rows.push(run_campaign(
        CampaignConfig {
            protection: ProtectionConfig::full(EccScheme::Secded64).with_parity(smoke_parity()),
            target: FaultTarget::DenseVector,
            injection: InjectionKind::ChunkErasure,
            ..base.clone()
        },
        "chunk erasure (parity)",
        EccScheme::Secded64,
        config.stop_lb,
    ));
    rows.push(run_campaign(
        CampaignConfig {
            protection: ProtectionConfig::full(EccScheme::Secded64),
            target: FaultTarget::DenseVector,
            injection: InjectionKind::ChunkErasure,
            ..base.clone()
        },
        "chunk erasure (no parity)",
        EccScheme::Secded64,
        config.stop_lb,
    ));
    rows.push(run_campaign(
        CampaignConfig {
            protection: ProtectionConfig::full(EccScheme::Secded64),
            target: FaultTarget::RowPointer,
            injection: InjectionKind::RowPointerGroupErasure,
            ..base.clone()
        },
        "row-pointer group erasure",
        EccScheme::Secded64,
        config.stop_lb,
    ));
    // Selective-reliability scenarios: faults aimed at the inner-outer
    // FT-PCG's preconditioner — single flips and multi-bit bursts in the
    // ILU(0) factors, plus bursts struck into the inner-apply output right
    // at the reliability boundary — in both tiers.  The protected tier must
    // keep correcting/fail-stopping; the unreliable tier carries zero
    // redundancy, so its safety rate gates the outer loop's bounded-norm
    // screen plus the certified residual recomputation.
    for (injection, label, flips, policy) in [
        (
            InjectionKind::PrecondFactorFlips,
            "precond factor flip (protected)",
            1,
            ReliabilityPolicy::Uniform,
        ),
        (
            InjectionKind::PrecondFactorFlips,
            "precond factor flip (unreliable)",
            1,
            ReliabilityPolicy::Selective,
        ),
        (
            InjectionKind::PrecondFactorBurst,
            "precond factor burst (protected)",
            8,
            ReliabilityPolicy::Uniform,
        ),
        (
            InjectionKind::PrecondFactorBurst,
            "precond factor burst (unreliable)",
            8,
            ReliabilityPolicy::Selective,
        ),
        (
            InjectionKind::InnerApplyBurst,
            "inner-apply burst (protected)",
            8,
            ReliabilityPolicy::Uniform,
        ),
        (
            InjectionKind::InnerApplyBurst,
            "inner-apply burst (unreliable)",
            8,
            ReliabilityPolicy::Selective,
        ),
    ] {
        rows.push(run_campaign(
            CampaignConfig {
                protection: ProtectionConfig::full(EccScheme::Secded64),
                target: FaultTarget::DenseVector,
                injection,
                flips_per_trial: flips,
                precond_reliability: policy,
                ..base.clone()
            },
            label,
            EccScheme::Secded64,
            config.stop_lb,
        ));
    }
    rows
}

/// Plain-text table of measured coverage rows.
pub fn render_table(rows: &[CoverageRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<26} {:<12} {:<24} {:>7} {:>8} {:>11} {:>9}\n",
        "injection", "scheme", "target", "trials", "safe %", "recovered %", "rebuilt %"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<26} {:<12} {:<24} {:>7} {:>8.1} {:>11.1} {:>9.1}\n",
            row.injection,
            row.scheme,
            row.target,
            row.trials,
            row.safe_pct,
            row.recovered_pct,
            row.rebuilt_pct
        ));
    }
    out
}

/// The machine-readable document committed as `BENCH_coverage.json`.
pub fn coverage_json(config: &CoverageConfig, rows: &[CoverageRow]) -> Json {
    Json::obj([
        (
            "workload",
            Json::obj([
                ("nx", config.nx.into()),
                ("ny", config.ny.into()),
                ("trials", config.trials.into()),
                ("seed", (config.seed as usize).into()),
            ]),
        ),
        (
            "coverage",
            Json::Arr(
                rows.iter()
                    .map(|row| {
                        Json::obj([
                            ("injection", row.injection.clone().into()),
                            ("scheme", row.scheme.clone().into()),
                            ("target", row.target.clone().into()),
                            ("trials", row.trials.into()),
                            ("safe_pct", row.safe_pct.into()),
                            ("recovered_pct", row.recovered_pct.into()),
                            ("rebuilt_pct", row.rebuilt_pct.into()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// One compared row of the gate.
#[derive(Debug, Clone)]
pub struct CoverageGateRow {
    /// Injection model label.
    pub injection: String,
    /// Scheme label.
    pub scheme: String,
    /// Target region label.
    pub target: String,
    /// The gated metric (`safe`, `recovered`, or `rebuilt`).
    pub metric: &'static str,
    /// Committed rate in percent.
    pub baseline_pct: f64,
    /// Freshly measured rate in percent.
    pub fresh_pct: f64,
    /// Whether the fresh rate dropped below the committed one by more than
    /// the tolerance.
    pub dropped: bool,
}

/// The gate's verdict.
#[derive(Debug, Clone)]
pub struct CoverageReport {
    /// All compared metrics.
    pub rows: Vec<CoverageGateRow>,
    /// The tolerance the verdict used, in percentage points.
    pub tolerance_pp: f64,
}

impl CoverageReport {
    /// True when any gated rate dropped beyond the tolerance.
    pub fn dropped(&self) -> bool {
        self.rows.iter().any(|row| row.dropped)
    }

    /// Plain-text table of the comparison.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<26} {:<12} {:<24} {:<10} {:>10} {:>8}  {}\n",
            "injection", "scheme", "target", "metric", "baseline", "fresh", "verdict"
        ));
        for row in &self.rows {
            out.push_str(&format!(
                "{:<26} {:<12} {:<24} {:<10} {:>9.1}% {:>7.1}%  {}\n",
                row.injection,
                row.scheme,
                row.target,
                row.metric,
                row.baseline_pct,
                row.fresh_pct,
                if row.dropped { "DROPPED" } else { "ok" }
            ));
        }
        out.push_str(&format!(
            "tolerance: -{:.1} percentage points on each rate\n",
            self.tolerance_pp
        ));
        out
    }
}

fn str_field<'a>(row: &'a Json, key: &str) -> &'a str {
    row.get(key).and_then(Json::as_str).unwrap_or("")
}

fn num_field(row: &Json, key: &str) -> f64 {
    row.get(key).and_then(Json::as_f64).unwrap_or(f64::NAN)
}

/// Runs the gate: re-measures the committed workload (size, trial count and
/// seed are read back from the baseline so the rates are comparable) and
/// fails any rate that dropped by more than the tolerance.
pub fn check_coverage(config: &CoverageConfig) -> Result<CoverageReport, String> {
    let text = std::fs::read_to_string(&config.baseline)
        .map_err(|e| format!("cannot read baseline {}: {e}", config.baseline))?;
    let doc = Json::parse(&text).map_err(|e| format!("cannot parse {}: {e}", config.baseline))?;
    let workload = doc.get("workload");
    let usize_field = |key: &str, default: usize| {
        workload
            .and_then(|w| w.get(key))
            .and_then(Json::as_f64)
            .map(|v| v as usize)
            .unwrap_or(default)
    };
    let measured = measure_coverage(&CoverageConfig {
        nx: usize_field("nx", config.nx),
        ny: usize_field("ny", config.ny),
        trials: usize_field("trials", config.trials),
        seed: usize_field("seed", config.seed as usize) as u64,
        ..config.clone()
    });
    let baseline = doc
        .get("coverage")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{}: no coverage array", config.baseline))?;

    let mut rows = Vec::new();
    for base_row in baseline {
        let (injection, scheme, target) = (
            str_field(base_row, "injection"),
            str_field(base_row, "scheme"),
            str_field(base_row, "target"),
        );
        let Some(fresh) = measured
            .iter()
            .find(|r| r.injection == injection && r.scheme == scheme && r.target == target)
        else {
            continue;
        };
        for (metric, baseline_pct, fresh_pct) in [
            ("safe", num_field(base_row, "safe_pct"), fresh.safe_pct),
            (
                "recovered",
                num_field(base_row, "recovered_pct"),
                fresh.recovered_pct,
            ),
            (
                "rebuilt",
                num_field(base_row, "rebuilt_pct"),
                fresh.rebuilt_pct,
            ),
        ] {
            if !baseline_pct.is_finite() {
                continue;
            }
            rows.push(CoverageGateRow {
                injection: injection.to_string(),
                scheme: scheme.to_string(),
                target: target.to_string(),
                metric,
                baseline_pct,
                fresh_pct,
                dropped: fresh_pct < baseline_pct - config.tolerance_pp,
            });
        }
    }
    if rows.is_empty() {
        return Err("coverage gate compared zero rows — baseline empty or mismatched".into());
    }
    Ok(CoverageReport {
        rows,
        tolerance_pp: config.tolerance_pp,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_passes_against_its_own_measurement_and_fails_on_inflated_baseline() {
        let small = CoverageConfig {
            nx: 12,
            ny: 12,
            trials: 4,
            seed: 99,
            tolerance_pp: 5.0,
            baseline: String::new(),
            stop_lb: None,
        };
        let rows = measure_coverage(&small);
        // 4 schemes x 4 targets of CSR bit flips, 4 schemes x 3 matrix-side
        // targets through the COO tier, 4 schemes x 2 live solver-vector
        // strikes, the 3 erasure scenarios, plus the 6 selective-reliability
        // preconditioner scenarios.
        assert_eq!(rows.len(), 45);
        assert!(render_table(&rows).contains("chunk erasure (parity)"));
        assert!(render_table(&rows).contains("bit flip (coo)"));
        assert!(render_table(&rows).contains("solver-vector flip"));
        assert!(render_table(&rows).contains("solver-vector burst"));
        // Every preconditioner scenario — protected or unreliable — must be
        // free of silent corruption: the unreliable tier's safety comes from
        // the outer screen, not from luck.
        for row in rows.iter().filter(|r| {
            r.injection.starts_with("precond") || r.injection.starts_with("inner-apply")
        }) {
            assert_eq!(
                row.safe_pct, 100.0,
                "selective-reliability scenario leaked silent corruption: {row:?}"
            );
        }
        let parity_row = rows
            .iter()
            .find(|r| r.injection == "chunk erasure (parity)")
            .unwrap();
        assert!(
            parity_row.rebuilt_pct > 0.0,
            "parity scenario must exercise the rebuild ladder: {parity_row:?}"
        );

        let path = std::env::temp_dir().join("abft_gate_coverage.json");
        std::fs::write(&path, coverage_json(&small, &rows).render()).unwrap();
        let config = CoverageConfig {
            baseline: path.to_string_lossy().into_owned(),
            ..small.clone()
        };
        let report = check_coverage(&config).unwrap();
        assert!(!report.dropped(), "{}", report.render());
        assert!(report.render().contains("rebuilt"));

        // A baseline claiming better coverage than the build delivers must
        // fail the gate.
        let mut inflated = rows.clone();
        for row in &mut inflated {
            row.recovered_pct = 200.0;
        }
        let bad = std::env::temp_dir().join("abft_gate_coverage_bad.json");
        std::fs::write(&bad, coverage_json(&small, &inflated).render()).unwrap();
        let report = check_coverage(&CoverageConfig {
            baseline: bad.to_string_lossy().into_owned(),
            ..small
        })
        .unwrap();
        assert!(report.dropped(), "{}", report.render());
    }

    #[test]
    fn gate_errors_on_missing_baseline() {
        let config = CoverageConfig {
            baseline: "/nonexistent/BENCH_coverage.json".into(),
            ..CoverageConfig::default()
        };
        assert!(check_coverage(&config).is_err());
    }
}
