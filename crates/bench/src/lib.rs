//! # abft-bench — the experiment harness behind Figures 4–9
//!
//! This crate contains the shared machinery used by both the Criterion
//! benches (`benches/fig*.rs`, one per figure of the paper) and the
//! `experiments` binary, which prints the same overhead tables the paper
//! plots and records in EXPERIMENTS.md.
//!
//! The measurement protocol mirrors the paper's: the workload is a TeaLeaf
//! heat-conduction solve (CG), the baseline is the unprotected build, and
//! every number reported is the runtime overhead of a protection
//! configuration relative to that baseline.  Because this reproduction runs
//! on a single CPU node, the paper's hardware platforms are replaced by
//! configurations (serial vs Rayon-parallel, software vs hardware CRC32C) —
//! see DESIGN.md §3 for the substitution rationale.

use abft_core::{EccScheme, ProtectionConfig};
use abft_ecc::Crc32cBackend;
use abft_faultsim::{Campaign, CampaignConfig, FaultOutcome, FaultTarget};
use abft_solvers::{ProtectionMode, Solver};
use abft_sparse::CsrMatrix;
use abft_tealeaf::assembly::{assemble_matrix, assemble_rhs, face_coefficients, Conductivity};
use abft_tealeaf::states::apply_states;
use abft_tealeaf::{Deck, Grid};
use std::time::Instant;

pub mod blas1_bench;
pub mod coverage;
pub mod ecc_bench;
pub mod json;
pub mod matrix_file;
pub mod precond_bench;
pub mod queue_bench;
pub mod regression;
pub mod scaling_bench;
pub mod spmv_bench;

/// Minimum-over-repeats mean time per application of `f`, in nanoseconds —
/// the shared timing protocol of the kernel microbenchmarks (`f` receives
/// the iteration index so mutating kernels can alternate their arguments).
pub(crate) fn best_of(repeats: usize, iters: usize, mut f: impl FnMut(usize)) -> f64 {
    (0..repeats.max(1))
        .map(|_| {
            let start = Instant::now();
            for i in 0..iters.max(1) {
                f(i);
            }
            start.elapsed().as_nanos() as f64 / iters.max(1) as f64
        })
        .fold(f64::INFINITY, f64::min)
}

/// A TeaLeaf linear system (conduction matrix and right-hand side) for one
/// time-step of the standard benchmark deck.
#[derive(Debug, Clone)]
pub struct TeaLeafSystem {
    /// The five-point-stencil conduction operator.
    pub matrix: CsrMatrix,
    /// The right-hand side (cell energy density).
    pub rhs: Vec<f64>,
}

/// Assembles the TeaLeaf system for an `nx × ny` grid.
pub fn tealeaf_system(nx: usize, ny: usize) -> TeaLeafSystem {
    let deck = Deck::standard(nx, ny, 1);
    let grid = Grid::new(deck.x_cells, deck.y_cells, deck.x_max, deck.y_max);
    let mut density = vec![1.0; grid.cells()];
    let mut energy = vec![1.0; grid.cells()];
    apply_states(&grid, &deck.states, &mut density, &mut energy);
    let coeffs = face_coefficients(&grid, &density, Conductivity::Reciprocal);
    TeaLeafSystem {
        matrix: assemble_matrix(&grid, &coeffs, deck.dt_init),
        rhs: assemble_rhs(&density, &energy),
    }
}

/// Runs a CG solve of exactly `iterations` iterations (tolerance 0 disables
/// early exit) under `protection` and returns the wall time in seconds.
///
/// The unprotected configuration takes the plain baseline path — the same
/// code the paper's unmodified TeaLeaf would run.
pub fn time_cg(system: &TeaLeafSystem, protection: &ProtectionConfig, iterations: usize) -> f64 {
    let start = Instant::now();
    bench_cg_solve(system, protection, iterations);
    start.elapsed().as_secs_f64()
}

/// The solve body shared by [`time_cg`] and the per-figure Criterion
/// benches: exactly `iterations` CG iterations under `protection`, with the
/// solution black-boxed so the optimiser cannot elide the work.
pub fn bench_cg_solve(system: &TeaLeafSystem, protection: &ProtectionConfig, iterations: usize) {
    let outcome = Solver::cg()
        .max_iterations(iterations)
        .tolerance(0.0)
        .protection(ProtectionMode::from_config(protection))
        .parallel(protection.parallel)
        .solve(&system.matrix, &system.rhs)
        .expect("solve must succeed on clean data");
    assert_eq!(outcome.status.iterations, iterations);
    std::hint::black_box(outcome.solution);
}

/// Runtime overhead of `protected` relative to `baseline`, in percent.
pub fn overhead_pct(baseline_seconds: f64, protected_seconds: f64) -> f64 {
    100.0 * (protected_seconds - baseline_seconds) / baseline_seconds
}

/// One row of an overhead table (one bar of a figure).
#[derive(Debug, Clone)]
pub struct OverheadRow {
    /// Configuration label (e.g. "SECDED64" or "CRC32C (hw)").
    pub label: String,
    /// Absolute runtime in seconds.
    pub seconds: f64,
    /// Overhead relative to the unprotected baseline, in percent.
    pub overhead_pct: f64,
}

/// A complete table for one figure.
#[derive(Debug, Clone)]
pub struct FigureTable {
    /// Figure identifier, e.g. "Figure 4".
    pub figure: String,
    /// What the figure measures.
    pub title: String,
    /// Workload description (grid, iterations, execution mode).
    pub workload: String,
    /// Baseline runtime in seconds.
    pub baseline_seconds: f64,
    /// One row per protection configuration.
    pub rows: Vec<OverheadRow>,
}

impl FigureTable {
    /// Renders the table in a paper-like textual format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{} — {}\n", self.figure, self.title));
        out.push_str(&format!("workload: {}\n", self.workload));
        out.push_str(&format!(
            "{:<28} {:>12} {:>12}\n",
            "configuration", "seconds", "overhead %"
        ));
        out.push_str(&format!(
            "{:<28} {:>12.4} {:>12}\n",
            "unprotected (baseline)", self.baseline_seconds, "0.0"
        ));
        for row in &self.rows {
            out.push_str(&format!(
                "{:<28} {:>12.4} {:>12.1}\n",
                row.label, row.seconds, row.overhead_pct
            ));
        }
        out
    }
}

/// Measurement parameters shared by the figure generators.
#[derive(Debug, Clone, Copy)]
pub struct MeasurementConfig {
    /// Grid cells in x.
    pub nx: usize,
    /// Grid cells in y.
    pub ny: usize,
    /// CG iterations per timed solve.
    pub iterations: usize,
    /// Number of timed repetitions (the minimum is reported, which is the
    /// standard way to suppress scheduling noise for CPU-bound kernels).
    pub repeats: usize,
    /// Use the Rayon-parallel kernels.
    pub parallel: bool,
}

impl Default for MeasurementConfig {
    fn default() -> Self {
        MeasurementConfig {
            nx: 256,
            ny: 256,
            iterations: 50,
            repeats: 3,
            parallel: false,
        }
    }
}

impl MeasurementConfig {
    fn workload(&self) -> String {
        format!(
            "TeaLeaf {}x{} cells, {} CG iterations, {} kernels",
            self.nx,
            self.ny,
            self.iterations,
            if self.parallel { "parallel" } else { "serial" }
        )
    }
}

fn best_time(system: &TeaLeafSystem, protection: &ProtectionConfig, m: &MeasurementConfig) -> f64 {
    (0..m.repeats.max(1))
        .map(|_| time_cg(system, protection, m.iterations))
        .fold(f64::INFINITY, f64::min)
}

/// The scheme labels of the paper's figures, including the hardware /
/// software CRC32C split that stands in for the ISA-support comparison.
fn scheme_configs(base: impl Fn(EccScheme) -> ProtectionConfig) -> Vec<(String, ProtectionConfig)> {
    let mut configs = Vec::new();
    for scheme in EccScheme::ALL {
        if scheme == EccScheme::Crc32c {
            configs.push((
                "CRC32C (sw)".to_string(),
                base(scheme).with_crc_backend(Crc32cBackend::SlicingBy16),
            ));
            if abft_ecc::crc32c::hardware_available() {
                configs.push((
                    "CRC32C (hw)".to_string(),
                    base(scheme).with_crc_backend(Crc32cBackend::Hardware),
                ));
            }
        } else {
            configs.push((scheme.label().to_string(), base(scheme)));
        }
    }
    configs
}

fn figure_table(
    figure: &str,
    title: &str,
    m: &MeasurementConfig,
    configs: Vec<(String, ProtectionConfig)>,
) -> FigureTable {
    let system = tealeaf_system(m.nx, m.ny);
    let baseline_cfg = ProtectionConfig::unprotected().with_parallel(m.parallel);
    let baseline = best_time(&system, &baseline_cfg, m);
    let rows = configs
        .into_iter()
        .map(|(label, cfg)| {
            let seconds = best_time(&system, &cfg.with_parallel(m.parallel), m);
            OverheadRow {
                label,
                seconds,
                overhead_pct: overhead_pct(baseline, seconds),
            }
        })
        .collect();
    FigureTable {
        figure: figure.to_string(),
        title: title.to_string(),
        workload: m.workload(),
        baseline_seconds: baseline,
        rows,
    }
}

/// Figure 4: overhead of protecting the CSR elements (values + column
/// indices) with each scheme.
pub fn figure4(m: &MeasurementConfig) -> FigureTable {
    figure_table(
        "Figure 4",
        "ABFT overhead for protecting CSR elements",
        m,
        scheme_configs(ProtectionConfig::elements_only),
    )
}

/// Figure 5: overhead of protecting the row-pointer vector with each scheme.
pub fn figure5(m: &MeasurementConfig) -> FigureTable {
    figure_table(
        "Figure 5",
        "ABFT overhead for protecting the CSR row-pointer vector",
        m,
        scheme_configs(ProtectionConfig::row_pointer_only),
    )
}

/// Figures 6–8: overhead of protecting the whole CSR matrix with one scheme
/// while sweeping the integrity-check interval.
pub fn figure_interval_sweep(
    figure: &str,
    scheme: EccScheme,
    backend: Crc32cBackend,
    intervals: &[u32],
    m: &MeasurementConfig,
) -> FigureTable {
    let configs = intervals
        .iter()
        .map(|&interval| {
            (
                format!("{} every {} iter", scheme.label(), interval),
                ProtectionConfig::matrix_only(scheme)
                    .with_check_interval(interval)
                    .with_crc_backend(backend),
            )
        })
        .collect();
    figure_table(
        figure,
        &format!(
            "Whole-matrix protection with {} vs check interval",
            scheme.label()
        ),
        m,
        configs,
    )
}

/// Figure 6: SED full-matrix protection vs check interval.
pub fn figure6(m: &MeasurementConfig, intervals: &[u32]) -> FigureTable {
    figure_interval_sweep(
        "Figure 6",
        EccScheme::Sed,
        Crc32cBackend::Hardware,
        intervals,
        m,
    )
}

/// Figure 7: SECDED64 full-matrix protection vs check interval.
pub fn figure7(m: &MeasurementConfig, intervals: &[u32]) -> FigureTable {
    figure_interval_sweep(
        "Figure 7",
        EccScheme::Secded64,
        Crc32cBackend::Hardware,
        intervals,
        m,
    )
}

/// Figure 8: CRC32C full-matrix protection vs check interval (software CRC,
/// matching the consumer-GPU configuration of the paper).
pub fn figure8(m: &MeasurementConfig, intervals: &[u32]) -> FigureTable {
    figure_interval_sweep(
        "Figure 8",
        EccScheme::Crc32c,
        Crc32cBackend::SlicingBy16,
        intervals,
        m,
    )
}

/// Figure 9: overhead of protecting the dense floating-point vectors.
pub fn figure9(m: &MeasurementConfig) -> FigureTable {
    figure_table(
        "Figure 9",
        "ABFT overhead for protecting the dense floating-point vectors",
        m,
        scheme_configs(ProtectionConfig::vectors_only),
    )
}

/// The combined experiment of §VII-B / §VIII: full protection (matrix +
/// vectors) with each scheme.
pub fn combined_full_protection(m: &MeasurementConfig) -> FigureTable {
    figure_table(
        "Combined",
        "Full protection of the CSR matrix and all dense vectors",
        m,
        scheme_configs(ProtectionConfig::full),
    )
}

/// One row of the convergence-impact study (§VI-B).
#[derive(Debug, Clone)]
pub struct ConvergenceRow {
    /// Scheme label.
    pub scheme: String,
    /// Iterations used by the protected run.
    pub iterations: usize,
    /// Iterations used by the unprotected baseline.
    pub baseline_iterations: usize,
    /// Relative iteration increase in percent.
    pub iteration_increase_pct: f64,
    /// Relative difference of the solution norm vs the baseline, in percent.
    pub solution_norm_difference_pct: f64,
}

/// Reproduces the §VI-B claim: full protection changes the converged solution
/// by a negligible amount and the iteration count by less than ~1 %.
pub fn convergence_impact(nx: usize, ny: usize) -> Vec<ConvergenceRow> {
    let system = tealeaf_system(nx, ny);
    let solver = Solver::cg().max_iterations(5000).tolerance(1e-15);
    let reference = solver
        .solve(&system.matrix, &system.rhs)
        .expect("plain reference solve");
    let ref_norm: f64 = reference.solution.iter().map(|v| v * v).sum::<f64>().sqrt();
    EccScheme::ALL
        .iter()
        .map(|&scheme| {
            let protection =
                ProtectionConfig::full(scheme).with_crc_backend(Crc32cBackend::Hardware);
            let result = solver
                .protection(ProtectionMode::Full(protection))
                .solve(&system.matrix, &system.rhs)
                .expect("protected solve");
            let norm: f64 = result.solution.iter().map(|v| v * v).sum::<f64>().sqrt();
            ConvergenceRow {
                scheme: scheme.label().to_string(),
                iterations: result.status.iterations,
                baseline_iterations: reference.status.iterations,
                iteration_increase_pct: 100.0
                    * (result.status.iterations as f64 - reference.status.iterations as f64)
                    / reference.status.iterations as f64,
                solution_norm_difference_pct: 100.0 * ((norm - ref_norm) / ref_norm).abs(),
            }
        })
        .collect()
}

/// One row of the fault-injection summary table.
#[derive(Debug, Clone)]
pub struct CampaignRow {
    /// Scheme label.
    pub scheme: String,
    /// Target region label.
    pub target: String,
    /// Trials run.
    pub trials: usize,
    /// Percentage of faults corrected.
    pub corrected_pct: f64,
    /// Percentage of faults rebuilt from the XOR parity tier.
    pub rebuilt_pct: f64,
    /// Percentage of faults detected but uncorrectable by either tier.
    pub detected_pct: f64,
    /// Percentage of faults caught by bounds checks.
    pub bounds_pct: f64,
    /// Percentage of faults with no effect.
    pub masked_pct: f64,
    /// Percentage of silent data corruptions.
    pub sdc_pct: f64,
}

/// Runs single-bit-flip campaigns for every scheme and region.
pub fn fault_campaign_summary(trials: usize, seed: u64) -> Vec<CampaignRow> {
    let mut rows = Vec::new();
    for scheme in [
        EccScheme::None,
        EccScheme::Sed,
        EccScheme::Secded64,
        EccScheme::Secded128,
        EccScheme::Crc32c,
    ] {
        for target in FaultTarget::ALL {
            // Injecting into a protected vector only makes sense when the
            // vectors are protected.
            if scheme == EccScheme::None && target == FaultTarget::DenseVector {
                continue;
            }
            let config = CampaignConfig {
                nx: 16,
                ny: 16,
                trials,
                flips_per_trial: 1,
                protection: if scheme == EccScheme::None {
                    ProtectionConfig::unprotected()
                } else {
                    ProtectionConfig::full(scheme).with_crc_backend(Crc32cBackend::Hardware)
                },
                target,
                seed,
                ..CampaignConfig::default()
            };
            let stats = Campaign::new(config).run();
            rows.push(CampaignRow {
                scheme: scheme.label().to_string(),
                target: target.label().to_string(),
                trials: stats.trials(),
                corrected_pct: 100.0 * stats.rate(FaultOutcome::Corrected),
                rebuilt_pct: 100.0 * stats.rate(FaultOutcome::DetectedRebuilt),
                detected_pct: 100.0 * stats.rate(FaultOutcome::DetectedAborted),
                bounds_pct: 100.0 * stats.rate(FaultOutcome::BoundsCaught),
                masked_pct: 100.0 * stats.rate(FaultOutcome::Masked),
                sdc_pct: 100.0 * stats.rate(FaultOutcome::SilentCorruption),
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_assembly_has_five_entries_per_row() {
        let system = tealeaf_system(12, 10);
        assert_eq!(system.matrix.rows(), 120);
        assert_eq!(system.rhs.len(), 120);
        for row in 0..system.matrix.rows() {
            assert_eq!(system.matrix.row_range(row).len(), 5);
        }
    }

    #[test]
    fn overhead_computation() {
        assert!((overhead_pct(2.0, 2.5) - 25.0).abs() < 1e-12);
        assert!((overhead_pct(2.0, 2.0)).abs() < 1e-12);
    }

    #[test]
    fn timing_runs_for_protected_and_unprotected() {
        let system = tealeaf_system(16, 16);
        let t0 = time_cg(&system, &ProtectionConfig::unprotected(), 5);
        let t1 = time_cg(&system, &ProtectionConfig::full(EccScheme::Secded64), 5);
        assert!(t0 > 0.0 && t1 > 0.0);
    }

    #[test]
    fn small_figure_tables_render() {
        let m = MeasurementConfig {
            nx: 16,
            ny: 16,
            iterations: 5,
            repeats: 1,
            parallel: false,
        };
        let table = figure4(&m);
        assert!(table.rows.len() >= 4);
        let text = table.render();
        assert!(text.contains("Figure 4"));
        assert!(text.contains("SECDED64"));
        let sweep = figure6(&m, &[1, 4]);
        assert_eq!(sweep.rows.len(), 2);
        assert!(sweep.render().contains("SED every 4 iter"));
    }

    #[test]
    fn convergence_impact_is_tiny() {
        let rows = convergence_impact(16, 16);
        assert_eq!(rows.len(), 4);
        for row in rows {
            assert!(row.iteration_increase_pct.abs() <= 5.0, "{row:?}");
            assert!(row.solution_norm_difference_pct < 1e-6, "{row:?}");
        }
    }
}
