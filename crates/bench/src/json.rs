//! Minimal JSON emission for the `experiments --json` output.
//!
//! The build environment cannot fetch `serde`/`serde_json`, and the harness
//! only ever *writes* JSON (no parsing), so a tiny value tree with a
//! renderer covers the need without external dependencies.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any finite number (non-finite values render as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for objects.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Renders with two-space indentation (the `to_string_pretty` shape).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent + 1);
        let close = "  ".repeat(indent);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => {
                if n.is_finite() {
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad);
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&close);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    out.push_str(&pad);
                    Json::Str(key.clone()).write(out, indent + 1);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&close);
                out.push('}');
            }
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let value = Json::obj([
            ("name", "fig \"4\"".into()),
            ("rows", Json::Arr(vec![1.5.into(), Json::Null, true.into()])),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        let text = value.render();
        assert!(text.contains("\"fig \\\"4\\\"\""));
        assert!(text.contains("1.5"));
        assert!(text.contains("null"));
        assert!(text.contains("true"));
        assert!(text.contains("[]"));
        assert!(text.contains("{}"));
        // Indentation is stable.
        assert!(text.starts_with("{\n  \"name\""));
    }

    #[test]
    fn escapes_control_characters() {
        let text = Json::Str("a\nb\t\u{1}".into()).render();
        assert_eq!(text, "\"a\\nb\\t\\u0001\"");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
    }
}
