//! Re-export of the shared minimal JSON value tree.
//!
//! The module originally lived here for the `experiments --json` output; the
//! fault-campaign failure corpus (`abft_faultsim::record`) now needs the same
//! serde-free value tree, so the implementation moved to
//! [`abft_faultsim::json`] and this path re-exports it for the benchmark
//! harness's many existing `crate::json::Json` users.

pub use abft_faultsim::json::*;
