//! ECC check-throughput microbenchmark backing `BENCH_ecc.json`.
//!
//! The full-protection scheme pays an integrity check on every SpMV and
//! every vector read, so the verify layer's throughput bounds solver
//! throughput.  This harness measures that layer three ways:
//!
//! * **`verify_run`** — certifying a whole encoded vector clean, per scheme:
//!   the *per_group* path re-creates the pre-SIMD check exactly (one
//!   [`abft_ecc::secded::Secded::verify`] / parity / checksum call per
//!   codeword group, the code the masked kernels ran before the batched
//!   layer existed), the *batched* path is the dispatched SIMD predicate of
//!   [`abft_ecc::verify`].
//! * **`dot_masked`** — the masked BLAS-1 dot end to end: *per_group* is a
//!   faithful re-implementation of the check-per-group kernel, *batched* is
//!   the shipped [`ProtectedVector::dot_masked`].
//! * **`crc32c`** — the slicing-width family over the input lengths that
//!   matter (the ~60-byte TeaLeaf row codeword, the 32-byte vector group,
//!   and long runs), the measurements behind
//!   [`abft_ecc::crc32c::auto_software_width`]'s thresholds.  The
//!   *per_group* rows pin the old fixed slicing-by-16 width, the *batched*
//!   rows the `Auto` policy, and *width* rows document every backend.
//!   On a hardware-CRC host the `Auto` rows reflect the `crc32`
//!   instruction — which the pre-PR `Hardware` default already used — so
//!   read the width **policy**'s software-path delta from the width rows
//!   (`SlicingBy16` vs `SlicingBy8`/`SlicingBy4` at each length), not from
//!   pre→post; only `crc_hardware: false` hosts see the policy in the
//!   pre/post comparison itself.
//!
//! Each invocation emits **two trajectory points** — pre (`per_group`) and
//! post (`batched`) — measured in the same process on the same host, with
//! `host_cores`, the dispatched ISA and the hardware-CRC probe recorded so
//! numbers from a 1-core scalar CI box are never mistaken for AVX2 results.

use crate::best_of;
use crate::json::Json;
use abft_core::spmv::protected_spmv;
use abft_core::{
    EccScheme, FaultLog, ProtectedCsr, ProtectedVector, ProtectionConfig, SpmvWorkspace,
};
use abft_ecc::secded::{SECDED_118, SECDED_56};
use abft_ecc::sed::parity_u64;
use abft_ecc::{verify, Crc32c, Crc32cBackend};
use abft_sparse::builders::poisson_2d_padded;

/// One measured configuration.
#[derive(Debug, Clone)]
pub struct EccBenchRow {
    /// Measured operation: `verify_run`, `dot_masked`, `spmv_protected` or
    /// `crc32c`.
    pub op: String,
    /// Protection-scheme label, or the CRC backend label for `crc32c` rows.
    pub scheme: String,
    /// `per_group` (pre: one check per codeword group, scalar),
    /// `batched` (post: the dispatched SIMD layer) or `width` (CRC width
    /// documentation rows).
    pub path: String,
    /// Workload size: elements for the vector ops, bytes for `crc32c` rows.
    pub size: usize,
    /// Mean wall time per operation in nanoseconds (minimum over repeats).
    pub mean_ns_per_op: f64,
}

/// Workload description.
#[derive(Debug, Clone)]
pub struct EccBenchConfig {
    /// Vector length (elements) for the `verify_run` / `dot_masked` rows.
    pub elements: usize,
    /// Poisson grid side for the `spmv_protected` row.
    pub grid_n: usize,
    /// CRC input lengths in bytes.
    pub crc_lengths: Vec<usize>,
    /// Operations per timed repeat.
    pub iters: usize,
    /// Timed repeats; the minimum is reported.
    pub repeats: usize,
}

impl Default for EccBenchConfig {
    fn default() -> Self {
        EccBenchConfig {
            elements: 256 * 256,
            grid_n: 256,
            // 8 B: one row-pointer word.  32 B: one CRC vector group.
            // 60 B: the TeaLeaf 5-element row codeword.  128 B+: vector
            // runs, bracketing the policy thresholds.
            crc_lengths: vec![8, 32, 60, 128, 512, 4096],
            iters: 40,
            repeats: 3,
        }
    }
}

impl EccBenchConfig {
    /// Tiny CI preset.
    pub fn smoke() -> Self {
        EccBenchConfig {
            elements: 24 * 24,
            grid_n: 24,
            crc_lengths: vec![32, 60, 512],
            iters: 2,
            repeats: 1,
        }
    }
}

fn schemes() -> [EccScheme; 4] {
    [
        EccScheme::Sed,
        EccScheme::Secded64,
        EccScheme::Secded128,
        EccScheme::Crc32c,
    ]
}

/// The read mask clearing a scheme's reserved dense-vector mantissa bits.
fn read_mask(scheme: EccScheme) -> u64 {
    !((1u64 << scheme.vector_mantissa_bits()) - 1)
}

/// The pre-SIMD whole-run check: one verify-only call per codeword group,
/// exactly the per-group predicate the masked kernels ran before the
/// batched layer (kept here, against the public `abft-ecc` API, as the
/// benchmark's reference).
fn per_group_clean(scheme: EccScheme, words: &[u64], mask: u64, crc: &Crc32c) -> bool {
    match scheme {
        EccScheme::None => true,
        EccScheme::Sed => words.iter().all(|&w| parity_u64(w) == 0),
        EccScheme::Secded64 => words
            .iter()
            .all(|&w| w & 0x80 == 0 && SECDED_56.verify(&[w >> 8], (w & 0x7F) as u16)),
        EccScheme::Secded128 => words.chunks_exact(2).all(|pair| {
            let (w0, w1) = (pair[0], pair[1]);
            let payload = [(w0 >> 5) | (w1 >> 5) << 59, (w1 >> 5) >> 5];
            let stored = ((w0 & 0x1F) | ((w1 & 0x07) << 5)) as u16;
            w1 & 0x18 == 0 && SECDED_118.verify(&payload, stored)
        }),
        EccScheme::Crc32c => words.chunks_exact(4).all(|group| {
            let stored = group
                .iter()
                .enumerate()
                .fold(0u32, |acc, (j, w)| acc | (((*w & 0xFF) as u32) << (8 * j)));
            stored == crc.checksum_words_masked(group, mask)
        }),
    }
}

/// The batched whole-run check: the dispatched SIMD predicates (CRC groups
/// loop the checksum with the `Auto` width policy, mirroring
/// `GroupCodec::run_clean`).
fn batched_clean(scheme: EccScheme, words: &[u64], mask: u64, crc: &Crc32c) -> bool {
    match scheme {
        EccScheme::None => true,
        EccScheme::Sed => verify::sed_words_clean(words),
        EccScheme::Secded64 => verify::secded64_words_clean(words),
        EccScheme::Secded128 => verify::secded128_words_clean(words),
        EccScheme::Crc32c => words.chunks_exact(4).all(|group| {
            let stored = group
                .iter()
                .enumerate()
                .fold(0u32, |acc, (j, w)| acc | (((*w & 0xFF) as u32) << (8 * j)));
            stored == crc.checksum_words_masked(group, mask)
        }),
    }
}

/// Check-per-group masked dot product — the shape of the pre-SIMD
/// `dot_masked` kernel, re-created against public APIs.
fn dot_per_group(scheme: EccScheme, a: &[u64], b: &[u64], mask: u64, crc: &Crc32c) -> Option<f64> {
    let group = scheme.vector_group().max(1);
    let mut acc = 0.0;
    for (ga, gb) in a.chunks(group).zip(b.chunks(group)) {
        if !per_group_clean(scheme, ga, mask, crc) || !per_group_clean(scheme, gb, mask, crc) {
            return None;
        }
        for (&aw, &bw) in ga.iter().zip(gb) {
            acc += f64::from_bits(aw & mask) * f64::from_bits(bw & mask);
        }
    }
    Some(acc)
}

/// Runs the sweep.
pub fn ecc_microbench(config: &EccBenchConfig) -> Vec<EccBenchRow> {
    let mut rows = Vec::new();
    let log = FaultLog::new();

    // Vector verify + masked dot, per scheme and path.
    let values: Vec<f64> = (0..config.elements)
        .map(|i| 1.0 + (i as f64 * 0.13).sin())
        .collect();
    let values_b: Vec<f64> = (0..config.elements)
        .map(|i| 0.5 + (i as f64 * 0.07).cos())
        .collect();
    for scheme in schemes() {
        // The pre path pins the old fixed slicing-by-16 software width; the
        // post path uses the shipped Auto policy.
        let pre_crc = Crc32c::new(Crc32cBackend::SlicingBy16);
        let post_crc = Crc32c::auto();
        let backend = if scheme == EccScheme::Crc32c {
            Crc32cBackend::Auto
        } else {
            Crc32cBackend::SlicingBy16
        };
        let a = ProtectedVector::from_slice(&values, scheme, backend);
        let b = ProtectedVector::from_slice(&values_b, scheme, backend);
        let mask = read_mask(scheme);
        let mut push = |op: &str, path: &str, ns: f64| {
            rows.push(EccBenchRow {
                op: op.into(),
                scheme: scheme.label().into(),
                path: path.into(),
                size: config.elements,
                mean_ns_per_op: ns,
            });
        };

        let mut sink = true;
        push(
            "verify_run",
            "per_group",
            best_of(config.repeats, config.iters, |_| {
                sink &= per_group_clean(scheme, a.raw(), mask, &pre_crc);
            }),
        );
        push(
            "verify_run",
            "batched",
            best_of(config.repeats, config.iters, |_| {
                sink &= batched_clean(scheme, a.raw(), mask, &post_crc);
            }),
        );
        assert!(sink, "benchmark vectors must verify clean");

        let mut acc = 0.0;
        push(
            "dot_masked",
            "per_group",
            best_of(config.repeats, config.iters, |_| {
                acc +=
                    dot_per_group(scheme, a.raw(), b.raw(), mask, &pre_crc).expect("clean vectors");
            }),
        );
        push(
            "dot_masked",
            "batched",
            best_of(config.repeats, config.iters, |_| {
                acc += a.dot_masked(&b, &log).expect("clean vectors");
            }),
        );
        std::hint::black_box(acc);
    }

    // Fully protected SpMV end to end (checked matrix + scrubbed vector),
    // per scheme — the consumer the verify layer exists for.  Shipped
    // (batched) path only: the per-group matrix kernels no longer exist.
    let matrix = poisson_2d_padded(config.grid_n, config.grid_n);
    for scheme in schemes() {
        let cfg = ProtectionConfig::full(scheme).with_crc_backend(Crc32cBackend::Auto);
        let encoded = ProtectedCsr::from_csr(&matrix, &cfg).expect("encode");
        let x_vals: Vec<f64> = (0..matrix.cols())
            .map(|i| 1.0 + (i as f64 * 0.13).sin())
            .collect();
        let mut x = ProtectedVector::from_slice(&x_vals, scheme, Crc32cBackend::Auto);
        let mut y = ProtectedVector::zeros(matrix.rows(), scheme, Crc32cBackend::Auto);
        let mut ws = SpmvWorkspace::new();
        let ns = best_of(config.repeats, config.iters, |i| {
            protected_spmv(&encoded, &mut x, &mut y, i as u64, &log, &mut ws).expect("clean spmv");
        });
        rows.push(EccBenchRow {
            op: "spmv_protected".into(),
            scheme: scheme.label().into(),
            path: "batched".into(),
            size: matrix.rows(),
            mean_ns_per_op: ns,
        });
    }

    // CRC32C width × length sweep.
    let max_len = config.crc_lengths.iter().copied().max().unwrap_or(0);
    let data: Vec<u8> = (0..max_len)
        .map(|i| (i as u8).wrapping_mul(41).wrapping_add(3))
        .collect();
    let mut widths: Vec<(String, String, Crc32c)> = vec![
        (
            "SlicingBy16".into(),
            "per_group".into(),
            Crc32c::new(Crc32cBackend::SlicingBy16),
        ),
        ("Auto".into(), "batched".into(), Crc32c::auto()),
        (
            "SlicingBy4".into(),
            "width".into(),
            Crc32c::new(Crc32cBackend::SlicingBy4),
        ),
        (
            "SlicingBy8".into(),
            "width".into(),
            Crc32c::new(Crc32cBackend::SlicingBy8),
        ),
    ];
    if abft_ecc::crc32c::hardware_available() {
        widths.push((
            "Hardware".into(),
            "width".into(),
            Crc32c::new(Crc32cBackend::Hardware),
        ));
    }
    for &len in &config.crc_lengths {
        for (label, path, crc) in &widths {
            let input = &data[..len];
            let mut sink = 0u32;
            // Short checksums are too fast for one call per timing loop
            // iteration; batch 64 calls per iteration and divide.
            const BATCH: usize = 64;
            let ns = best_of(config.repeats, config.iters, |_| {
                for _ in 0..BATCH {
                    sink ^= crc.checksum(std::hint::black_box(input));
                }
            }) / BATCH as f64;
            std::hint::black_box(sink);
            rows.push(EccBenchRow {
                op: "crc32c".into(),
                scheme: label.clone(),
                path: path.clone(),
                size: len,
                mean_ns_per_op: ns,
            });
        }
    }
    rows
}

/// Renders the sweep as two trajectory points — pre (`per_group`) and post
/// (`batched`) — ready to append to `BENCH_ecc.json`.  `width` rows ride in
/// the post point as the policy documentation.
pub fn trajectory_points_json(
    label: &str,
    config: &EccBenchConfig,
    rows: &[EccBenchRow],
) -> Vec<Json> {
    [
        ("per_group", vec!["per_group"]),
        ("batched", vec!["batched", "width"]),
    ]
    .iter()
    .map(|(path, includes)| {
        Json::obj([
            ("label", format!("{label} ({path} checks)").into()),
            (
                "host_cores",
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
                    .into(),
            ),
            ("isa", verify::detected_isa().label().into()),
            (
                "crc_hardware",
                abft_ecc::crc32c::hardware_available().into(),
            ),
            (
                "workload",
                Json::obj([
                    ("elements", config.elements.into()),
                    ("grid_n", config.grid_n.into()),
                    (
                        "crc_lengths",
                        Json::Arr(config.crc_lengths.iter().map(|&l| l.into()).collect()),
                    ),
                    ("iters", config.iters.into()),
                    ("repeats", config.repeats.into()),
                ]),
            ),
            (
                "rows",
                Json::Arr(
                    rows.iter()
                        .filter(|row| includes.contains(&row.path.as_str()))
                        .map(|row| {
                            Json::obj([
                                ("op", row.op.clone().into()),
                                ("scheme", row.scheme.clone().into()),
                                ("path", row.path.clone().into()),
                                ("size", row.size.into()),
                                ("mean_ns_per_op", row.mean_ns_per_op.into()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    })
    .collect()
}

/// Renders a plain-text table pairing the two paths per op/scheme with the
/// resulting speedup, followed by the CRC width sweep.
pub fn render_table(rows: &[EccBenchRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<14} {:<12} {:>10} {:>15} {:>12} {:>9}\n",
        "op", "scheme", "size", "per_group ns", "batched ns", "speedup"
    ));
    for row in rows
        .iter()
        .filter(|r| r.path == "per_group" && r.op != "crc32c")
    {
        let batched = rows
            .iter()
            .find(|r| r.path == "batched" && r.op == row.op && r.scheme == row.scheme);
        let (batched_ns, speedup) = match batched {
            Some(b) => (
                format!("{:.0}", b.mean_ns_per_op),
                format!("{:.2}x", row.mean_ns_per_op / b.mean_ns_per_op),
            ),
            None => ("-".into(), "-".into()),
        };
        out.push_str(&format!(
            "{:<14} {:<12} {:>10} {:>15.0} {:>12} {:>9}\n",
            row.op, row.scheme, row.size, row.mean_ns_per_op, batched_ns, speedup
        ));
    }
    for row in rows
        .iter()
        .filter(|r| r.op == "spmv_protected" && r.path == "batched")
    {
        out.push_str(&format!(
            "{:<14} {:<12} {:>10} {:>15} {:>12.0} {:>9}\n",
            row.op, row.scheme, row.size, "-", row.mean_ns_per_op, "-"
        ));
    }
    out.push_str("\nCRC32C width sweep (ns per checksum):\n");
    let mut lengths: Vec<usize> = rows
        .iter()
        .filter(|r| r.op == "crc32c")
        .map(|r| r.size)
        .collect();
    lengths.sort_unstable();
    lengths.dedup();
    let mut backends: Vec<&str> = Vec::new();
    for r in rows.iter().filter(|r| r.op == "crc32c") {
        if !backends.contains(&r.scheme.as_str()) {
            backends.push(r.scheme.as_str());
        }
    }
    out.push_str(&format!("{:<14}", "bytes"));
    for b in &backends {
        out.push_str(&format!(" {:>12}", b));
    }
    out.push('\n');
    for len in lengths {
        out.push_str(&format!("{:<14}", len));
        for b in &backends {
            let ns = rows
                .iter()
                .find(|r| r.op == "crc32c" && r.size == len && r.scheme == *b)
                .map(|r| format!("{:.1}", r.mean_ns_per_op))
                .unwrap_or_else(|| "-".into());
            out.push_str(&format!(" {:>12}", ns));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_produces_paired_rows() {
        let config = EccBenchConfig {
            elements: 64,
            grid_n: 12,
            crc_lengths: vec![32, 60],
            iters: 1,
            repeats: 1,
        };
        let rows = ecc_microbench(&config);
        for op in ["verify_run", "dot_masked"] {
            for scheme in schemes() {
                for path in ["per_group", "batched"] {
                    assert!(
                        rows.iter()
                            .any(|r| r.op == op && r.scheme == scheme.label() && r.path == path),
                        "missing {op}/{}/{path}",
                        scheme.label()
                    );
                }
            }
        }
        assert!(rows.iter().any(|r| r.op == "spmv_protected"));
        assert!(rows.iter().any(|r| r.op == "crc32c" && r.size == 60));
        assert!(rows.iter().all(|r| r.mean_ns_per_op > 0.0));

        let points = trajectory_points_json("test", &config, &rows);
        assert_eq!(points.len(), 2);
        let pre = points[0].render();
        let post = points[1].render();
        assert!(pre.contains("per_group"));
        assert!(pre.contains("host_cores"));
        assert!(post.contains("isa"));
        assert!(post.contains("crc_hardware"));
        // Width documentation rows live only in the post point.
        assert!(post.contains("SlicingBy4"));
        assert!(!pre.contains("SlicingBy4"));

        let table = render_table(&rows);
        assert!(table.contains("speedup"));
        assert!(table.contains("CRC32C width sweep"));
    }

    #[test]
    fn per_group_and_batched_predicates_agree() {
        let values: Vec<f64> = (0..37).map(|i| (i as f64 * 0.7).sin() * 9.0).collect();
        for scheme in schemes() {
            let v = ProtectedVector::from_slice(&values, scheme, Crc32cBackend::SlicingBy16);
            let mask = read_mask(scheme);
            let crc = Crc32c::new(Crc32cBackend::SlicingBy16);
            assert!(per_group_clean(scheme, v.raw(), mask, &crc), "{scheme:?}");
            assert!(batched_clean(scheme, v.raw(), mask, &crc), "{scheme:?}");
            // A flipped payload bit fails both paths identically.
            let mut bad = v.clone();
            bad.inject_bit_flip(5, 33);
            assert!(
                !per_group_clean(scheme, bad.raw(), mask, &crc),
                "{scheme:?}"
            );
            assert!(!batched_clean(scheme, bad.raw(), mask, &crc), "{scheme:?}");
        }
    }

    #[test]
    fn per_group_dot_matches_masked_dot() {
        let a_vals: Vec<f64> = (0..50).map(|i| 1.0 + (i as f64 * 0.3).cos()).collect();
        let b_vals: Vec<f64> = (0..50).map(|i| 2.0 - (i as f64 * 0.2).sin()).collect();
        let log = FaultLog::new();
        for scheme in schemes() {
            let a = ProtectedVector::from_slice(&a_vals, scheme, Crc32cBackend::SlicingBy16);
            let b = ProtectedVector::from_slice(&b_vals, scheme, Crc32cBackend::SlicingBy16);
            let mask = read_mask(scheme);
            let crc = Crc32c::new(Crc32cBackend::SlicingBy16);
            let pre = dot_per_group(scheme, a.raw(), b.raw(), mask, &crc).unwrap();
            let post = a.dot_masked(&b, &log).unwrap();
            assert!(
                (pre - post).abs() <= 1e-9 * post.abs().max(1.0),
                "{scheme:?}: {pre} vs {post}"
            );
        }
    }
}
