//! Worker-count scaling sweep backing `BENCH_scaling.json`.
//!
//! The Fig. 4–9 suite argues that protected-solver overheads shrink as cores
//! are added, which is only observable if the parallel substrate actually
//! scales.  This harness times the parallel protected kernels — SpMV and the
//! masked BLAS-1 family — at a fixed workload while sweeping the scheduler's
//! worker limit ([`rayon::set_worker_limit`]), so a scheduler change shows up
//! as a change in the *shape* of the time-vs-workers curve, not just a single
//! number.
//!
//! Two caveats are recorded in the JSON so trajectory points remain
//! comparable across hosts:
//!
//! * `host_cores` — worker counts beyond the physical core count measure
//!   scheduling overhead, not speedup; a single-core CI box reports a flat
//!   curve for a perfectly healthy scheduler.
//! * `parallel_threshold_elements` — below this vector length the BLAS-1
//!   kernels intentionally run serial, and the sweep includes one workload on
//!   each side of the threshold so the fallback is visible in the data.

use crate::best_of;
use crate::json::Json;
use abft_core::spmv::protected_spmv_parallel;
use abft_core::{
    EccScheme, FaultLog, ProtectedCsr, ProtectedVector, ProtectionConfig, ReductionWorkspace,
    SpmvWorkspace, PARALLEL_MIN_ELEMENTS,
};
use abft_ecc::Crc32cBackend;
use abft_sparse::builders::poisson_2d_padded;

/// One measured configuration of the sweep.
#[derive(Debug, Clone)]
pub struct ScalingBenchRow {
    /// Kernel: `spmv_protected`, `dot`, `axpy`, `dot_axpy`, `xpay`, `scale`.
    pub op: String,
    /// Protection scheme label.
    pub scheme: String,
    /// Poisson grid side length (vectors have `n²` elements).
    pub n: usize,
    /// Worker limit in force during the measurement.
    pub workers: usize,
    /// Mean wall time per kernel application, nanoseconds (minimum over the
    /// repeat set).
    pub mean_ns_per_op: f64,
}

/// Workload description.
#[derive(Debug, Clone)]
pub struct ScalingBenchConfig {
    /// Grid side lengths to sweep (vectors have `n²` elements).
    pub sizes: Vec<usize>,
    /// Worker limits to sweep.
    pub workers: Vec<usize>,
    /// Kernel applications per timed repeat.
    pub iters: usize,
    /// Timed repeats; the minimum is reported.
    pub repeats: usize,
}

impl Default for ScalingBenchConfig {
    fn default() -> Self {
        ScalingBenchConfig {
            // 64² = 4096 elements sits below the parallel BLAS-1 threshold;
            // 256² and 1024² are the paper's small and large deck sizes.
            sizes: vec![64, 256, 1024],
            workers: vec![1, 2, 4, 8],
            iters: 6,
            repeats: 2,
        }
    }
}

impl ScalingBenchConfig {
    /// Tiny CI preset: one size per threshold side, two worker counts.
    pub fn smoke() -> Self {
        ScalingBenchConfig {
            sizes: vec![24, 128],
            workers: vec![1, 2],
            iters: 2,
            repeats: 1,
        }
    }
}

fn schemes() -> [EccScheme; 3] {
    // One representative per cost class: free (None), cheapest per-element
    // code (SECDED64 is the paper's headline single-element scheme) and the
    // grouped CRC.  The full five-scheme sweep lives in the SpMV/BLAS-1
    // microbenches; this harness is about the scheduler, not the codes.
    [EccScheme::None, EccScheme::Secded64, EccScheme::Crc32c]
}

/// Runs the op × scheme × size × workers sweep.  The worker limit is
/// restored to the host default before returning.
pub fn scaling_microbench(config: &ScalingBenchConfig) -> Vec<ScalingBenchRow> {
    let mut rows = Vec::new();
    for &n in &config.sizes {
        let matrix = poisson_2d_padded(n, n);
        let len = matrix.cols();
        let a_vals: Vec<f64> = (0..len).map(|i| 1.0 + (i as f64 * 0.13).sin()).collect();
        let b_vals: Vec<f64> = (0..len).map(|i| 0.5 + (i as f64 * 0.07).cos()).collect();
        for scheme in schemes() {
            let backend = Crc32cBackend::SlicingBy16;
            let cfg = ProtectionConfig::full(scheme)
                .with_crc_backend(backend)
                .with_parallel(true);
            let encoded = ProtectedCsr::from_csr(&matrix, &cfg).expect("encode");
            let a = ProtectedVector::from_slice(&a_vals, scheme, backend);
            let b = ProtectedVector::from_slice(&b_vals, scheme, backend);
            let log = FaultLog::new();
            for &workers in &config.workers {
                rayon::set_worker_limit(Some(workers));
                let mut push = |op: &str, ns: f64| {
                    rows.push(ScalingBenchRow {
                        op: op.into(),
                        scheme: scheme.label().into(),
                        n,
                        workers,
                        mean_ns_per_op: ns,
                    });
                };

                let mut ws = SpmvWorkspace::new();
                let mut xp = a.clone();
                let mut yp = ProtectedVector::zeros(matrix.rows(), scheme, backend);
                push(
                    "spmv_protected",
                    best_of(config.repeats, config.iters, |i| {
                        protected_spmv_parallel(
                            &encoded, &mut xp, &mut yp, i as u64, &log, &mut ws,
                        )
                        .expect("clean spmv");
                    }),
                );

                // The BLAS-1 kernels run through the solver-owned workspace
                // path (what protected CG iterations execute), so the sweep
                // measures the allocation-free kernels.
                let mut rws = ReductionWorkspace::new();
                let mut sink = 0.0;
                push(
                    "dot",
                    best_of(config.repeats, config.iters, |_| {
                        sink += a.dot_masked_parallel_with(&b, &log, &mut rws).unwrap();
                    }),
                );
                let mut y = a.clone();
                push(
                    "axpy",
                    best_of(config.repeats, config.iters, |i| {
                        let alpha = if i % 2 == 0 { 1e-6 } else { -1e-6 };
                        y.axpy_masked_parallel_with(alpha, &b, &log, &mut rws)
                            .unwrap();
                    }),
                );
                let mut y = a.clone();
                push(
                    "dot_axpy",
                    best_of(config.repeats, config.iters, |i| {
                        let alpha = if i % 2 == 0 { 1e-6 } else { -1e-6 };
                        sink += y
                            .dot_axpy_masked_parallel_with(alpha, &b, &log, &mut rws)
                            .unwrap();
                    }),
                );
                let mut y = a.clone();
                push(
                    "xpay",
                    best_of(config.repeats, config.iters, |i| {
                        let alpha = if i % 2 == 0 { 1e-6 } else { -1e-6 };
                        y.xpay_masked_parallel_with(alpha, &b, &log, &mut rws)
                            .unwrap();
                    }),
                );
                let mut y = a.clone();
                push(
                    "scale",
                    best_of(config.repeats, config.iters, |i| {
                        let alpha = if i % 2 == 0 { 1.000001 } else { 1.0 / 1.000001 };
                        y.scale_masked_parallel_with(alpha, &log, &mut rws).unwrap();
                    }),
                );
                std::hint::black_box(sink);
            }
            rayon::set_worker_limit(None);
        }
    }
    rows
}

/// Renders the sweep as one trajectory point ready to append to
/// `BENCH_scaling.json`.
pub fn trajectory_point_json(
    label: &str,
    config: &ScalingBenchConfig,
    rows: &[ScalingBenchRow],
) -> Json {
    Json::obj([
        ("label", label.into()),
        (
            "host_cores",
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .into(),
        ),
        ("parallel_threshold_elements", PARALLEL_MIN_ELEMENTS.into()),
        (
            "workload",
            Json::obj([
                (
                    "sizes",
                    Json::Arr(config.sizes.iter().map(|&n| n.into()).collect()),
                ),
                (
                    "workers",
                    Json::Arr(config.workers.iter().map(|&w| w.into()).collect()),
                ),
                ("iters", config.iters.into()),
                ("repeats", config.repeats.into()),
            ]),
        ),
        (
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|row| {
                        Json::obj([
                            ("op", row.op.clone().into()),
                            ("scheme", row.scheme.clone().into()),
                            ("grid_n", row.n.into()),
                            ("elements", (row.n * row.n).into()),
                            ("workers", row.workers.into()),
                            ("mean_ns_per_op", row.mean_ns_per_op.into()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Renders a plain-text table: one line per op × scheme × size with the
/// per-worker-count times and the speedup of the largest worker count over
/// one worker.
pub fn render_table(config: &ScalingBenchConfig, rows: &[ScalingBenchRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<16} {:<12} {:>6}", "op", "scheme", "grid_n"));
    for &w in &config.workers {
        out.push_str(&format!(" {:>11}", format!("w={w} ns")));
    }
    out.push_str(&format!(" {:>9}\n", "speedup"));
    for &n in &config.sizes {
        for scheme in schemes() {
            for op in ["spmv_protected", "dot", "axpy", "dot_axpy", "xpay", "scale"] {
                let series: Vec<&ScalingBenchRow> = config
                    .workers
                    .iter()
                    .filter_map(|&w| {
                        rows.iter().find(|r| {
                            r.op == op && r.scheme == scheme.label() && r.n == n && r.workers == w
                        })
                    })
                    .collect();
                if series.is_empty() {
                    continue;
                }
                out.push_str(&format!("{:<16} {:<12} {:>6}", op, scheme.label(), n));
                for row in &series {
                    out.push_str(&format!(" {:>11.0}", row.mean_ns_per_op));
                }
                let speedup =
                    series[0].mean_ns_per_op / series.last().unwrap().mean_ns_per_op.max(1.0);
                out.push_str(&format!(" {:>8.2}x\n", speedup));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_produces_rows_for_every_worker_count() {
        let config = ScalingBenchConfig {
            sizes: vec![12],
            workers: vec![1, 2],
            iters: 1,
            repeats: 1,
        };
        let rows = scaling_microbench(&config);
        assert!(!rows.is_empty());
        assert!(rows.iter().any(|r| r.workers == 2));
        assert!(rows.iter().all(|r| r.mean_ns_per_op > 0.0));
        let point = trajectory_point_json("test", &config, &rows);
        let rendered = point.render();
        assert!(rendered.contains("spmv_protected"));
        assert!(rendered.contains("host_cores"));
        assert!(render_table(&config, &rows).contains("speedup"));
    }
}
