//! Selective-reliability sweep backing `BENCH_precond.json`
//! (`experiments --bench-precond`).
//!
//! The inner-outer FT-PCG's pitch is that the preconditioner apply — the
//! bulk of the flop count — does not need the protected tier's redundancy:
//! the outer iteration screens each inner result against a norm bound and
//! recomputes the certified residual through checked kernels, so an inner
//! fault costs *iterations*, never a wrong answer.  This harness measures
//! both sides of that trade as **time to correct solution**:
//!
//! * **uniform** (the paper's baseline design): factors live in
//!   [`ProtectedVector`](abft_core::ProtectedVector) storage and every
//!   apply pays the decode/verify overhead, but injected factor flips are
//!   corrected in place and convergence is undisturbed;
//! * **selective**: plain `Vec<f64>` factors with zero checks — the
//!   fault-free solve is strictly cheaper per iteration, while injected
//!   factor corruption persists and is paid for in extra outer iterations
//!   (distorted search directions, or screen rejections falling back to
//!   the unpreconditioned direction).
//!
//! Sweeping the number of injected factor bit flips records the crossover:
//! at zero faults selective wins on wall clock; as corruption accumulates
//! its time-to-solution climbs past the uniform tier's flat line.  Every
//! row's solution is checked against the fault-free reference, so both
//! columns genuinely measure time to the *correct* answer.

use crate::best_of;
use crate::json::Json;
use abft_core::{EccScheme, FaultLog, FaultLogSnapshot, ProtectedCsr, ProtectionConfig};
use abft_ecc::Crc32cBackend;
use abft_solvers::backends::FullyProtected;
use abft_solvers::{
    ft_pcg, FaultContext, Ilu0, LinearOperator, Polynomial, Preconditioner, ReliabilityPolicy,
    SolveStatus, SolverConfig, SolverError,
};
use abft_sparse::builders::{pad_rows_to_min_entries, poisson_2d_padded};
use abft_sparse::{load_matrix_market, CsrMatrix};

/// Workload description.
#[derive(Debug, Clone)]
pub struct PrecondBenchConfig {
    /// Poisson grid side length (the regular system has `n²` unknowns).
    pub n: usize,
    /// Path of the irregular Matrix Market fixture.
    pub fixture: String,
    /// Factor bit-flip counts swept for the ILU(0) rows.
    pub flips: Vec<usize>,
    /// Outer-iteration budget per solve.
    pub max_iterations: usize,
    /// Relative residual tolerance of every solve.
    pub tolerance: f64,
    /// Timed repeats; the minimum is reported.
    pub repeats: usize,
}

impl Default for PrecondBenchConfig {
    fn default() -> Self {
        PrecondBenchConfig {
            n: 256,
            fixture: "tests/fixtures/spd_symmetric.mtx".into(),
            flips: vec![0, 2, 8, 32],
            max_iterations: 20_000,
            tolerance: 1e-10,
            repeats: 2,
        }
    }
}

impl PrecondBenchConfig {
    /// Tiny CI preset.
    pub fn smoke() -> Self {
        PrecondBenchConfig {
            n: 24,
            flips: vec![0, 8],
            max_iterations: 5_000,
            repeats: 1,
            ..PrecondBenchConfig::default()
        }
    }
}

/// One measured configuration of the sweep.
#[derive(Debug, Clone)]
pub struct PrecondBenchRow {
    /// Matrix label (`poisson_NxN` or the fixture's file stem).
    pub matrix: String,
    /// Preconditioner label (`ilu0`, `jacobi-neumann`).
    pub precond: String,
    /// Reliability policy label (`uniform`, `selective`).
    pub policy: String,
    /// Factor bit flips injected before the solve.
    pub factor_flips: usize,
    /// Mean wall time to the certified solution, nanoseconds (minimum over
    /// the repeats).
    pub mean_ns_to_solution: f64,
    /// Outer iterations to convergence.
    pub iterations: usize,
    /// Whether the solve converged within the budget.
    pub converged: bool,
    /// Whether the solution matches the fault-free reference.
    pub solution_ok: bool,
    /// Inner results the outer screen rejected (summed over regions).
    pub bounds_violations: u64,
    /// Errors the protected tier corrected in place (summed over regions).
    pub corrected: u64,
}

/// A concretely typed preconditioner, kept unboxed so the factor-injection
/// hooks stay reachable.
enum Built {
    Ilu(Ilu0),
    Poly(Polynomial),
}

impl Built {
    fn precond(&self) -> &dyn Preconditioner {
        match self {
            Built::Ilu(p) => p,
            Built::Poly(p) => p,
        }
    }

    fn factor_count(&self) -> usize {
        match self {
            Built::Ilu(p) => p.factor_count(),
            Built::Poly(p) => p.factor_count(),
        }
    }

    fn inject(&mut self, k: usize, bit: u32) {
        match self {
            Built::Ilu(p) => p.inject_factor_bit_flip(k, bit),
            Built::Poly(p) => p.inject_factor_bit_flip(k, bit),
        }
    }
}

/// `count` distinct factor indices (one flip per stored word keeps the
/// protected tier's per-word SECDED within its single-error budget, so the
/// uniform rows measure correction, not fail-stop).
fn distinct_indices(count: usize, domain: usize) -> Vec<usize> {
    let mut out: Vec<usize> = Vec::new();
    if domain == 0 {
        return out;
    }
    let mut k = 13 % domain;
    while out.len() < count.min(domain) {
        while out.contains(&k) {
            k = (k + 1) % domain;
        }
        out.push(k);
        k = (k + 997) % domain;
    }
    out
}

/// The shared FT-PCG path (identical to `SolveSpec::solve` and the queue's
/// per-column dispatch): protected outer loop, caller-tier inner apply.
fn run_ft_pcg<Op: LinearOperator>(
    op: &Op,
    rhs: &[f64],
    precond: &dyn Preconditioner,
    config: &SolverConfig,
) -> Result<(Vec<f64>, SolveStatus, FaultLogSnapshot), SolverError> {
    let log = FaultLog::new();
    let base = FaultContext::with_log(&log);
    let ctx = base.scoped_to(op.reduction_workspace());
    let b = op.vector_from(rhs);
    let (mut x, status) = ft_pcg(op, &b, precond, config, &ctx)?;
    let solution = op.finish(&mut x, &ctx)?;
    Ok((solution, status, log.snapshot()))
}

fn relative_l2_distance(x: &[f64], reference: &[f64]) -> f64 {
    let (mut num, mut den) = (0.0, 0.0);
    for (a, b) in x.iter().zip(reference) {
        num += (a - b) * (a - b);
        den += b * b;
    }
    (num / den.max(f64::MIN_POSITIVE)).sqrt()
}

fn file_stem(path: &str) -> String {
    std::path::Path::new(path)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.to_string())
}

/// Resolves the fixture path from the repo root or the crate directory.
fn resolve_fixture(path: &str) -> String {
    [
        path.to_string(),
        format!("{}/../../{path}", env!("CARGO_MANIFEST_DIR")),
    ]
    .into_iter()
    .find(|p| std::path::Path::new(p).exists())
    .unwrap_or_else(|| panic!("fixture {path} not found"))
}

/// Runs the matrix × preconditioner × policy × flip-count sweep.
pub fn precond_microbench(config: &PrecondBenchConfig) -> Vec<PrecondBenchRow> {
    let fixture_path = resolve_fixture(&config.fixture);
    let fixture = pad_rows_to_min_entries(
        &load_matrix_market(&fixture_path).expect("parse fixture"),
        4,
    );
    let matrices: Vec<(String, CsrMatrix)> = vec![
        (
            format!("poisson_{0}x{0}", config.n),
            poisson_2d_padded(config.n, config.n),
        ),
        (file_stem(&config.fixture), fixture),
    ];
    let solver_config = SolverConfig::new(config.max_iterations, config.tolerance);
    let protection = ProtectionConfig::full(EccScheme::Secded64);
    let mut rows = Vec::new();

    for (matrix_label, matrix) in &matrices {
        let encoded = ProtectedCsr::from_csr(matrix, &protection).expect("encode matrix");
        let op = FullyProtected::new(&encoded);
        let rhs: Vec<f64> = (0..matrix.rows())
            .map(|i| 1.0 + (i % 7) as f64 * 0.25)
            .collect();

        // The fault-free reference every row's answer is checked against:
        // a clean uniform-tier ILU(0) solve.
        let reference_precond = Ilu0::new(
            matrix,
            ReliabilityPolicy::Uniform.tier(),
            EccScheme::Secded64,
            Crc32cBackend::Auto,
        )
        .expect("factor reference ILU(0)");
        let (reference, _, _) = run_ft_pcg(&op, &rhs, &reference_precond, &solver_config)
            .expect("clean reference solve");

        // ILU(0) sweeps the flip counts; the polynomial fallback records
        // the fault-free per-iteration trade for patterns ILU rejects.
        let kinds: [(&str, Vec<usize>); 2] = [("ilu0", config.flips.clone()), ("poly", vec![0])];
        for (kind, flip_counts) in &kinds {
            for policy in [ReliabilityPolicy::Uniform, ReliabilityPolicy::Selective] {
                for &flips in flip_counts {
                    let mut built = match *kind {
                        "ilu0" => Built::Ilu(
                            Ilu0::new(
                                matrix,
                                policy.tier(),
                                EccScheme::Secded64,
                                Crc32cBackend::Auto,
                            )
                            .expect("factor ILU(0)"),
                        ),
                        _ => Built::Poly(
                            Polynomial::new(
                                matrix,
                                2,
                                policy.tier(),
                                EccScheme::Secded64,
                                Crc32cBackend::Auto,
                            )
                            .expect("build polynomial"),
                        ),
                    };
                    // Severe (exponent-range) flips into distinct factor
                    // words: the uniform tier corrects them on first read;
                    // the selective tier keeps the distortion and pays in
                    // iterations.
                    for (i, k) in distinct_indices(flips, built.factor_count())
                        .into_iter()
                        .enumerate()
                    {
                        built.inject(k, 54 + (i % 8) as u32);
                    }

                    let (solution, status, faults) =
                        run_ft_pcg(&op, &rhs, built.precond(), &solver_config)
                            .expect("FT-PCG never returns a wrong answer");
                    let ns = best_of(config.repeats, 1, |_| {
                        let out = run_ft_pcg(&op, &rhs, built.precond(), &solver_config)
                            .expect("FT-PCG never returns a wrong answer");
                        std::hint::black_box(out.0);
                    });
                    rows.push(PrecondBenchRow {
                        matrix: matrix_label.clone(),
                        precond: (*kind).into(),
                        policy: policy.label().into(),
                        factor_flips: flips,
                        mean_ns_to_solution: ns,
                        iterations: status.iterations,
                        converged: status.converged,
                        solution_ok: relative_l2_distance(&solution, &reference) < 1e-6,
                        bounds_violations: faults.bounds_violations.iter().sum(),
                        corrected: faults.corrected.iter().sum(),
                    });
                }
            }
        }
    }
    rows
}

/// The per-matrix crossover summary: wall-clock ratios uniform/selective at
/// the fault-free and the most-corrupted end of the ILU(0) sweep.  A ratio
/// above 1 means selective reliability is winning.
#[derive(Debug, Clone)]
pub struct CrossoverPoint {
    /// Matrix label.
    pub matrix: String,
    /// `uniform ns / selective ns` with zero injected flips.
    pub fault_free_ratio: f64,
    /// The largest swept flip count.
    pub max_flips: usize,
    /// `uniform ns / selective ns` at `max_flips`.
    pub faulted_ratio: f64,
}

/// Computes the crossover summary from the measured ILU(0) rows.
pub fn crossover_points(rows: &[PrecondBenchRow]) -> Vec<CrossoverPoint> {
    let mut matrices: Vec<&str> = Vec::new();
    for row in rows {
        if !matrices.contains(&row.matrix.as_str()) {
            matrices.push(&row.matrix);
        }
    }
    let ns = |matrix: &str, policy: &str, flips: usize| {
        rows.iter()
            .find(|r| {
                r.matrix == matrix
                    && r.precond == "ilu0"
                    && r.policy == policy
                    && r.factor_flips == flips
            })
            .map(|r| r.mean_ns_to_solution)
            .unwrap_or(f64::NAN)
    };
    matrices
        .into_iter()
        .map(|matrix| {
            let max_flips = rows
                .iter()
                .filter(|r| r.matrix == matrix && r.precond == "ilu0")
                .map(|r| r.factor_flips)
                .max()
                .unwrap_or(0);
            CrossoverPoint {
                matrix: matrix.to_string(),
                fault_free_ratio: ns(matrix, "uniform", 0) / ns(matrix, "selective", 0),
                max_flips,
                faulted_ratio: ns(matrix, "uniform", max_flips)
                    / ns(matrix, "selective", max_flips),
            }
        })
        .collect()
}

/// Renders the sweep as one trajectory point ready to append to
/// `BENCH_precond.json`.
pub fn trajectory_point_json(
    label: &str,
    config: &PrecondBenchConfig,
    rows: &[PrecondBenchRow],
) -> Json {
    Json::obj([
        ("label", label.into()),
        (
            "workload",
            Json::obj([
                ("grid_n", config.n.into()),
                ("fixture", config.fixture.clone().into()),
                (
                    "flips",
                    Json::Arr(config.flips.iter().map(|&f| f.into()).collect()),
                ),
                ("max_iterations", config.max_iterations.into()),
                ("tolerance", config.tolerance.into()),
                ("repeats", config.repeats.into()),
            ]),
        ),
        (
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|row| {
                        Json::obj([
                            ("matrix", row.matrix.clone().into()),
                            ("precond", row.precond.clone().into()),
                            ("policy", row.policy.clone().into()),
                            ("factor_flips", row.factor_flips.into()),
                            ("mean_ns_to_solution", row.mean_ns_to_solution.into()),
                            ("iterations", row.iterations.into()),
                            ("converged", row.converged.into()),
                            ("solution_ok", row.solution_ok.into()),
                            ("bounds_violations", (row.bounds_violations as usize).into()),
                            ("corrected", (row.corrected as usize).into()),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "crossover",
            Json::Arr(
                crossover_points(rows)
                    .iter()
                    .map(|point| {
                        Json::obj([
                            ("matrix", point.matrix.clone().into()),
                            ("fault_free_ratio", point.fault_free_ratio.into()),
                            ("max_flips", point.max_flips.into()),
                            ("faulted_ratio", point.faulted_ratio.into()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Plain-text table plus the crossover summary.
pub fn render_table(rows: &[PrecondBenchRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<16} {:<8} {:<10} {:>6} {:>16} {:>11} {:>7} {:>8} {:>9} {:>10}\n",
        "matrix",
        "precond",
        "policy",
        "flips",
        "ns/solution",
        "iterations",
        "conv",
        "correct",
        "screened",
        "corrected"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<16} {:<8} {:<10} {:>6} {:>16.0} {:>11} {:>7} {:>8} {:>9} {:>10}\n",
            row.matrix,
            row.precond,
            row.policy,
            row.factor_flips,
            row.mean_ns_to_solution,
            row.iterations,
            row.converged,
            row.solution_ok,
            row.bounds_violations,
            row.corrected
        ));
    }
    out.push('\n');
    for point in crossover_points(rows) {
        out.push_str(&format!(
            "{}: uniform/selective time ratio {:.2}x fault-free -> {:.2}x at {} factor flips\n",
            point.matrix, point.fault_free_ratio, point.faulted_ratio, point.max_flips
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_reaches_the_correct_answer_in_every_cell() {
        let config = PrecondBenchConfig::smoke();
        let rows = precond_microbench(&config);
        // 2 matrices × (2 policies × 2 flip counts for ILU + 2 fault-free
        // polynomial rows).
        assert_eq!(rows.len(), 2 * (2 * config.flips.len() + 2));
        for row in &rows {
            assert!(row.converged, "did not converge: {row:?}");
            assert!(row.solution_ok, "wrong answer: {row:?}");
        }
        // Iterations are deterministic: a corrupted selective-tier factor
        // set must cost iterations, never correctness; the uniform tier
        // corrects the same flips in place.
        for (matrix, flipped) in [("poisson_24x24", 8), ("spd_symmetric", 8)] {
            let find = |policy: &str, flips: usize| {
                rows.iter()
                    .find(|r| {
                        r.matrix == matrix
                            && r.precond == "ilu0"
                            && r.policy == policy
                            && r.factor_flips == flips
                    })
                    .unwrap_or_else(|| panic!("missing row {matrix}/{policy}/{flips}"))
            };
            let selective_faulted = find("selective", flipped);
            assert!(
                selective_faulted.iterations >= find("selective", 0).iterations,
                "factor corruption cannot speed up the selective tier: {selective_faulted:?}"
            );
            assert_eq!(
                selective_faulted.corrected, 0,
                "unreliable tier has no codewords"
            );
            let uniform_faulted = find("uniform", flipped);
            assert!(
                uniform_faulted.corrected > 0,
                "protected factors must correct the injected flips: {uniform_faulted:?}"
            );
            assert_eq!(
                uniform_faulted.iterations,
                find("uniform", 0).iterations,
                "corrected flips must not disturb the uniform trajectory"
            );
        }
        let point = trajectory_point_json("test", &config, &rows);
        assert!(point.render().contains("fault_free_ratio"));
        assert!(render_table(&rows).contains("uniform/selective"));
        assert_eq!(crossover_points(&rows).len(), 2);
    }
}
