//! Direct SpMV kernel microbenchmark backing `BENCH_spmv.json`.
//!
//! Unlike the figure tables (which time whole CG solves), this harness times
//! the protected SpMV kernel itself — per scheme, per input-vector kind
//! (plain `&[f64]` vs masked [`ProtectedVector`]) and per execution mode
//! (serial vs parallel) — so kernel-level optimisations show up undiluted by
//! the BLAS-1 work of a solver iteration.  The workload is the padded 2-D
//! Poisson operator the paper's TeaLeaf deck produces (five entries per
//! row), at a size where the kernel is memory-bandwidth-bound.

use crate::json::Json;
use abft_core::spmv::{protected_spmv, protected_spmv_parallel};
use abft_core::{
    EccScheme, FaultLog, ProtectedCsr, ProtectedMatrix, ProtectedVector, ProtectionConfig,
    SpmvWorkspace,
};
use abft_ecc::Crc32cBackend;
use abft_sparse::builders::{pad_rows_to_min_entries, poisson_2d_padded};
use abft_sparse::{load_matrix_market, CsrMatrix};
use std::time::Instant;

/// One measured kernel configuration.
#[derive(Debug, Clone)]
pub struct SpmvBenchRow {
    /// Input-vector kind: `plain_x` (matrix-only protection) or
    /// `protected_x` (fully protected, masked input vector).
    pub kernel: String,
    /// Element/row-pointer protection scheme label.
    pub scheme: String,
    /// Rayon-parallel kernel.
    pub parallel: bool,
    /// Mean wall time of one SpMV application, in nanoseconds (minimum over
    /// the repeat set, mean over the iterations of a repeat).
    pub mean_ns_per_iter: f64,
}

/// Workload description for the JSON output.
#[derive(Debug, Clone)]
pub struct SpmvBenchConfig {
    /// Poisson grid side length (matrix is `n² × n²`).
    pub n: usize,
    /// SpMV applications per timed repeat.
    pub iters: usize,
    /// Timed repeats; the minimum is reported.
    pub repeats: usize,
}

impl Default for SpmvBenchConfig {
    fn default() -> Self {
        SpmvBenchConfig {
            n: 256,
            iters: 20,
            repeats: 3,
        }
    }
}

fn schemes() -> [EccScheme; 5] {
    [
        EccScheme::None,
        EccScheme::Sed,
        EccScheme::Secded64,
        EccScheme::Secded128,
        EccScheme::Crc32c,
    ]
}

/// Locates the committed irregular `.mtx` fixture (skewed row lengths,
/// empty rows), resolving the path from either the workspace root (where
/// CI runs) or this crate's manifest directory.
fn irregular_fixture() -> Option<CsrMatrix> {
    let candidates = [
        "tests/fixtures/skew_general.mtx",
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../tests/fixtures/skew_general.mtx"
        ),
    ];
    for path in candidates {
        if let Ok(m) = load_matrix_market(path) {
            return Some(pad_rows_to_min_entries(&m, 4));
        }
    }
    None
}

/// Tiles `m` block-diagonally `copies` times so the fixture's skew profile
/// (long rows next to padded empty rows) is preserved at benchmark size.
fn tile_block_diag(m: &CsrMatrix, copies: usize) -> CsrMatrix {
    let copies = copies.max(1);
    let (rows, cols, values, col_indices, row_pointer) = m.clone().into_raw();
    let nnz = values.len();
    let mut tiled_values = Vec::with_capacity(nnz * copies);
    let mut tiled_cols = Vec::with_capacity(nnz * copies);
    let mut tiled_rp = Vec::with_capacity(rows * copies + 1);
    tiled_rp.push(0u32);
    for tile in 0..copies {
        let col_shift = (cols * tile) as u32;
        let nnz_shift = (nnz * tile) as u32;
        tiled_values.extend_from_slice(&values);
        tiled_cols.extend(col_indices.iter().map(|&c| c + col_shift));
        tiled_rp.extend(row_pointer[1..].iter().map(|&p| p + nnz_shift));
    }
    CsrMatrix::try_new(
        rows * copies,
        cols * copies,
        tiled_values,
        tiled_cols,
        tiled_rp,
    )
    .expect("block-diagonal tiling preserves CSR validity")
}

/// Runs the full kernel × scheme × serial/parallel sweep on the padded
/// Poisson operator, then repeats it on the tiled irregular fixture (rows
/// labelled `irregular_plain_x` / `irregular_protected_x`) so the
/// regression gate also pins the skewed-row-length code paths.
pub fn spmv_microbench(config: &SpmvBenchConfig) -> Vec<SpmvBenchRow> {
    let mut rows = sweep_matrix(&poisson_2d_padded(config.n, config.n), "", config);
    if let Some(fixture) = irregular_fixture() {
        let copies = (config.n * config.n / fixture.rows().max(1)).max(1);
        let matrix = tile_block_diag(&fixture, copies);
        rows.extend(sweep_matrix(&matrix, "irregular_", config));
    }
    rows
}

fn sweep_matrix(matrix: &CsrMatrix, prefix: &str, config: &SpmvBenchConfig) -> Vec<SpmvBenchRow> {
    let x_plain: Vec<f64> = (0..matrix.cols())
        .map(|i| 1.0 + (i as f64 * 0.13).sin())
        .collect();
    let mut rows = Vec::new();
    for parallel in [false, true] {
        for scheme in schemes() {
            // Matrix-protected SpMV with a plain input vector.
            let cfg = ProtectionConfig::matrix_only(scheme)
                .with_crc_backend(Crc32cBackend::SlicingBy16)
                .with_parallel(parallel);
            let a = ProtectedCsr::from_csr(matrix, &cfg).expect("encode");
            let log = FaultLog::new();
            let mut y = vec![0.0; matrix.rows()];
            let mut ws = SpmvWorkspace::new();
            let best = (0..config.repeats.max(1))
                .map(|_| {
                    let start = Instant::now();
                    for iteration in 0..config.iters {
                        if parallel {
                            a.spmv_parallel_with(
                                &x_plain[..],
                                &mut y,
                                iteration as u64,
                                &log,
                                &mut ws,
                            )
                            .expect("clean spmv");
                        } else {
                            a.spmv_with(&x_plain[..], &mut y, iteration as u64, &log, &mut ws)
                                .expect("clean spmv");
                        }
                    }
                    std::hint::black_box(&y);
                    start.elapsed().as_nanos() as f64 / config.iters as f64
                })
                .fold(f64::INFINITY, f64::min);
            rows.push(SpmvBenchRow {
                kernel: format!("{prefix}plain_x"),
                scheme: scheme.label().into(),
                parallel,
                mean_ns_per_iter: best,
            });

            // Fully protected SpMV: masked input vector, protected output.
            let cfg = ProtectionConfig::full(scheme)
                .with_crc_backend(Crc32cBackend::SlicingBy16)
                .with_parallel(parallel);
            let a = ProtectedCsr::from_csr(matrix, &cfg).expect("encode");
            let mut xp = ProtectedVector::from_slice(&x_plain, scheme, cfg.crc_backend);
            let mut yp = ProtectedVector::zeros(matrix.rows(), scheme, cfg.crc_backend);
            let best = (0..config.repeats.max(1))
                .map(|_| {
                    let start = Instant::now();
                    for iteration in 0..config.iters {
                        if parallel {
                            protected_spmv_parallel(
                                &a,
                                &mut xp,
                                &mut yp,
                                iteration as u64,
                                &log,
                                &mut ws,
                            )
                            .expect("clean protected spmv");
                        } else {
                            protected_spmv(&a, &mut xp, &mut yp, iteration as u64, &log, &mut ws)
                                .expect("clean protected spmv");
                        }
                    }
                    std::hint::black_box(yp.raw());
                    start.elapsed().as_nanos() as f64 / config.iters as f64
                })
                .fold(f64::INFINITY, f64::min);
            rows.push(SpmvBenchRow {
                kernel: format!("{prefix}protected_x"),
                scheme: scheme.label().into(),
                parallel,
                mean_ns_per_iter: best,
            });
        }
    }
    rows
}

/// Renders one trajectory point (label + measured rows) as JSON.
pub fn trajectory_point_json(label: &str, config: &SpmvBenchConfig, rows: &[SpmvBenchRow]) -> Json {
    Json::obj([
        ("label", label.into()),
        (
            "workload",
            Json::obj([
                (
                    "grid",
                    format!("poisson_2d {0}x{0} (padded)", config.n).into(),
                ),
                ("iters", config.iters.into()),
                ("repeats", config.repeats.into()),
            ]),
        ),
        (
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|row| {
                        Json::obj([
                            ("kernel", row.kernel.clone().into()),
                            ("scheme", row.scheme.clone().into()),
                            ("parallel", row.parallel.into()),
                            ("mean_ns_per_iter", row.mean_ns_per_iter.into()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Renders a plain-text table of the sweep.
pub fn render_table(rows: &[SpmvBenchRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<14} {:<12} {:<9} {:>16}\n",
        "kernel", "scheme", "mode", "mean ns/iter"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<14} {:<12} {:<9} {:>16.0}\n",
            row.kernel,
            row.scheme,
            if row.parallel { "parallel" } else { "serial" },
            row.mean_ns_per_iter
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_produces_all_rows() {
        let config = SpmvBenchConfig {
            n: 12,
            iters: 2,
            repeats: 1,
        };
        let rows = spmv_microbench(&config);
        // 2 kernels × 5 schemes × 2 modes, for the Poisson operator and
        // again for the tiled irregular fixture.
        assert_eq!(rows.len(), 40);
        assert!(rows.iter().all(|r| r.mean_ns_per_iter > 0.0));
        let json = trajectory_point_json("test", &config, &rows).render();
        assert!(json.contains("plain_x"));
        assert!(json.contains("irregular_protected_x"));
        assert!(json.contains("SECDED64"));
        assert!(render_table(&rows).contains("serial"));
    }
}
