//! CI performance-regression gate (`experiments --check-regression`).
//!
//! Re-measures the protected SpMV and masked BLAS-1 kernels on the current
//! build and compares them against the last committed trajectory points in
//! `BENCH_spmv.json` / `BENCH_blas1.json`.  Absolute nanoseconds are not
//! comparable across hosts, so the gate compares **overhead ratios**: every
//! row is normalised by the unprotected row of the same run (same host, same
//! cache state), and a row fails when its fresh ratio exceeds the committed
//! ratio by more than the tolerance (default 25 %).  A protected kernel that
//! silently loses its fast path shows up as a ratio jump on every host; a
//! slower CI machine does not.
//!
//! The fresh measurement reuses the committed workload *size* (ratios are
//! size-sensitive) but far fewer timed iterations — the per-op ratio is
//! iteration-count-invariant, so the gate stays CI-cheap.
//!
//! Four suites are gated: the protected SpMV kernels, the masked BLAS-1
//! kernels, the serving queue's batched dispatch, and the selective
//! reliability tier's fault-free selective/uniform FT-PCG cost ratio
//! (`BENCH_precond.json`).

use crate::blas1_bench::{blas1_microbench, Blas1BenchConfig};
use crate::json::Json;
use crate::precond_bench::{precond_microbench, PrecondBenchConfig};
use crate::queue_bench::{queue_microbench, QueueBenchConfig};
use crate::spmv_bench::{spmv_microbench, SpmvBenchConfig};

/// Gate configuration.
#[derive(Debug, Clone)]
pub struct GateConfig {
    /// Committed SpMV trajectory file.
    pub spmv_baseline: String,
    /// Committed BLAS-1 trajectory file.
    pub blas1_baseline: String,
    /// Committed serving-throughput trajectory file.
    pub queue_baseline: String,
    /// Committed selective-reliability trajectory file.
    pub precond_baseline: String,
    /// Grid side length of the fresh measurement (must match the committed
    /// workload for the ratios to be comparable).
    pub nx: usize,
    /// Kernel applications per timed repeat of the fresh measurement.
    pub iters: usize,
    /// Timed repeats of the fresh measurement.
    pub repeats: usize,
    /// Allowed ratio degradation, in percent.
    pub tolerance_pct: f64,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig {
            spmv_baseline: "BENCH_spmv.json".into(),
            blas1_baseline: "BENCH_blas1.json".into(),
            queue_baseline: "BENCH_queue.json".into(),
            precond_baseline: "BENCH_precond.json".into(),
            nx: 256,
            iters: 6,
            repeats: 2,
            tolerance_pct: 25.0,
        }
    }
}

/// One compared kernel configuration.
#[derive(Debug, Clone)]
pub struct GateRow {
    /// `spmv` or `blas1`.
    pub suite: String,
    /// Kernel / op label, including the serial-vs-parallel mode for SpMV.
    pub what: String,
    /// Protection scheme label.
    pub scheme: String,
    /// Committed overhead ratio (vs the unprotected row of the same run).
    pub baseline_ratio: f64,
    /// Freshly measured overhead ratio.
    pub fresh_ratio: f64,
    /// `(fresh / baseline − 1) · 100`.
    pub change_pct: f64,
    /// Whether the change exceeds the tolerance.
    pub regressed: bool,
}

/// The gate's verdict.
#[derive(Debug, Clone)]
pub struct GateReport {
    /// All compared configurations.
    pub rows: Vec<GateRow>,
    /// The tolerance the verdict used, in percent.
    pub tolerance_pct: f64,
}

impl GateReport {
    /// True when any compared row regressed beyond the tolerance.
    pub fn regressed(&self) -> bool {
        self.rows.iter().any(|row| row.regressed)
    }

    /// Plain-text table of the comparison.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<6} {:<26} {:<12} {:>14} {:>12} {:>9}  {}\n",
            "suite", "kernel", "scheme", "baseline ratio", "fresh ratio", "change", "verdict"
        ));
        for row in &self.rows {
            out.push_str(&format!(
                "{:<6} {:<26} {:<12} {:>14.3} {:>12.3} {:>8.1}%  {}\n",
                row.suite,
                row.what,
                row.scheme,
                row.baseline_ratio,
                row.fresh_ratio,
                row.change_pct,
                if row.regressed { "REGRESSED" } else { "ok" }
            ));
        }
        out.push_str(&format!(
            "tolerance: +{:.0}% on each overhead ratio\n",
            self.tolerance_pct
        ));
        out
    }
}

/// Loads a baseline file and returns its parsed trajectory points.
fn load_trajectory(path: &str) -> Result<Vec<Json>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read baseline {path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("cannot parse {path}: {e}"))?;
    doc.get("trajectory")
        .and_then(Json::as_arr)
        .map(<[Json]>::to_vec)
        .ok_or_else(|| format!("{path}: no trajectory array"))
}

/// `rows` of the last trajectory point matching `pick` (or the last point);
/// `None` when the trajectory is empty, which skips that suite.
fn last_point_rows(points: &[Json], pick: impl Fn(&Json) -> bool) -> Option<Vec<Json>> {
    points
        .iter()
        .rev()
        .find(|p| pick(p))
        .or_else(|| points.last())
        .and_then(|p| p.get("rows"))
        .and_then(Json::as_arr)
        .map(<[Json]>::to_vec)
}

fn str_field<'a>(row: &'a Json, key: &str) -> &'a str {
    row.get(key).and_then(Json::as_str).unwrap_or("")
}

fn num_field(row: &Json, key: &str) -> f64 {
    row.get(key).and_then(Json::as_f64).unwrap_or(f64::NAN)
}

fn bool_field(row: &Json, key: &str) -> bool {
    matches!(row.get(key), Some(Json::Bool(true)))
}

/// Runs the gate: fresh measurements, ratio comparison, verdict.  A row
/// that regresses on the first measurement is re-measured once and fails
/// only if the regression persists (microbenchmark noise is uncorrelated
/// between runs; a real fast-path loss is not).
pub fn check_regression(config: &GateConfig) -> Result<GateReport, String> {
    let mut report = measure_once(config)?;
    if report.regressed() {
        let confirm = measure_once(config)?;
        let tol = 1.0 + config.tolerance_pct / 100.0;
        for row in &mut report.rows {
            if !row.regressed {
                continue;
            }
            if let Some(again) = confirm
                .rows
                .iter()
                .find(|r| r.suite == row.suite && r.what == row.what && r.scheme == row.scheme)
            {
                row.fresh_ratio = row.fresh_ratio.min(again.fresh_ratio);
                row.change_pct = (row.fresh_ratio / row.baseline_ratio - 1.0) * 100.0;
                row.regressed = row.fresh_ratio > row.baseline_ratio * tol;
            }
        }
    }
    Ok(report)
}

/// One fresh measurement + comparison pass.
fn measure_once(config: &GateConfig) -> Result<GateReport, String> {
    let mut rows = Vec::new();
    let tol = 1.0 + config.tolerance_pct / 100.0;

    // --- SpMV: normalise each row by the unprotected plain-x row of the
    // SAME matrix family (Poisson rows by `plain_x`, irregular-fixture rows
    // by `irregular_plain_x`) and the SAME execution mode (serial rows by
    // the serial one, parallel rows by the parallel one).  Normalising
    // parallel rows by a serial time would bake the measuring host's core
    // count into the ratio, and cross-family normalisation would mix two
    // unrelated memory-access profiles; the whole point of ratio comparison
    // is surviving host changes. ---
    let norm_kernel_for = |kernel: &str| {
        if kernel.starts_with("irregular_") {
            "irregular_plain_x"
        } else {
            "plain_x"
        }
    };
    let spmv_points = load_trajectory(&config.spmv_baseline)?;
    let base = last_point_rows(&spmv_points, |_| true).unwrap_or_default();
    let base_norm_for = |norm_kernel: &str, parallel: bool| {
        base.iter()
            .find(|r| {
                str_field(r, "kernel") == norm_kernel
                    && str_field(r, "scheme") == "Unprotected"
                    && bool_field(r, "parallel") == parallel
            })
            .map(|r| num_field(r, "mean_ns_per_iter"))
            .unwrap_or(f64::NAN)
    };
    let fresh = spmv_microbench(&SpmvBenchConfig {
        n: config.nx,
        iters: config.iters,
        repeats: config.repeats,
    });
    let fresh_norm_for = |norm_kernel: &str, parallel: bool| {
        fresh
            .iter()
            .find(|r| {
                r.kernel == norm_kernel && r.scheme == "Unprotected" && r.parallel == parallel
            })
            .map(|r| r.mean_ns_per_iter)
            .unwrap_or(f64::NAN)
    };
    for base_row in &base {
        let (kernel, scheme, parallel) = (
            str_field(base_row, "kernel"),
            str_field(base_row, "scheme"),
            bool_field(base_row, "parallel"),
        );
        // Only the protected kernels are gated; the normaliser rows
        // themselves would compare 1.0 vs 1.0.
        let norm_kernel = norm_kernel_for(kernel);
        if scheme == "Unprotected" && kernel == norm_kernel {
            continue;
        }
        let Some(fresh_row) = fresh
            .iter()
            .find(|r| r.kernel == kernel && r.scheme == scheme && r.parallel == parallel)
        else {
            continue;
        };
        let baseline_ratio =
            num_field(base_row, "mean_ns_per_iter") / base_norm_for(norm_kernel, parallel);
        let fresh_ratio = fresh_row.mean_ns_per_iter / fresh_norm_for(norm_kernel, parallel);
        if !baseline_ratio.is_finite() || !fresh_ratio.is_finite() {
            continue;
        }
        rows.push(GateRow {
            suite: "spmv".into(),
            what: format!(
                "{kernel} ({})",
                if parallel { "parallel" } else { "serial" }
            ),
            scheme: scheme.into(),
            baseline_ratio,
            fresh_ratio,
            change_pct: (fresh_ratio / baseline_ratio - 1.0) * 100.0,
            regressed: fresh_ratio > baseline_ratio * tol,
        });
    }

    // --- BLAS-1: the masked point, normalised per op by its unprotected
    // row (ops have wildly different absolute scales). ---
    let blas1_points = load_trajectory(&config.blas1_baseline)?;
    // Match the exact suffix `trajectory_points_json` stamps on the
    // masked-path point — a bare "masked" would match every label the
    // BLAS-1 bench ever wrote (the suite itself is named "masked BLAS-1")
    // and silently rely on append order.
    let base = last_point_rows(&blas1_points, |p| {
        p.get("label")
            .and_then(Json::as_str)
            .is_some_and(|l| l.contains("(masked kernels)"))
    })
    .unwrap_or_default();
    let fresh_all = if base.is_empty() {
        Vec::new()
    } else {
        blas1_microbench(&Blas1BenchConfig {
            n: config.nx,
            iters: config.iters,
            repeats: config.repeats,
            cg_iterations: config.iters.max(4),
            parallel: false,
        })
    };
    let fresh: Vec<_> = fresh_all.iter().filter(|r| r.path == "masked").collect();
    for base_row in &base {
        let (op, scheme) = (str_field(base_row, "op"), str_field(base_row, "scheme"));
        if scheme == "Unprotected" {
            continue; // per-op normaliser
        }
        let base_norm = base
            .iter()
            .find(|r| str_field(r, "op") == op && str_field(r, "scheme") == "Unprotected")
            .map(|r| num_field(r, "mean_ns_per_op"));
        let fresh_row = fresh.iter().find(|r| r.op == op && r.scheme == scheme);
        let fresh_norm = fresh
            .iter()
            .find(|r| r.op == op && r.scheme == "Unprotected")
            .map(|r| r.mean_ns_per_op);
        let (Some(base_norm), Some(fresh_row), Some(fresh_norm)) =
            (base_norm, fresh_row, fresh_norm)
        else {
            continue;
        };
        let baseline_ratio = num_field(base_row, "mean_ns_per_op") / base_norm;
        let fresh_ratio = fresh_row.mean_ns_per_op / fresh_norm;
        if !baseline_ratio.is_finite() || !fresh_ratio.is_finite() {
            continue;
        }
        rows.push(GateRow {
            suite: "blas1".into(),
            what: op.into(),
            scheme: scheme.into(),
            baseline_ratio,
            fresh_ratio,
            change_pct: (fresh_ratio / baseline_ratio - 1.0) * 100.0,
            regressed: fresh_ratio > baseline_ratio * tol,
        });
    }

    // --- Serving throughput: each batched width's per-solve time,
    // normalised by the serial one-at-a-time dispatch of the same run.  A
    // queue change that loses the panel amortisation (or bloats dispatch)
    // shows up as a ratio jump on every host. ---
    let queue_points = load_trajectory(&config.queue_baseline)?;
    let base_point = queue_points.last();
    let base = last_point_rows(&queue_points, |_| true).unwrap_or_default();
    if !base.is_empty() {
        let workload = base_point.and_then(|p| p.get("workload"));
        let usize_field = |key: &str, default: usize| {
            workload
                .and_then(|w| w.get(key))
                .and_then(Json::as_f64)
                .map(|v| v as usize)
                .unwrap_or(default)
        };
        let widths: Vec<usize> = workload
            .and_then(|w| w.get("widths"))
            .and_then(Json::as_arr)
            .map(|ws| {
                ws.iter()
                    .filter_map(Json::as_f64)
                    .map(|v| v as usize)
                    .collect()
            })
            .unwrap_or_else(|| vec![1, 2, 4, 8]);
        let fresh = queue_microbench(&QueueBenchConfig {
            n: config.nx,
            jobs: usize_field("jobs", 8),
            widths,
            iters: config.iters,
            repeats: config.repeats,
        });
        let serial_ns = |rows: &[&Json], scheme: &str| {
            rows.iter()
                .find(|r| str_field(r, "scheme") == scheme && str_field(r, "mode") == "serial")
                .map(|r| num_field(r, "mean_ns_per_solve"))
        };
        let base_refs: Vec<&Json> = base.iter().collect();
        for base_row in &base {
            let (scheme, mode) = (str_field(base_row, "scheme"), str_field(base_row, "mode"));
            if mode != "batched" {
                continue; // serial rows are the normalisers
            }
            let width = num_field(base_row, "width") as usize;
            let Some(base_norm) = serial_ns(&base_refs, scheme) else {
                continue;
            };
            let Some(fresh_row) = fresh
                .iter()
                .find(|r| r.scheme == scheme && r.mode == "batched" && r.width == width)
            else {
                continue;
            };
            let Some(fresh_norm) = fresh
                .iter()
                .find(|r| r.scheme == scheme && r.mode == "serial")
                .map(|r| r.mean_ns_per_solve)
            else {
                continue;
            };
            let baseline_ratio = num_field(base_row, "mean_ns_per_solve") / base_norm;
            let fresh_ratio = fresh_row.mean_ns_per_solve / fresh_norm;
            if !baseline_ratio.is_finite() || !fresh_ratio.is_finite() {
                continue;
            }
            rows.push(GateRow {
                suite: "queue".into(),
                what: format!("batched k={width}"),
                scheme: scheme.into(),
                baseline_ratio,
                fresh_ratio,
                change_pct: (fresh_ratio / baseline_ratio - 1.0) * 100.0,
                regressed: fresh_ratio > baseline_ratio * tol,
            });
        }
    }

    // --- Selective reliability: the fault-free selective/uniform
    // time-to-solution ratio per (matrix, preconditioner).  With zero
    // injected faults both tiers run the identical trajectory, so the
    // ratio isolates the per-iteration cost of the inner apply; a change
    // that silently routes the unreliable tier through protected factor
    // storage (losing the whole point of selective reliability) shows up
    // as a ratio jump on every host.  The fresh measurement caps the
    // iteration count (tolerance 0): the per-iteration cost ratio is
    // budget-invariant, so the gate stays CI-cheap.  The cap and repeat
    // count get their own floors (12 iterations, best of 3) because a
    // handful of iterations is too short a timing window for a stable
    // ratio on a noisy shared core. ---
    let precond_points = load_trajectory(&config.precond_baseline)?;
    let base_point = precond_points.last();
    let base = last_point_rows(&precond_points, |_| true).unwrap_or_default();
    if !base.is_empty() {
        let grid_n = base_point
            .and_then(|p| p.get("workload"))
            .and_then(|w| w.get("grid_n"))
            .and_then(Json::as_f64)
            .map(|v| v as usize)
            .unwrap_or(config.nx);
        let fresh = precond_microbench(&PrecondBenchConfig {
            n: grid_n,
            flips: vec![0],
            max_iterations: config.iters.max(12),
            tolerance: 0.0,
            repeats: config.repeats.max(3),
            ..PrecondBenchConfig::default()
        });
        let base_ns = |matrix: &str, precond: &str, policy: &str| {
            base.iter()
                .find(|r| {
                    str_field(r, "matrix") == matrix
                        && str_field(r, "precond") == precond
                        && str_field(r, "policy") == policy
                        && num_field(r, "factor_flips") == 0.0
                })
                .map(|r| num_field(r, "mean_ns_to_solution"))
                .unwrap_or(f64::NAN)
        };
        let fresh_ns = |matrix: &str, precond: &str, policy: &str| {
            fresh
                .iter()
                .find(|r| {
                    r.matrix == matrix
                        && r.precond == precond
                        && r.policy == policy
                        && r.factor_flips == 0
                })
                .map(|r| r.mean_ns_to_solution)
                .unwrap_or(f64::NAN)
        };
        let mut pairs: Vec<(String, String)> = Vec::new();
        for base_row in &base {
            let pair = (
                str_field(base_row, "matrix").to_string(),
                str_field(base_row, "precond").to_string(),
            );
            if !pair.0.is_empty() && !pairs.contains(&pair) {
                pairs.push(pair);
            }
        }
        for (matrix, precond) in pairs {
            let baseline_ratio =
                base_ns(&matrix, &precond, "selective") / base_ns(&matrix, &precond, "uniform");
            let fresh_ratio =
                fresh_ns(&matrix, &precond, "selective") / fresh_ns(&matrix, &precond, "uniform");
            if !baseline_ratio.is_finite() || !fresh_ratio.is_finite() {
                continue;
            }
            rows.push(GateRow {
                suite: "precond".into(),
                what: format!("{matrix} {precond}"),
                scheme: "selective/uniform".into(),
                baseline_ratio,
                fresh_ratio,
                change_pct: (fresh_ratio / baseline_ratio - 1.0) * 100.0,
                regressed: fresh_ratio > baseline_ratio * tol,
            });
        }
    }

    if rows.is_empty() {
        return Err("regression gate compared zero rows — baselines empty or mismatched".into());
    }
    Ok(GateReport {
        rows,
        tolerance_pct: config.tolerance_pct,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_temp(name: &str, content: &str) -> String {
        let path = std::env::temp_dir().join(name);
        std::fs::write(&path, content).unwrap();
        path.to_string_lossy().into_owned()
    }

    fn spmv_baseline_doc(protected_ns: f64) -> String {
        Json::obj([(
            "trajectory",
            Json::Arr(vec![Json::obj([
                ("label", "test".into()),
                (
                    "rows",
                    Json::Arr(vec![
                        Json::obj([
                            ("kernel", "plain_x".into()),
                            ("scheme", "Unprotected".into()),
                            ("parallel", false.into()),
                            ("mean_ns_per_iter", 1000.0.into()),
                        ]),
                        Json::obj([
                            ("kernel", "protected_x".into()),
                            ("scheme", "SECDED64".into()),
                            ("parallel", false.into()),
                            ("mean_ns_per_iter", protected_ns.into()),
                        ]),
                        Json::obj([
                            ("kernel", "irregular_plain_x".into()),
                            ("scheme", "Unprotected".into()),
                            ("parallel", false.into()),
                            ("mean_ns_per_iter", 1000.0.into()),
                        ]),
                        Json::obj([
                            ("kernel", "irregular_protected_x".into()),
                            ("scheme", "SECDED64".into()),
                            ("parallel", false.into()),
                            ("mean_ns_per_iter", protected_ns.into()),
                        ]),
                    ]),
                ),
            ])]),
        )])
        .render()
    }

    #[test]
    fn gate_compares_fresh_ratios_against_the_baseline() {
        // A generous baseline (ratio 100x) cannot regress; a 0.0001x one
        // must.  Both gates run the same tiny fresh measurement.
        let blas1 = write_temp(
            "abft_gate_blas1.json",
            &Json::obj([("trajectory", Json::Arr(vec![]))]).render(),
        );
        let queue = write_temp(
            "abft_gate_queue.json",
            &Json::obj([("trajectory", Json::Arr(vec![]))]).render(),
        );
        let precond = write_temp(
            "abft_gate_precond.json",
            &Json::obj([("trajectory", Json::Arr(vec![]))]).render(),
        );
        let generous = GateConfig {
            spmv_baseline: write_temp("abft_gate_spmv_ok.json", &spmv_baseline_doc(100_000.0)),
            blas1_baseline: blas1.clone(),
            queue_baseline: queue,
            precond_baseline: precond,
            nx: 12,
            iters: 1,
            repeats: 1,
            tolerance_pct: 25.0,
        };
        let report = check_regression(&generous).unwrap();
        assert!(!report.regressed(), "{}", report.render());
        assert!(report.render().contains("SECDED64"));
        // The irregular-fixture family is gated with its own normaliser.
        assert!(report.render().contains("irregular_protected_x"));

        let strict = GateConfig {
            spmv_baseline: write_temp("abft_gate_spmv_bad.json", &spmv_baseline_doc(0.1)),
            blas1_baseline: blas1,
            ..generous
        };
        let report = check_regression(&strict).unwrap();
        assert!(report.regressed(), "{}", report.render());
    }

    #[test]
    fn gate_errors_on_missing_baseline() {
        let config = GateConfig {
            spmv_baseline: "/nonexistent/BENCH_spmv.json".into(),
            ..GateConfig::default()
        };
        assert!(check_regression(&config).is_err());
    }
}
