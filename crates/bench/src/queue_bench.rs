//! Serving-throughput sweep backing `BENCH_queue.json`.
//!
//! The multi-RHS engine's pitch is that a width-`k` panel pays for each
//! matrix codeword verification once per panel instead of once per
//! right-hand side.  This harness measures that claim end to end through
//! the serving front door: a fixed set of jobs against one protected
//! matrix is solved twice per configuration —
//!
//! * **serial** (the *pre* point): one `Solver::cg().solve_operator` call
//!   per job, one at a time, the way every dispatch loop in this repo
//!   worked before the [`SolveQueue`] existed; and
//! * **batched** (the *post* point): the same jobs submitted to a
//!   [`SolveQueue`] with `max_width = k` and drained as panels.
//!
//! Every solve runs a fixed iteration count (tolerance 0 disables early
//! exit), so `matrix_checks_per_rhs` is an exact machine-independent count
//! — it must fall as `1/k` — while `solves_per_sec` carries the host's
//! wall-clock story.  The per-RHS check count comes from
//! [`SolveQueue::matrix_activity`], which records each panel traversal
//! once, not from the tenant snapshots (those deliberately replicate the
//! panel delta per tenant so per-tenant accounting matches standalone
//! solves).

use crate::best_of;
use crate::json::Json;
use abft_core::{EccScheme, FaultLogSnapshot, ProtectedCsr, ProtectionConfig, Region};
use abft_serve::{JobSpec, SolveQueue};
use abft_solvers::backends::FullyProtected;
use abft_solvers::{Solver, SolverConfig};
use abft_sparse::builders::poisson_2d_padded;

/// One measured configuration of the sweep.
#[derive(Debug, Clone)]
pub struct QueueBenchRow {
    /// Protection scheme label.
    pub scheme: String,
    /// `serial` (pre: one-at-a-time dispatch) or `batched` (post: queue).
    pub mode: String,
    /// Panel width `k` (always 1 for the serial rows).
    pub width: usize,
    /// Jobs solved per timed dispatch round.
    pub jobs: usize,
    /// Mean wall time per solve, nanoseconds (minimum over the repeats).
    pub mean_ns_per_solve: f64,
    /// `1e9 / mean_ns_per_solve`.
    pub solves_per_sec: f64,
    /// Matrix-region integrity checks actually performed, per right-hand
    /// side (exact, host-independent).
    pub matrix_checks_per_rhs: f64,
}

/// Workload description.
#[derive(Debug, Clone)]
pub struct QueueBenchConfig {
    /// Poisson grid side length (the system has `n²` unknowns).
    pub n: usize,
    /// Jobs per dispatch round; keep it a multiple of every width so each
    /// drain packs full panels.
    pub jobs: usize,
    /// Panel widths to sweep.
    pub widths: Vec<usize>,
    /// CG iterations per solve (fixed budget; tolerance 0).
    pub iters: usize,
    /// Timed repeats; the minimum is reported.
    pub repeats: usize,
}

impl Default for QueueBenchConfig {
    fn default() -> Self {
        QueueBenchConfig {
            n: 256,
            jobs: 8,
            widths: vec![1, 2, 4, 8],
            iters: 25,
            repeats: 2,
        }
    }
}

impl QueueBenchConfig {
    /// Tiny CI preset.
    pub fn smoke() -> Self {
        QueueBenchConfig {
            n: 24,
            jobs: 4,
            widths: vec![1, 2, 4],
            iters: 3,
            repeats: 1,
        }
    }
}

fn schemes() -> [EccScheme; 2] {
    // The two schemes the paper leads with for full protection: the
    // cheapest per-element code and the grouped CRC.
    [EccScheme::Secded64, EccScheme::Crc32c]
}

fn matrix_region_checks(snapshot: &FaultLogSnapshot) -> u64 {
    snapshot.checks[Region::CsrElements as usize] + snapshot.checks[Region::RowPointer as usize]
}

/// Runs the scheme × {serial, batched × width} sweep.
pub fn queue_microbench(config: &QueueBenchConfig) -> Vec<QueueBenchRow> {
    let matrix = poisson_2d_padded(config.n, config.n);
    let rhs: Vec<Vec<f64>> = (0..config.jobs)
        .map(|j| {
            (0..matrix.rows())
                .map(|i| 1.0 + ((i * (j + 3)) % 13) as f64 * 0.25)
                .collect()
        })
        .collect();
    let solver_config = SolverConfig::new(config.iters, 0.0);
    let mut rows = Vec::new();

    for scheme in schemes() {
        let protection = ProtectionConfig::full(scheme);
        let encoded = ProtectedCsr::from_csr(&matrix, &protection).expect("encode matrix");

        // Pre: the historical dispatch loop — every job pays its own full
        // matrix verification.
        let op = FullyProtected::new(&encoded);
        let solver = Solver::cg().config(solver_config);
        let solo = solver
            .solve_operator(&op, &rhs[0])
            .expect("clean serial solve");
        let serial_checks = matrix_region_checks(&solo.faults) as f64;
        let ns_per_round = best_of(config.repeats, 1, |_| {
            for b in &rhs {
                let outcome = solver.solve_operator(&op, b).expect("clean serial solve");
                std::hint::black_box(outcome.solution);
            }
        });
        let per_solve = ns_per_round / config.jobs as f64;
        rows.push(QueueBenchRow {
            scheme: scheme.label().into(),
            mode: "serial".into(),
            width: 1,
            jobs: config.jobs,
            mean_ns_per_solve: per_solve,
            solves_per_sec: 1e9 / per_solve,
            matrix_checks_per_rhs: serial_checks,
        });

        // Post: the same jobs through the queue at each panel width.
        for &width in &config.widths {
            let mut queue = SolveQueue::new(width);
            let id = queue
                .register(ProtectedCsr::from_csr(&matrix, &protection).expect("encode matrix"));
            let submit_all = |queue: &mut SolveQueue| {
                for (j, b) in rhs.iter().enumerate() {
                    queue.submit(
                        JobSpec::new(format!("job-{j}"), id, b.clone()).with_config(solver_config),
                    );
                }
            };
            // Warm-up drain: measures the exact physical check counts and
            // brings the pool's worker threads up before timing.
            let before = matrix_region_checks(&queue.matrix_activity());
            submit_all(&mut queue);
            let outcomes = queue.drain();
            assert!(outcomes.iter().all(|o| o.error.is_none()));
            let after = matrix_region_checks(&queue.matrix_activity());
            let checks_per_rhs = (after - before) as f64 / config.jobs as f64;

            let ns_per_round = best_of(config.repeats, 1, |_| {
                submit_all(&mut queue);
                std::hint::black_box(queue.drain());
            });
            let per_solve = ns_per_round / config.jobs as f64;
            rows.push(QueueBenchRow {
                scheme: scheme.label().into(),
                mode: "batched".into(),
                width,
                jobs: config.jobs,
                mean_ns_per_solve: per_solve,
                solves_per_sec: 1e9 / per_solve,
                matrix_checks_per_rhs: checks_per_rhs,
            });
        }
    }
    rows
}

/// Renders the sweep as one trajectory point ready to append to
/// `BENCH_queue.json`.
pub fn trajectory_point_json(
    label: &str,
    config: &QueueBenchConfig,
    rows: &[QueueBenchRow],
) -> Json {
    Json::obj([
        ("label", label.into()),
        (
            "host_cores",
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .into(),
        ),
        (
            "workload",
            Json::obj([
                ("grid_n", config.n.into()),
                ("jobs", config.jobs.into()),
                (
                    "widths",
                    Json::Arr(config.widths.iter().map(|&w| w.into()).collect()),
                ),
                ("iters", config.iters.into()),
                ("repeats", config.repeats.into()),
            ]),
        ),
        (
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|row| {
                        Json::obj([
                            ("scheme", row.scheme.clone().into()),
                            ("mode", row.mode.clone().into()),
                            ("width", row.width.into()),
                            ("jobs", row.jobs.into()),
                            ("mean_ns_per_solve", row.mean_ns_per_solve.into()),
                            ("solves_per_sec", row.solves_per_sec.into()),
                            ("matrix_checks_per_rhs", row.matrix_checks_per_rhs.into()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Plain-text table: serial first, then one line per batched width, with
/// the throughput speedup over the serial dispatch.
pub fn render_table(rows: &[QueueBenchRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<10} {:<8} {:>5} {:>16} {:>12} {:>20} {:>9}\n",
        "scheme", "mode", "k", "ns/solve", "solves/s", "matrix checks/rhs", "speedup"
    ));
    for row in rows {
        let serial = rows
            .iter()
            .find(|r| r.scheme == row.scheme && r.mode == "serial")
            .map(|r| r.mean_ns_per_solve)
            .unwrap_or(f64::NAN);
        out.push_str(&format!(
            "{:<10} {:<8} {:>5} {:>16.0} {:>12.2} {:>20.0} {:>8.2}x\n",
            row.scheme,
            row.mode,
            row.width,
            row.mean_ns_per_solve,
            row.solves_per_sec,
            row.matrix_checks_per_rhs,
            serial / row.mean_ns_per_solve,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_rhs_matrix_checks_fall_monotonically_with_width() {
        let config = QueueBenchConfig::smoke();
        let rows = queue_microbench(&config);
        for scheme in schemes() {
            let serial = rows
                .iter()
                .find(|r| r.scheme == scheme.label() && r.mode == "serial")
                .expect("serial row");
            assert!(serial.matrix_checks_per_rhs > 0.0, "{scheme:?}");
            let batched: Vec<&QueueBenchRow> = rows
                .iter()
                .filter(|r| r.scheme == scheme.label() && r.mode == "batched")
                .collect();
            assert_eq!(batched.len(), config.widths.len(), "{scheme:?}");
            // Width 1 pays the serial verify cost; every doubling of the
            // width must strictly reduce the per-RHS matrix checks.
            assert_eq!(
                batched[0].matrix_checks_per_rhs, serial.matrix_checks_per_rhs,
                "{scheme:?}: a width-1 panel is a serial solve"
            );
            for pair in batched.windows(2) {
                assert!(
                    pair[1].matrix_checks_per_rhs < pair[0].matrix_checks_per_rhs,
                    "{scheme:?}: k={} → k={} did not reduce per-RHS checks",
                    pair[0].width,
                    pair[1].width
                );
            }
        }
        let point = trajectory_point_json("test", &config, &rows);
        assert!(point.render().contains("matrix_checks_per_rhs"));
        assert!(render_table(&rows).contains("batched"));
    }
}
