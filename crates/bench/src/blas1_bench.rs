//! Protected BLAS-1 kernel microbenchmark backing `BENCH_blas1.json`.
//!
//! Times the `ProtectedVector` vector kernels — dot, AXPY, norm², scale and
//! the fused dot+AXPY — per scheme and per kernel **path**:
//!
//! * `group_decode` — the reference read-modify-write kernels that decode
//!   every codeword group into a stack buffer (`dot`, `axpy`, `norm2`, …);
//! * `masked` — the raw-slice kernels of `abft_core::blas1` that check each
//!   group once and then compute over the masked words
//!   (`dot_masked`, `axpy_masked`, the fused `dot_axpy_masked`, …).
//!
//! A final `cg` row per scheme/path runs a whole protected CG solve (same
//! protected SpMV for both paths, only the vector half differs), so the
//! JSON trajectory records the end-to-end effect of the BLAS-1 layer.  One
//! invocation measures both paths, and the two trajectory points it emits —
//! pre (group-decode) and post (masked) — are measured on the same host in
//! the same run, so the comparison is apples to apples.

use crate::best_of;
use crate::json::Json;
use abft_core::spmv::protected_spmv;
use abft_core::{
    EccScheme, FaultLog, ProtectedCsr, ProtectedVector, ProtectionConfig, SpmvWorkspace,
};
use abft_ecc::Crc32cBackend;
use abft_sparse::builders::poisson_2d_padded;

/// One measured kernel configuration.
#[derive(Debug, Clone)]
pub struct Blas1BenchRow {
    /// Kernel: `dot`, `axpy`, `norm2`, `scale`, `dot_axpy` or `cg`.
    pub op: String,
    /// Vector protection scheme label.
    pub scheme: String,
    /// `group_decode` (reference) or `masked` (raw-slice fast path).
    pub path: String,
    /// Mean wall time of one kernel application (for `cg`: one whole
    /// solve), in nanoseconds — minimum over the repeat set.
    pub mean_ns_per_op: f64,
}

/// Workload description.
#[derive(Debug, Clone)]
pub struct Blas1BenchConfig {
    /// Poisson grid side length; vectors have `n²` elements.
    pub n: usize,
    /// Kernel applications per timed repeat.
    pub iters: usize,
    /// Timed repeats; the minimum is reported.
    pub repeats: usize,
    /// CG iterations of the end-to-end row.
    pub cg_iterations: usize,
    /// Route the masked path through the chunked-parallel kernel variants
    /// (dot, norm², AXPY, XPAY, scale and the fused dot+AXPY).  The
    /// group-decode reference path is always serial — this measures the
    /// parallel kernels against it.
    pub parallel: bool,
}

impl Default for Blas1BenchConfig {
    fn default() -> Self {
        Blas1BenchConfig {
            n: 256,
            iters: 40,
            repeats: 3,
            cg_iterations: 25,
            parallel: false,
        }
    }
}

fn schemes() -> [EccScheme; 5] {
    [
        EccScheme::None,
        EccScheme::Sed,
        EccScheme::Secded64,
        EccScheme::Secded128,
        EccScheme::Crc32c,
    ]
}

/// Which vector-kernel family a CG run uses.
#[derive(Debug, Clone, Copy, PartialEq)]
enum KernelPath {
    /// Group-decode reference kernels (always serial).
    GroupDecode,
    /// Masked raw-slice kernels, serial.
    Masked,
    /// Masked kernels with the chunked-parallel variants where they exist.
    MaskedParallel,
}

/// One protected CG solve (`iters` iterations, no early exit) on an
/// already-encoded matrix, with the vector kernels selected by `path`.
/// All variants share the protected SpMV, so the difference between them
/// is exactly the BLAS-1 layer this PR rewrote.
fn protected_cg_solve(
    a: &ProtectedCsr,
    b: &[f64],
    scheme: EccScheme,
    iters: usize,
    path: KernelPath,
    ws: &mut SpmvWorkspace,
) -> f64 {
    let log = FaultLog::new();
    let backend = Crc32cBackend::SlicingBy16;
    let mut x = ProtectedVector::zeros(a.rows(), scheme, backend);
    let mut r = ProtectedVector::from_slice(b, scheme, backend);
    let mut p = r.clone();
    let mut w = ProtectedVector::zeros(a.rows(), scheme, backend);
    let mut rr = match path {
        KernelPath::GroupDecode => r.dot(&r, &log).unwrap(),
        KernelPath::Masked => r.dot_masked(&r, &log).unwrap(),
        KernelPath::MaskedParallel => r.dot_masked_parallel(&r, &log).unwrap(),
    };
    for iteration in 0..iters {
        protected_spmv(a, &mut p, &mut w, iteration as u64, &log, ws).expect("clean spmv");
        let pw = match path {
            KernelPath::GroupDecode => p.dot(&w, &log).unwrap(),
            KernelPath::Masked => p.dot_masked(&w, &log).unwrap(),
            KernelPath::MaskedParallel => p.dot_masked_parallel(&w, &log).unwrap(),
        };
        if pw == 0.0 {
            break;
        }
        let alpha = rr / pw;
        let rr_new = match path {
            KernelPath::GroupDecode => {
                x.axpy(alpha, &p, &log).unwrap();
                r.axpy(-alpha, &w, &log).unwrap();
                r.dot(&r, &log).unwrap()
            }
            KernelPath::Masked => {
                x.axpy_masked(alpha, &p, &log).unwrap();
                r.dot_axpy_masked(-alpha, &w, &log).unwrap()
            }
            KernelPath::MaskedParallel => {
                x.axpy_masked_parallel(alpha, &p, &log).unwrap();
                r.dot_axpy_masked_parallel(-alpha, &w, &log).unwrap()
            }
        };
        let beta = rr_new / rr;
        match path {
            KernelPath::GroupDecode => p.xpay(beta, &r, &log).unwrap(),
            KernelPath::Masked => p.xpay_masked(beta, &r, &log).unwrap(),
            KernelPath::MaskedParallel => p.xpay_masked_parallel(beta, &r, &log).unwrap(),
        }
        rr = rr_new;
    }
    rr
}

/// Runs the op × scheme × path sweep, including the end-to-end CG row.
pub fn blas1_microbench(config: &Blas1BenchConfig) -> Vec<Blas1BenchRow> {
    let matrix = poisson_2d_padded(config.n, config.n);
    let len = matrix.cols();
    let a_vals: Vec<f64> = (0..len).map(|i| 1.0 + (i as f64 * 0.13).sin()).collect();
    let b_vals: Vec<f64> = (0..len).map(|i| 0.5 + (i as f64 * 0.07).cos()).collect();
    let log = FaultLog::new();
    let mut rows = Vec::new();

    for scheme in schemes() {
        let backend = Crc32cBackend::SlicingBy16;
        let a = ProtectedVector::from_slice(&a_vals, scheme, backend);
        let b = ProtectedVector::from_slice(&b_vals, scheme, backend);
        let cfg = ProtectionConfig::full(scheme).with_crc_backend(backend);
        let encoded = ProtectedCsr::from_csr(&matrix, &cfg).expect("encode");
        let mut ws = SpmvWorkspace::new();

        let paths = [
            KernelPath::GroupDecode,
            if config.parallel {
                KernelPath::MaskedParallel
            } else {
                KernelPath::Masked
            },
        ];
        for path in paths {
            let masked = path != KernelPath::GroupDecode;
            let label = if masked { "masked" } else { "group_decode" };
            let mut push = |op: &str, ns: f64| {
                rows.push(Blas1BenchRow {
                    op: op.into(),
                    scheme: scheme.label().into(),
                    path: label.into(),
                    mean_ns_per_op: ns,
                });
            };

            let mut sink = 0.0;
            push(
                "dot",
                best_of(config.repeats, config.iters, |_| {
                    sink += match path {
                        KernelPath::GroupDecode => a.dot(&b, &log).unwrap(),
                        KernelPath::Masked => a.dot_masked(&b, &log).unwrap(),
                        KernelPath::MaskedParallel => a.dot_masked_parallel(&b, &log).unwrap(),
                    };
                }),
            );
            push(
                "norm2",
                best_of(config.repeats, config.iters, |_| {
                    sink += match path {
                        KernelPath::GroupDecode => a.norm2(&log).unwrap(),
                        KernelPath::Masked => a.norm2_masked(&log).unwrap(),
                        KernelPath::MaskedParallel => a.norm2_masked_parallel(&log).unwrap(),
                    };
                }),
            );
            std::hint::black_box(sink);

            // The mutating kernels alternate a tiny ±alpha so the values
            // stay bounded across iterations.
            let mut y = a.clone();
            push(
                "axpy",
                best_of(config.repeats, config.iters, |i| {
                    let alpha = if i % 2 == 0 { 1e-6 } else { -1e-6 };
                    match path {
                        KernelPath::GroupDecode => y.axpy(alpha, &b, &log).unwrap(),
                        KernelPath::Masked => y.axpy_masked(alpha, &b, &log).unwrap(),
                        KernelPath::MaskedParallel => {
                            y.axpy_masked_parallel(alpha, &b, &log).unwrap()
                        }
                    }
                }),
            );
            let mut y = a.clone();
            push(
                "scale",
                best_of(config.repeats, config.iters, |i| {
                    let alpha = if i % 2 == 0 { 1.000001 } else { 1.0 / 1.000001 };
                    match path {
                        KernelPath::GroupDecode => y.scale(alpha, &log).unwrap(),
                        KernelPath::Masked => y.scale_masked(alpha, &log).unwrap(),
                        KernelPath::MaskedParallel => y.scale_masked_parallel(alpha, &log).unwrap(),
                    }
                }),
            );
            let mut y = a.clone();
            let mut sink = 0.0;
            push(
                "dot_axpy",
                best_of(config.repeats, config.iters, |i| {
                    let alpha = if i % 2 == 0 { 1e-6 } else { -1e-6 };
                    sink += match path {
                        KernelPath::GroupDecode => {
                            y.axpy(alpha, &b, &log).unwrap();
                            y.dot(&y, &log).unwrap()
                        }
                        KernelPath::Masked => y.dot_axpy_masked(alpha, &b, &log).unwrap(),
                        KernelPath::MaskedParallel => {
                            y.dot_axpy_masked_parallel(alpha, &b, &log).unwrap()
                        }
                    };
                }),
            );
            std::hint::black_box(sink);

            let cg_iters = config.cg_iterations.max(1);
            let mut sink = 0.0;
            push(
                "cg",
                best_of(config.repeats, 1, |_| {
                    sink += protected_cg_solve(&encoded, &b_vals, scheme, cg_iters, path, &mut ws);
                }),
            );
            std::hint::black_box(sink);
        }
    }
    rows
}

/// Renders the sweep as two trajectory points — pre (`group_decode`) and
/// post (`masked`) — ready to append to `BENCH_blas1.json`.
pub fn trajectory_points_json(
    label: &str,
    config: &Blas1BenchConfig,
    rows: &[Blas1BenchRow],
) -> Vec<Json> {
    ["group_decode", "masked"]
        .iter()
        .map(|path| {
            Json::obj([
                ("label", format!("{label} ({path} kernels)").into()),
                (
                    "workload",
                    Json::obj([
                        (
                            "vector_len",
                            format!(
                                "{0}x{0} Poisson grid ({1} elements)",
                                config.n,
                                config.n * config.n
                            )
                            .into(),
                        ),
                        ("iters", config.iters.into()),
                        ("repeats", config.repeats.into()),
                        ("cg_iterations", config.cg_iterations.into()),
                        ("parallel", config.parallel.into()),
                    ]),
                ),
                (
                    "rows",
                    Json::Arr(
                        rows.iter()
                            .filter(|row| row.path == *path)
                            .map(|row| {
                                Json::obj([
                                    ("op", row.op.clone().into()),
                                    ("scheme", row.scheme.clone().into()),
                                    ("mean_ns_per_op", row.mean_ns_per_op.into()),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ])
        })
        .collect()
}

/// Renders a plain-text table of the sweep, pairing the two paths per
/// op/scheme with the resulting speedup.
pub fn render_table(rows: &[Blas1BenchRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<10} {:<12} {:>18} {:>14} {:>9}\n",
        "op", "scheme", "group_decode ns", "masked ns", "speedup"
    ));
    for row in rows.iter().filter(|r| r.path == "group_decode") {
        let masked = rows
            .iter()
            .find(|r| r.path == "masked" && r.op == row.op && r.scheme == row.scheme);
        let (masked_ns, speedup) = match masked {
            Some(m) => (
                format!("{:.0}", m.mean_ns_per_op),
                format!("{:.2}x", row.mean_ns_per_op / m.mean_ns_per_op),
            ),
            None => ("-".into(), "-".into()),
        };
        out.push_str(&format!(
            "{:<10} {:<12} {:>18.0} {:>14} {:>9}\n",
            row.op, row.scheme, row.mean_ns_per_op, masked_ns, speedup
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_produces_all_rows() {
        let config = Blas1BenchConfig {
            n: 12,
            iters: 2,
            repeats: 1,
            cg_iterations: 2,
            parallel: false,
        };
        let rows = blas1_microbench(&config);
        // 6 ops × 5 schemes × 2 paths.
        assert_eq!(rows.len(), 60);
        assert!(rows.iter().all(|r| r.mean_ns_per_op > 0.0));
        let points = trajectory_points_json("test", &config, &rows);
        assert_eq!(points.len(), 2);
        let rendered = points[0].render();
        assert!(rendered.contains("group_decode"));
        assert!(rendered.contains("dot_axpy"));
        assert!(render_table(&rows).contains("speedup"));
    }

    #[test]
    fn both_cg_paths_reduce_the_residual_identically() {
        // The group-decode and masked mini-CG trajectories are the same
        // arithmetic, so their final squared residuals agree bit for bit.
        let matrix = poisson_2d_padded(10, 10);
        let b: Vec<f64> = (0..matrix.rows()).map(|i| 1.0 + (i % 5) as f64).collect();
        for scheme in schemes() {
            let cfg = ProtectionConfig::full(scheme).with_crc_backend(Crc32cBackend::SlicingBy16);
            let encoded = ProtectedCsr::from_csr(&matrix, &cfg).unwrap();
            let mut ws = SpmvWorkspace::new();
            let rr0 = {
                let log = FaultLog::new();
                let r = ProtectedVector::from_slice(&b, scheme, Crc32cBackend::SlicingBy16);
                r.dot(&r, &log).unwrap()
            };
            let plain =
                protected_cg_solve(&encoded, &b, scheme, 20, KernelPath::GroupDecode, &mut ws);
            let masked = protected_cg_solve(&encoded, &b, scheme, 20, KernelPath::Masked, &mut ws);
            let parallel = protected_cg_solve(
                &encoded,
                &b,
                scheme,
                20,
                KernelPath::MaskedParallel,
                &mut ws,
            );
            assert_eq!(plain.to_bits(), masked.to_bits(), "{scheme:?}");
            assert_eq!(plain.to_bits(), parallel.to_bits(), "{scheme:?} parallel");
            assert!(plain < rr0 * 1e-3, "{scheme:?}: CG must converge");
        }
    }
}
