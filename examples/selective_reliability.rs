//! Selective reliability: protect the outer iteration, let the inner
//! preconditioner run unchecked, and still never return a wrong answer.
//!
//! ```bash
//! cargo run --release --example selective_reliability
//! ```
//!
//! The one-stop [`SolveSpec`] builder attaches a preconditioner to a
//! protected solve and chooses its reliability tier: `Uniform` stores the
//! factors in SECDED-protected words (every read checked and corrected),
//! `Selective` stores plain `f64`s with **zero** integrity checks and
//! relies on the fully protected outer FT-PCG iteration — a bounded-norm
//! screen on each inner result plus the recurrence running entirely in
//! protected vectors — to own correctness.  Inner faults then cost
//! *iterations*, never *answers*.
//!
//! The demo runs the clean comparison first, then injects high-exponent
//! bit flips into the unreliable factors and into the protected factors,
//! and shows the two failure modes: the selective tier converges anyway
//! (a few extra iterations, possibly a screened fallback), the uniform
//! tier corrects the flips in place and repeats the clean trajectory.

use abft_suite::core::{AnyProtectedMatrix, FaultLog, ProtectionConfig, StorageTier};
use abft_suite::prelude::*;
use abft_suite::solvers::backends::FullyProtected;
use abft_suite::solvers::generic::ft_pcg;
use abft_suite::solvers::{FaultContext, Ilu0, LinearOperator, Reliability};
use abft_suite::sparse::builders::poisson_2d_padded;
use abft_suite::sparse::spmv::spmv_serial;

fn relative_residual(a: &CsrMatrix, x: &[f64], b: &[f64]) -> f64 {
    let mut ax = vec![0.0; a.rows()];
    spmv_serial(a, x, &mut ax);
    let resid: f64 = ax
        .iter()
        .zip(b)
        .map(|(p, q)| (q - p) * (q - p))
        .sum::<f64>();
    let norm: f64 = b.iter().map(|v| v * v).sum::<f64>();
    (resid / norm).sqrt()
}

/// Runs the flexible inner-outer FT-PCG against a fully protected
/// operator with the given (possibly corrupted) preconditioner.
fn solve_with(
    protected: &AnyProtectedMatrix,
    rhs: &[f64],
    precond: &Ilu0,
    config: &SolverConfig,
) -> (Vec<f64>, SolveStatus, u64, u64) {
    let op = FullyProtected::new(protected);
    let log = FaultLog::new();
    let base = FaultContext::with_log(&log);
    let ctx = base.scoped_to(op.reduction_workspace());
    let b = op.vector_from(rhs);
    let (mut x, status) = ft_pcg(&op, &b, precond, config, &ctx).expect("ft_pcg");
    let solution = op.finish(&mut x, &ctx).expect("finish");
    let snap = log.snapshot();
    let corrected: u64 = snap.corrected.iter().sum();
    let screened: u64 = snap.bounds_violations.iter().sum();
    (solution, status, corrected, screened)
}

fn main() {
    let matrix = poisson_2d_padded(48, 48);
    let rhs: Vec<f64> = (0..matrix.rows())
        .map(|i| 1.0 + (i % 7) as f64 * 0.25)
        .collect();
    let config = SolverConfig::new(2_000, 1e-15);
    println!(
        "system: {} unknowns, {} non-zeros\n",
        matrix.rows(),
        matrix.nnz()
    );

    // 1. The one-stop spec: same protected solve, three preconditioning
    //    choices.  Selective pays no integrity checks in the inner stage.
    for (label, spec) in [
        ("no preconditioner", SolveSpec::new(EccScheme::Secded64)),
        (
            "ilu0, uniform   ",
            SolveSpec::new(EccScheme::Secded64)
                .preconditioner(PrecondKind::Ilu0)
                .reliability(ReliabilityPolicy::Uniform),
        ),
        (
            "ilu0, selective ",
            SolveSpec::new(EccScheme::Secded64)
                .preconditioner(PrecondKind::Ilu0)
                .reliability(ReliabilityPolicy::Selective),
        ),
    ] {
        let outcome = spec.config(config).solve(&matrix, &rhs).expect(label);
        println!(
            "{label}: {:>4} iterations, converged = {}, rel. residual = {:.2e}",
            outcome.status.iterations,
            outcome.status.converged,
            relative_residual(&matrix, &outcome.solution, &rhs)
        );
    }

    // 2. Now corrupt the stored factors — persistent SDC in the inner
    //    stage, the case uniform reliability exists for.
    let protection = ProtectionConfig::full(EccScheme::Secded64);
    let protected =
        AnyProtectedMatrix::encode(&matrix, &protection, StorageTier::Csr).expect("encode");
    let flips: Vec<(usize, u32)> = (0..2).map(|i| (13 + i * 997, 52 + i as u32)).collect();

    let mut selective = Ilu0::new(
        &matrix,
        Reliability::Unreliable,
        EccScheme::Secded64,
        Crc32cBackend::Auto,
    )
    .expect("ilu0");
    let mut uniform = Ilu0::new(
        &matrix,
        Reliability::Protected,
        EccScheme::Secded64,
        Crc32cBackend::Auto,
    )
    .expect("ilu0");
    for &(k, bit) in &flips {
        selective.inject_factor_bit_flip(k % selective.factor_count(), bit);
        uniform.inject_factor_bit_flip(k % uniform.factor_count(), bit);
    }
    println!(
        "\ninjected {} high-exponent flips into each tier's stored factors",
        flips.len()
    );

    for (label, precond) in [("selective", &selective), ("uniform  ", &uniform)] {
        let (solution, status, corrected, screened) =
            solve_with(&protected, &rhs, precond, &config);
        println!(
            "{label}: {:>4} iterations, converged = {}, corrected = {corrected}, \
             screened = {screened}, rel. residual = {:.2e}",
            status.iterations,
            status.converged,
            relative_residual(&matrix, &solution, &rhs)
        );
    }
    println!(
        "\nselective: the corruption distorts the preconditioner, so the run \
         spends extra iterations\n(and the outer screen discards any inner \
         result whose norm blows past the bound) — but the\nprotected outer \
         recurrence certifies the answer.  uniform: every factor read is \
         checked, the\nflips are corrected in place, and the trajectory is \
         the clean one."
    );
}
