//! Less frequent correctness checking (§VI-A-2), i.e. Figures 6–8 in miniature.
//!
//! ```bash
//! cargo run --release --example check_interval_tuning -- [nx] [ny] [iters]
//! ```
//!
//! Protects the whole CSR matrix with each scheme and sweeps the integrity
//! check interval, printing the overhead relative to the unprotected solve.
//! The trade-off is detection latency: with interval N an error can go
//! unnoticed for up to N−1 CG iterations (bounds checks still prevent
//! out-of-range accesses in between).

use abft_bench::{overhead_pct, tealeaf_system, time_cg};
use abft_suite::core::{EccScheme, ProtectionConfig};
use abft_suite::ecc::Crc32cBackend;

fn main() {
    let mut args = std::env::args().skip(1);
    let nx: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(192);
    let ny: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(192);
    let iters: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(40);

    let system = tealeaf_system(nx, ny);
    println!(
        "TeaLeaf {}x{} ({} non-zeros), {} CG iterations per measurement\n",
        nx,
        ny,
        system.matrix.nnz(),
        iters
    );

    let baseline = (0..3)
        .map(|_| time_cg(&system, &ProtectionConfig::unprotected(), iters))
        .fold(f64::INFINITY, f64::min);
    println!("unprotected baseline: {baseline:.4} s\n");
    println!(
        "{:<12} {:>10} {:>12} {:>12} {:>22}",
        "scheme", "interval", "seconds", "overhead %", "worst-case delay (iters)"
    );

    for scheme in [EccScheme::Sed, EccScheme::Secded64, EccScheme::Crc32c] {
        for interval in [1u32, 2, 8, 32, 128] {
            let cfg = ProtectionConfig::matrix_only(scheme)
                .with_check_interval(interval)
                .with_crc_backend(Crc32cBackend::SlicingBy16);
            let seconds = (0..3)
                .map(|_| time_cg(&system, &cfg, iters))
                .fold(f64::INFINITY, f64::min);
            println!(
                "{:<12} {:>10} {:>12.4} {:>12.1} {:>22}",
                scheme.label(),
                interval,
                seconds,
                overhead_pct(baseline, seconds),
                interval - 1
            );
        }
        println!();
    }
}
