//! Protected Chebyshev and PPCG through a TeaLeaf deck — the workloads the
//! generic solver API opened up (the old per-mode entry points rejected any
//! protected Chebyshev/PPCG run).
//!
//! ```bash
//! cargo run --release --example protected_chebyshev
//! ```
//!
//! Parses a tea.in-style deck selecting the Chebyshev solver, runs it
//! unprotected and fully protected, and shows the physics agrees while the
//! protected run logs its integrity checks.

use abft_suite::prelude::*;

const DECK: &str = "
*tea
x_cells = 32
y_cells = 32
end_step = 2
tl_max_iters = 20000
tl_eps = 1.0e-14
use_chebyshev
state 1 density=0.2 energy=1.0
state 2 density=1.0 energy=2.5 geometry=rectangle xmin=0.0 xmax=5.0 ymin=0.0 ymax=2.0
*endtea
";

fn main() {
    let deck = Deck::parse(DECK).expect("parse deck");
    println!("deck solver: {:?}", deck.solver);

    let baseline = Simulation::new(deck.clone()).run().expect("baseline run");

    for (label, solver) in [
        ("chebyshev", SolverKind::Chebyshev),
        ("ppcg", SolverKind::Ppcg),
    ] {
        let mut deck = deck.clone();
        deck.solver = solver;
        let protected = Simulation::new(deck)
            .with_protection(ProtectionConfig::full(EccScheme::Secded64))
            .run()
            .expect("protected run");
        let checks: u64 = protected
            .steps
            .iter()
            .map(|s| s.faults.checks.iter().sum::<u64>())
            .sum();
        let diff = protected
            .final_summary
            .max_relative_difference(&baseline.final_summary);
        println!(
            "protected {label:<10} {} iterations, {checks} integrity checks, \
             max relative difference vs unprotected chebyshev: {diff:.3e}",
            protected.total_iterations()
        );
        assert!(checks > 0, "protected run must perform integrity checks");
        assert!(diff < 1e-6, "physics must agree");
    }
    println!("=> solver x protection matrix is closed: every method runs protected");
}
