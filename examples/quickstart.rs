//! Quickstart: protect a sparse linear solve against memory bit flips.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a small five-point-stencil system, protects the CSR matrix and the
//! dense vectors with SECDED, injects a bit flip into the matrix values, and
//! shows that the solve still produces the correct answer while the fault log
//! records the correction.

use abft_suite::prelude::*;
use abft_suite::solvers::SolverConfig;
use abft_suite::sparse::builders::{pad_rows_to_min_entries, poisson_2d};

fn main() {
    // 1. Build a sparse SPD system (a 64x64 Poisson operator, padded so every
    //    row stores at least four entries as the CRC32C scheme requires).
    let matrix = pad_rows_to_min_entries(&poisson_2d(64, 64), 4);
    let rhs: Vec<f64> = (0..matrix.rows()).map(|i| 1.0 + (i % 7) as f64 * 0.1).collect();
    println!(
        "system: {} unknowns, {} non-zeros",
        matrix.rows(),
        matrix.nnz()
    );

    // 2. Choose a protection configuration: SECDED64 on every region, full
    //    integrity checks on every access.
    let protection = ProtectionConfig::full(EccScheme::Secded64);
    println!("protection: {}", protection.describe());

    // 3. Solve the clean system with the protected CG solver.
    let solver = CgSolver::new(SolverConfig::new(2000, 1e-16));
    let clean = solver
        .solve(&matrix, &rhs, &protection)
        .expect("clean solve succeeds");
    println!(
        "clean solve:   {} iterations, converged = {}",
        clean.status.iterations, clean.status.converged
    );

    // 4. Now corrupt the protected matrix with a single bit flip (as a cosmic
    //    ray would) and solve again.
    let log = FaultLog::new();
    let mut protected = ProtectedCsr::from_csr(&matrix, &protection).expect("encode matrix");
    protected.inject_value_bit_flip(1234, 51); // flip an exponent bit of value #1234
    let faulty = solver
        .solve_fully_protected(&protected, &rhs, &protection, &log)
        .expect("the flip is corrected on the fly");
    println!(
        "faulty solve:  {} iterations, corrected errors = {}",
        faulty.status.iterations,
        faulty.faults.total_corrected()
    );

    // 5. The two solutions are identical: the corruption never reached the
    //    arithmetic.
    let max_diff = clean
        .solution
        .iter()
        .zip(&faulty.solution)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max)
        ;
    println!("max |x_clean - x_faulty| = {max_diff:.3e}");
    assert_eq!(max_diff, 0.0);
    println!("=> the bit flip was detected, corrected and had zero effect on the answer");
}
