//! Quickstart: protect a sparse linear solve against memory bit flips.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a small five-point-stencil system and solves it through the one
//! generic [`Solver`] builder in each protection mode — plain,
//! matrix-protected, and fully protected — then injects a bit flip into the
//! protected matrix and shows that the solve still produces the correct
//! answer while the fault log records the correction.

use abft_suite::prelude::*;
use abft_suite::solvers::backends::FullyProtected;
use abft_suite::sparse::builders::poisson_2d_padded;

fn main() {
    // 1. Build a sparse SPD system (a 64x64 Poisson operator, padded so every
    //    row stores at least four entries as the CRC32C scheme requires).
    let matrix = poisson_2d_padded(64, 64);
    let rhs: Vec<f64> = (0..matrix.rows())
        .map(|i| 1.0 + (i % 7) as f64 * 0.1)
        .collect();
    println!(
        "system: {} unknowns, {} non-zeros",
        matrix.rows(),
        matrix.nnz()
    );

    // 2. One builder serves every protection tier.  Baseline first:
    let solver = Solver::cg().max_iterations(2000).tolerance(1e-16);
    let plain = solver.solve(&matrix, &rhs).expect("plain solve");
    println!(
        "plain:         {} iterations, converged = {}",
        plain.status.iterations, plain.status.converged
    );

    // ... the same solve with the matrix protected (Figures 4-8):
    let config = ProtectionConfig::full(EccScheme::Secded64);
    let matrix_protected = solver
        .protection(ProtectionMode::Matrix(config))
        .solve(&matrix, &rhs)
        .expect("matrix-protected solve");
    println!(
        "matrix (SECDED): {} iterations, checks = {}",
        matrix_protected.status.iterations,
        matrix_protected.faults.checks.iter().sum::<u64>()
    );

    // ... and fully protected — matrix and every work vector (Figure 9):
    let clean = solver
        .protection(ProtectionMode::Full(config))
        .solve(&matrix, &rhs)
        .expect("fully protected solve");
    println!(
        "full (SECDED): {} iterations, converged = {}",
        clean.status.iterations, clean.status.converged
    );

    // 3. Now corrupt the protected matrix with a single bit flip (as a cosmic
    //    ray would) and solve again on the pre-built backend.
    let mut protected = ProtectedCsr::from_csr(&matrix, &config).expect("encode matrix");
    protected.inject_value_bit_flip(1234, 51); // flip an exponent bit of value #1234
    let faulty = solver
        .solve_operator(&FullyProtected::new(&protected), &rhs)
        .expect("the flip is corrected on the fly");
    println!(
        "faulty solve:  {} iterations, corrected errors = {}",
        faulty.status.iterations,
        faulty.faults.total_corrected()
    );

    // 4. The two solutions are identical: the corruption never reached the
    //    arithmetic.
    let max_diff = clean
        .solution
        .iter()
        .zip(&faulty.solution)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("max |x_clean - x_faulty| = {max_diff:.3e}");
    assert_eq!(max_diff, 0.0);
    println!("=> the bit flip was detected, corrected and had zero effect on the answer");
}
