//! Fault-injection demonstration: what each ECC scheme does with bit flips.
//!
//! ```bash
//! cargo run --release --example fault_injection_demo -- [trials]
//! ```
//!
//! Injects single bit flips into every protected region (matrix values,
//! column indices, row pointer, dense vectors) for every scheme and prints
//! the outcome histograms — the soundness half of the paper's claim, next to
//! the performance half shown by the benches.

use abft_suite::faultsim::{Campaign, CampaignConfig, FaultTarget};
use abft_suite::prelude::*;

fn main() {
    let trials: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100);

    for scheme in [
        EccScheme::None,
        EccScheme::Sed,
        EccScheme::Secded64,
        EccScheme::Secded128,
        EccScheme::Crc32c,
    ] {
        println!("=== scheme: {} ===", scheme.label());
        for target in FaultTarget::ALL {
            if scheme == EccScheme::None && target == FaultTarget::DenseVector {
                continue;
            }
            let config = CampaignConfig {
                nx: 16,
                ny: 16,
                trials,
                flips_per_trial: 1,
                protection: if scheme == EccScheme::None {
                    ProtectionConfig::unprotected()
                } else {
                    ProtectionConfig::full(scheme)
                },
                target,
                seed: 2017,
                ..CampaignConfig::default()
            };
            let stats = Campaign::new(config).run();
            println!(
                "  target {:<24} safety {:>6.1} %",
                target.label(),
                100.0 * stats.safety_rate()
            );
            print!("{stats}");
        }
        println!();
    }

    println!("note: 'safety' counts every trial in which the fault was corrected,");
    println!("detected, contained by a bounds check, or had no effect on the answer.");
    println!("Only the unprotected configuration should ever show silent corruptions.");
}
