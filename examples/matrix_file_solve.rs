//! Solve a system loaded from a Matrix Market file on every storage tier.
//!
//! ```bash
//! cargo run --release --example matrix_file_solve
//! ```
//!
//! Streams the committed SPD `.mtx` fixture into a CSR operator, then runs
//! the same fully protected CG solve with the matrix encoded as protected
//! CSR, protected COO and ECC-aligned blocked CSR.  The storage tier is an
//! implementation detail behind the `ProtectedMatrix` trait: every tier
//! produces the bit-identical solution in the same number of iterations.
//! Finally a bit flip is injected into the COO tier's element storage to
//! show the per-element codewords correcting it mid-solve.

use abft_suite::prelude::*;
use abft_suite::solvers::backends::FullyProtected;
use abft_suite::sparse::builders::pad_rows_to_min_entries;
use abft_suite::sparse::load_matrix_market;

fn main() {
    // 1. Stream the fixture (stored as a symmetric lower triangle) into CSR
    //    and pad every row up to the CRC32C four-entry floor.
    let path = ["tests/fixtures/spd_symmetric.mtx"]
        .into_iter()
        .map(String::from)
        .chain(std::iter::once(format!(
            "{}/tests/fixtures/spd_symmetric.mtx",
            env!("CARGO_MANIFEST_DIR")
        )))
        .find(|p| std::path::Path::new(p).exists())
        .expect("fixture present");
    let matrix = pad_rows_to_min_entries(&load_matrix_market(&path).expect("parse fixture"), 4);
    println!(
        "loaded {path}: {} unknowns, {} non-zeros",
        matrix.rows(),
        matrix.nnz()
    );
    let rhs: Vec<f64> = (0..matrix.rows())
        .map(|i| 1.0 + (i % 3) as f64 * 0.5)
        .collect();

    // 2. One fully protected CG solve per storage tier, all described by
    //    the one-stop SolveSpec builder.
    let config = ProtectionConfig::full(EccScheme::Secded64);
    let spec = SolveSpec::new(EccScheme::Secded64)
        .max_iterations(1000)
        .tolerance(1e-12);
    let mut outcomes = Vec::new();
    for tier in [
        StorageTier::Csr,
        StorageTier::Coo,
        StorageTier::BlockedCsr(3),
    ] {
        let outcome = spec
            .storage(tier)
            .solve(&matrix, &rhs)
            .expect("protected solve");
        println!(
            "{tier:?}: {} iterations, converged = {}, checks = {}",
            outcome.status.iterations,
            outcome.status.converged,
            outcome.faults.checks.iter().sum::<u64>()
        );
        outcomes.push(outcome);
    }

    // 3. The tier never changes the arithmetic: identical trajectories,
    //    bit-identical solutions.
    for outcome in &outcomes[1..] {
        assert_eq!(outcome.status.iterations, outcomes[0].status.iterations);
        assert_eq!(outcome.solution, outcomes[0].solution);
    }
    println!("=> all storage tiers produced the bit-identical solution");

    // 4. Flip a bit in the COO tier's element storage; the per-element
    //    SECDED codewords correct it on the fly.
    let mut protected = ProtectedCoo::from_csr(&matrix, &config).expect("encode");
    protected.inject_value_bit_flip(7, 44);
    let faulty = Solver::cg()
        .max_iterations(1000)
        .tolerance(1e-12)
        .solve_operator(&FullyProtected::new(&protected), &rhs)
        .expect("flip corrected mid-solve");
    assert_eq!(faulty.solution, outcomes[0].solution);
    println!(
        "faulty COO solve: {} corrected errors, solution unchanged",
        faulty.faults.total_corrected()
    );
}
