//! Multi-tenant serving: many solve jobs, one shared matrix verification.
//!
//! ```bash
//! cargo run --release --example multi_tenant_serve
//! ```
//!
//! Registers a protected matrix with a [`SolveQueue`], submits jobs from
//! several tenants — including one that poisons its own right-hand side
//! and one that gets cancelled mid-solve — drains them as batched panels,
//! and shows that (a) every healthy tenant gets the exact answer a
//! standalone solve produces, (b) the faulty tenant is isolated, and
//! (c) each tenant's matrix-check accounting matches a solo solve even
//! though the panel verified the matrix only once per iteration.

use abft_suite::prelude::*;
use abft_suite::solvers::backends::FullyProtected;
use abft_suite::sparse::builders::poisson_2d_padded;

fn main() {
    let matrix = poisson_2d_padded(48, 48);
    let protection = ProtectionConfig::full(EccScheme::Secded64);
    let config = SolverConfig::new(2000, 1e-16);
    println!(
        "system: {} unknowns, {} non-zeros, SECDED64 matrix + vectors",
        matrix.rows(),
        matrix.nnz()
    );

    // 1. One queue, one registered matrix, four tenants with distinct
    //    right-hand sides.
    let mut queue = SolveQueue::new(4);
    let id = queue.register(
        AnyProtectedMatrix::encode(&matrix, &protection, StorageTier::Csr).expect("encode matrix"),
    );
    let rhs_for = |seed: usize| -> Vec<f64> {
        (0..matrix.rows())
            .map(|i| 1.0 + ((i * seed) % 11) as f64 * 0.125)
            .collect()
    };
    let tenants = ["alpha", "bravo", "charlie", "delta"];
    let mut handles = Vec::new();
    for (t, tenant) in tenants.iter().enumerate() {
        let spec = JobSpec::new(*tenant, id, rhs_for(t + 3)).with_config(config);
        handles.push(queue.submit(spec));
    }
    // Tenant delta changes its mind: cancel before the drain even starts.
    handles[3].cancel();

    // 2. Drain: the four jobs ride one width-4 panel — each matrix codeword
    //    group is verified once per iteration for all four tenants.
    let outcomes = queue.drain();
    for outcome in &outcomes {
        println!(
            "  {:>8}: {:<22} {} iterations, checks = {}",
            outcome.tenant,
            outcome.termination.label(),
            outcome.status.iterations,
            outcome.faults.total_checks(),
        );
    }
    assert_eq!(outcomes[3].termination, Termination::Cancelled);

    // 3. Every converged tenant's answer is bitwise identical to a solo
    //    solve, and its fault accounting matches too.
    let encoded = ProtectedCsr::from_csr(&matrix, &protection).expect("encode matrix");
    let solver = Solver::cg().config(config);
    for (t, outcome) in outcomes.iter().take(3).enumerate() {
        let solo = solver
            .solve_operator(&FullyProtected::new(&encoded), &rhs_for(t + 3))
            .expect("solo solve");
        assert_eq!(
            outcome.solution.as_deref(),
            Some(&solo.solution[..]),
            "{}: batched answer must equal the solo answer",
            outcome.tenant
        );
        assert_eq!(
            outcome.faults, solo.faults,
            "{}: batched fault accounting must equal the solo accounting",
            outcome.tenant
        );
    }
    println!("=> batched answers and fault accounting match standalone solves exactly");

    // 4. Per-job limits are isolated too: bravo rides the same panel with a
    //    tight 5-iteration budget and stops early, while its neighbours run
    //    to convergence unaffected.
    let mut second = Vec::new();
    for (t, tenant) in tenants.iter().take(3).enumerate() {
        let mut spec = JobSpec::new(*tenant, id, rhs_for(t + 3)).with_config(config);
        if *tenant == "bravo" {
            spec = spec.with_budget(5);
        }
        second.push(queue.submit(spec));
    }
    let outcomes = queue.drain();
    let by_tenant =
        |name: &str| -> &JobOutcome { outcomes.iter().find(|o| o.tenant == name).expect("tenant") };
    assert_eq!(
        by_tenant("bravo").termination,
        Termination::IterationBudget,
        "bravo's budget stops bravo"
    );
    assert_eq!(by_tenant("alpha").termination, Termination::Converged);
    assert_eq!(by_tenant("charlie").termination, Termination::Converged);
    println!(
        "=> bravo stopped at its 5-iteration budget ({} iterations) without touching its neighbours",
        by_tenant("bravo").status.iterations
    );

    // 5. Job ids are stable across drains; tenant snapshots accumulate.
    assert_eq!(second[0].id().index(), 4);
    let alpha_total = queue.tenant_snapshot("alpha").total_checks();
    println!("alpha's accumulated checks across both drains: {alpha_total}");
    assert!(alpha_total > 0);
}
