//! TeaLeaf heat conduction under ABFT protection.
//!
//! ```bash
//! cargo run --release --example tealeaf_heat -- [nx] [ny] [steps]
//! ```
//!
//! Runs the standard TeaLeaf deck (cold background, hot corner region) twice
//! — unprotected and fully protected with SECDED — and compares runtimes,
//! iteration counts and the physics (field summaries), reproducing the
//! workflow behind the paper's overhead figures.

use abft_suite::prelude::*;
use abft_suite::tealeaf::Deck;

fn main() {
    let mut args = std::env::args().skip(1);
    let nx: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(128);
    let ny: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(128);
    let steps: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(3);

    let deck = Deck::standard(nx, ny, steps);
    println!(
        "TeaLeaf: {}x{} cells, {} time-steps, solver {:?}",
        deck.x_cells, deck.y_cells, deck.end_step, deck.solver
    );
    println!("deck:\n{}", deck.to_deck_string());

    // Unprotected baseline.
    let mut baseline_sim = Simulation::new(deck.clone());
    let baseline = baseline_sim.run().expect("baseline run");
    println!(
        "baseline:   {:>8.3} s solve time, {:>5} CG iterations",
        baseline.total_solve_seconds(),
        baseline.total_iterations()
    );

    // Fully protected run (matrix + vectors, SECDED64).
    let protection = ProtectionConfig::full(EccScheme::Secded64);
    let mut protected_sim = Simulation::new(deck).with_protection(protection);
    let protected = protected_sim.run().expect("protected run");
    println!(
        "SECDED64:   {:>8.3} s solve time, {:>5} CG iterations",
        protected.total_solve_seconds(),
        protected.total_iterations()
    );

    let overhead = 100.0 * (protected.total_solve_seconds() - baseline.total_solve_seconds())
        / baseline.total_solve_seconds();
    println!("runtime overhead of full SECDED protection: {overhead:.1} %");

    // The physics is unchanged to within the mantissa-masking noise (§VI-B).
    println!("\nper-step field summaries (protected run):");
    for step in &protected.steps {
        println!(
            "  step {:>2}: {:>4} iterations, {}",
            step.step, step.iterations, step.summary
        );
    }
    let diff = protected
        .final_summary
        .max_relative_difference(&baseline.final_summary);
    println!("\nmax relative difference vs baseline summary: {diff:.3e}");
    assert!(diff < 1e-9, "protection must not change the physics");
}
